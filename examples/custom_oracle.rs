//! Plug a custom downstream tool into the feedback loop.
//!
//! ISDC is deliberately tool-agnostic: anything implementing
//! [`isdc_synth::DelayOracle`] can drive the iterations. This example runs
//! two non-default oracles:
//!
//! 1. the paper's §V.3 proposal — AIG depth scaled to picoseconds, skipping
//!    technology mapping and STA entirely (calibrated from Fig. 8's slope);
//! 2. a hand-written oracle wrapping the full flow with a pessimism margin,
//!    the way a signoff team might guard-band feedback from a fast proxy.
//!
//! Run with: `cargo run --example custom_oracle --release`

use isdc_core::{run_isdc, IsdcConfig};
use isdc_ir::{Graph, NodeId};
use isdc_synth::{AigDepthOracle, DelayOracle, DelayReport, OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;

/// A guard-banded oracle: full synthesis flow plus a fixed pessimism factor.
struct GuardBandedOracle {
    inner: SynthesisOracle,
    margin: f64,
}

impl DelayOracle for GuardBandedOracle {
    fn evaluate(&self, graph: &Graph, members: &[NodeId]) -> DelayReport {
        let mut report = self.inner.evaluate(graph, members);
        report.delay_ps *= self.margin;
        report
    }

    fn name(&self) -> &str {
        "guard-banded"
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = isdc_benchsuite::suite();
    let bench = suite.iter().find(|b| b.name == "ml_core_datapath2").expect("benchmark in suite");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let mut config = IsdcConfig::paper_defaults(bench.clock_period_ps);
    config.max_iterations = 10;

    // Reference: the full synthesis + STA oracle.
    let full = SynthesisOracle::new(lib.clone());
    let r_full = run_isdc(&bench.graph, &model, &full, &config)?;

    // §V.3: AIG depth as the feedback signal. The ps-per-level slope comes
    // from the fig8 harness (`cargo run -p isdc-bench --bin fig8`).
    let depth = AigDepthOracle::new(56.0);
    let r_depth = run_isdc(&bench.graph, &model, &depth, &config)?;

    // Guard-banded: 15% pessimism on top of the full flow.
    let banded = GuardBandedOracle { inner: SynthesisOracle::new(lib), margin: 1.15 };
    let r_banded = run_isdc(&bench.graph, &model, &banded, &config)?;

    println!("oracle          register bits   stages   iterations");
    for (name, r) in [("synthesis", &r_full), ("aig-depth", &r_depth), ("guard-banded", &r_banded)]
    {
        println!(
            "{name:<15} {:>13} {:>8} {:>12}",
            r.schedule.register_bits(&bench.graph),
            r.schedule.num_stages(),
            r.iterations()
        );
    }
    println!("\nbaseline (no feedback): {} register bits", r_full.history[0].register_bits);
    println!("The depth oracle trades a little quality for skipping mapping+STA —");
    println!("the trade the paper's §V.3 proposes for runtime-constrained flows.");
    Ok(())
}
