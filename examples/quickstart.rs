//! Quickstart: schedule a multiply-accumulate datapath with baseline SDC,
//! then refine it with ISDC feedback and compare.
//!
//! Run with: `cargo run --example quickstart --release`

use isdc_core::metrics::post_synthesis_slack;
use isdc_core::{run_isdc, run_sdc, IsdcConfig};
use isdc_ir::{Graph, OpKind};
use isdc_synth::{OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the datapath: out = clamp(a*b + c*d + e, 0x7fff), 8-bit
    //    multiplies accumulating into 16 bits.
    let mut g = Graph::new("quickstart_mac");
    let a = g.param("a", 8);
    let b = g.param("b", 8);
    let c = g.param("c", 8);
    let d = g.param("d", 8);
    let e = g.param("e", 16);
    let ab = g.binary(OpKind::Mul, a, b)?;
    let cd = g.binary(OpKind::Mul, c, d)?;
    let ab16 = g.unary(OpKind::ZeroExt { new_width: 16 }, ab)?;
    let cd16 = g.unary(OpKind::ZeroExt { new_width: 16 }, cd)?;
    let s1 = g.binary(OpKind::Add, ab16, cd16)?;
    let s2 = g.binary(OpKind::Add, s1, e)?;
    let limit = g.literal_u64(0x7fff, 16);
    let over = g.binary(OpKind::Ugt, s2, limit)?;
    let out = g.select(over, limit, s2)?;
    g.set_output(out);
    g.validate()?;

    // 2. Pick the technology: the SKY130-flavoured library, a 2500ps clock.
    let clock_ps = 2500.0;
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    // 3. Baseline: one SDC solve on pre-characterized op delays.
    let (baseline, _) = run_sdc(&g, &model, clock_ps)?;
    println!(
        "baseline SDC : {} stages, {} register bits, {:.0}ps slack",
        baseline.num_stages(),
        baseline.register_bits(&g),
        post_synthesis_slack(&g, &baseline, &oracle, clock_ps)
    );

    // 4. ISDC: iterate with downstream feedback.
    let mut config = IsdcConfig::paper_defaults(clock_ps);
    config.threads = 2;
    let refined = run_isdc(&g, &model, &oracle, &config)?;
    println!(
        "ISDC         : {} stages, {} register bits, {:.0}ps slack ({} iterations)",
        refined.schedule.num_stages(),
        refined.schedule.register_bits(&g),
        post_synthesis_slack(&g, &refined.schedule, &oracle, clock_ps),
        refined.iterations()
    );

    // 5. Inspect the trajectory.
    for rec in &refined.history {
        println!(
            "  iter {:2}: {:4} register bits, {} stages, est. error {:5.1}%",
            rec.iteration, rec.register_bits, rec.num_stages, rec.estimation_error_pct
        );
    }
    Ok(())
}
