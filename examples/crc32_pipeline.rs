//! Pipeline a real benchmark (the unrolled CRC-32 datapath) and inspect the
//! per-stage structure of the result: which values cross stage boundaries
//! and how much the feedback loop shrinks them.
//!
//! Run with: `cargo run --example crc32_pipeline --release`

use isdc_core::metrics::{register_breakdown, stage_sta_delays};
use isdc_core::{run_isdc, run_sdc, IsdcConfig};
use isdc_synth::{OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = isdc_benchsuite::suite();
    let bench = suite.iter().find(|b| b.name == "crc32").expect("crc32 in suite");
    let g = &bench.graph;
    println!("crc32: {} nodes, clock {}ps", g.len(), bench.clock_period_ps);

    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    let (baseline, _) = run_sdc(g, &model, bench.clock_period_ps)?;
    let mut config = IsdcConfig::paper_defaults(bench.clock_period_ps);
    config.max_iterations = 10;
    let refined = run_isdc(g, &model, &oracle, &config)?;

    println!(
        "registers: {} -> {} bits ({} -> {} stages, {} iterations)",
        baseline.register_bits(g),
        refined.schedule.register_bits(g),
        baseline.num_stages(),
        refined.schedule.num_stages(),
        refined.iterations(),
    );

    // Stage-by-stage view of the refined pipeline.
    let sta = stage_sta_delays(g, &refined.schedule, &oracle);
    println!("\nstage | ops | post-synthesis delay");
    for (stage, delay) in sta.iter().enumerate() {
        let ops = refined.schedule.stage_members(stage as u32).len();
        let bar = "#".repeat((delay / 100.0) as usize);
        println!("{stage:>5} | {ops:>3} | {delay:>7.0}ps {bar}");
    }

    // The widest surviving pipeline registers.
    let mut breakdown = register_breakdown(g, &refined.schedule);
    breakdown.sort_by_key(|&(_, bits)| std::cmp::Reverse(bits));
    println!("\nlargest pipeline registers after refinement:");
    for (id, bits) in breakdown.iter().take(5) {
        let node = g.node(*id);
        println!("  {id}: {} bits ({}, width {})", bits, node.kind.mnemonic(), node.width);
    }
    Ok(())
}
