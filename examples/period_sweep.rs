//! Clock-period sweep of the largest benchmark through a persistent
//! [`IsdcSession`], against two independent-runs baselines.
//!
//! This is the acceptance workload for the session engine: a 10-point
//! linear sweep (plus a binary search for the minimum feasible period),
//! where every point after the first reuses the previous points' oracle
//! evaluations (delay cache) and LP state (engine retarget / potentials).
//! Baselines:
//!
//! - **cold** — independent `run_isdc` calls with the cold solver
//!   (`incremental: false`): a fresh LP rebuild + Bellman-Ford cold solve
//!   every iteration, the paper-faithful reference semantics;
//! - **independent** — independent `run_isdc` calls with PR 2's
//!   within-run warm solver, but nothing shared across runs. The gap to
//!   this baseline is exactly what cross-run persistence buys.
//!
//! Both baselines run `run_isdc` with its defaults, per-iteration oracle
//! metrics included — that is what a user doing per-point runs gets —
//! while the session sweep skips those metrics on non-final points
//! (`IsdcConfig::iteration_metrics`). The speedups therefore measure the
//! *product* gap (session sweep vs naive per-point runs), not the solver
//! in isolation; `BENCH_solver.json` holds the engine-only comparison.
//!
//! The program verifies bit-identity against both baselines point by
//! point, prints per-run reuse statistics, and writes `BENCH_sweep.json`
//! at the workspace root.
//!
//! Run with: `cargo run --example period_sweep --release`
//! (`ISDC_SWEEP_QUICK=1` shrinks the grid and iteration budget for CI.)

use isdc_core::{
    linear_grid, min_feasible_period, render_sweep_json, sweep_clock_period,
    sweep_clock_period_cold, sweep_clock_period_independent, IsdcConfig, IsdcSession,
};
use isdc_synth::{OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;
use std::path::Path;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::var_os("ISDC_SWEEP_QUICK").is_some();
    let suite = isdc_benchsuite::suite();
    let bench = suite.iter().max_by_key(|b| b.graph.len()).expect("suite is nonempty");
    let g = &bench.graph;
    let points = if quick { 4 } else { 10 };
    let mut base = IsdcConfig::paper_defaults(bench.clock_period_ps);
    base.max_iterations = if quick { 3 } else { 8 };
    println!(
        "{}: {} nodes, {} sweep points from {}ps to {}ps ({})",
        bench.name,
        g.len(),
        points,
        bench.clock_period_ps,
        bench.clock_period_ps * 2.0,
        if quick { "quick" } else { "full" },
    );

    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let periods = linear_grid(bench.clock_period_ps, bench.clock_period_ps * 2.0, points);

    // Session sweep: one persistent engine across all points, ascending so
    // each point warm-starts from its tighter neighbour.
    let mut session = IsdcSession::new(g, &model, &oracle);
    let t = Instant::now();
    let warm = sweep_clock_period(&mut session, &base, &periods)?;
    let session_time = t.elapsed();

    // Baselines: independent runs, nothing shared across points.
    let t = Instant::now();
    let cold = sweep_clock_period_cold(g, &model, &oracle, &base, &periods)?;
    let cold_time = t.elapsed();
    let t = Instant::now();
    let independent = sweep_clock_period_independent(g, &model, &oracle, &base, &periods)?;
    let independent_time = t.elapsed();

    // The non-negotiable property before any speed talk: bit-identity
    // against both baselines at every point.
    for ((w, c), i) in warm.iter().zip(&cold).zip(&independent) {
        assert_eq!(
            w.schedule, c.schedule,
            "session diverged from the cold baseline at {}ps",
            w.clock_period_ps
        );
        assert_eq!(
            w.schedule, i.schedule,
            "session diverged from the independent baseline at {}ps",
            w.clock_period_ps
        );
    }

    println!("\nclock_ps | bits | stages | iters | warm | hit rate | session |  indep |   cold");
    for ((w, c), i) in warm.iter().zip(&cold).zip(&independent) {
        println!(
            "{:>8.0} | {:>4} | {:>6} | {:>5} | {:>4} | {:>7.1}% | {:>6.1?} | {:>6.1?} | {:>6.1?}",
            w.clock_period_ps,
            w.register_bits,
            w.num_stages,
            w.iterations,
            if w.warm_start { "yes" } else { "no" },
            w.cache_hit_rate() * 100.0,
            w.elapsed,
            i.elapsed,
            c.elapsed,
        );
    }
    let speedup_cold = cold_time.as_secs_f64() / session_time.as_secs_f64().max(1e-9);
    let speedup_indep = independent_time.as_secs_f64() / session_time.as_secs_f64().max(1e-9);
    println!(
        "\nsweep totals: session {session_time:.1?} | vs cold {cold_time:.1?} \
         ({speedup_cold:.1}x) | vs independent warm-solver runs {independent_time:.1?} \
         ({speedup_indep:.1}x); all {points} schedules bit-identical"
    );

    // Binary search for the minimum feasible period, reusing the same
    // session (its probes are cache-warm too).
    let search = min_feasible_period(&mut session, &base, 1.0, bench.clock_period_ps, 10.0)?;
    match search.min_period_ps {
        Some(p) => println!(
            "minimum feasible period: {p:.0}ps ({} probes, {} feasible)",
            search.probes.len(),
            search.probes.iter().filter(|p| p.feasible).count(),
        ),
        None => println!("design infeasible even at {}ps", bench.clock_period_ps),
    }

    let json = render_sweep_json(
        bench.name,
        g.len(),
        if quick { "quick" } else { "full" },
        &warm,
        &[("cold", &cold), ("independent", &independent)],
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_sweep.json");
    std::fs::write(&out, json)?;
    println!("wrote {}", out.display());
    Ok(())
}
