//! Compare all six extraction-strategy combinations on one design — a
//! miniature of the paper's Fig. 5 / Fig. 6 ablations you can run on any
//! graph you build.
//!
//! Run with: `cargo run --example strategy_ablation --release`

use isdc_core::{run_isdc, IsdcConfig, ScoringStrategy, ShapeStrategy};
use isdc_synth::{OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = isdc_benchsuite::suite();
    let bench = suite.iter().find(|b| b.name == "ml_core_datapath2").expect("benchmark in suite");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    println!(
        "{} ({} nodes, {}ps clock), 4 subgraphs/iteration, 12 iterations\n",
        bench.name,
        bench.graph.len(),
        bench.clock_period_ps
    );
    println!(
        "{:<14} {:<8} {:>14} {:>8} {:>11}",
        "scoring", "shape", "register bits", "stages", "iterations"
    );
    for scoring in [ScoringStrategy::DelayDriven, ScoringStrategy::FanoutDriven] {
        for shape in [ShapeStrategy::Path, ShapeStrategy::Cone, ShapeStrategy::Window] {
            let config = IsdcConfig {
                clock_period_ps: bench.clock_period_ps,
                subgraphs_per_iteration: 4,
                max_iterations: 12,
                scoring,
                shape,
                threads: 2,
                convergence_patience: 3,
                ..IsdcConfig::paper_defaults(bench.clock_period_ps)
            };
            let result = run_isdc(&bench.graph, &model, &oracle, &config)?;
            println!(
                "{:<14} {:<8} {:>14} {:>8} {:>11}",
                format!("{scoring:?}"),
                format!("{shape:?}"),
                result.schedule.register_bits(&bench.graph),
                result.schedule.num_stages(),
                result.iterations()
            );
        }
    }
    let no_feedback = run_isdc(
        &bench.graph,
        &model,
        &oracle,
        &IsdcConfig { max_iterations: 0, ..IsdcConfig::paper_defaults(bench.clock_period_ps) },
    )?;
    println!(
        "\n(baseline without feedback: {} register bits)",
        no_feedback.history[0].register_bits
    );
    Ok(())
}
