//! The batch engine's acceptance workload: the **full 17-design suite**,
//! one ascending clock-period sweep job per design, executed by
//! `isdc-batch` worker pools at increasing thread counts against the
//! serial session sweep baseline (one fresh private session per design —
//! the PR 3 workflow this subsystem replaces).
//!
//! The program
//!
//! 1. runs the serial baseline and each thread count's batch (every batch
//!    starts from its own cold shared cache, so thread counts compete
//!    fairly);
//! 2. verifies **bit-identity**: every batch schedule, at every thread
//!    count, equals the serial baseline's schedule at the same (design,
//!    period) point — the determinism guarantee the engine is built
//!    around;
//! 3. prints the scaling table and writes `BENCH_batch.json` at the
//!    workspace root (including `hardware_threads`: on a 1-core container
//!    the wall-clock scaling columns are necessarily flat — the speedup
//!    numbers mean what the hardware lets them mean).
//!
//! Run with: `cargo run --release --example batch_sweep`
//! (`ISDC_BATCH_QUICK=1` shrinks grids, iterations and thread counts for
//! CI.) Pass `-- --repeat N` (or set `ISDC_BATCH_REPEAT=N`) to run every
//! timed configuration N times and report the median run — the document
//! records `repeats`, so gate floors are evaluated on medians instead of
//! single noisy samples.

use isdc_batch::{
    render_batch_json, run_batch, serial_reference, BatchBenchDoc, BatchDesign, BatchOptions,
    BatchReport, Job, ScalingRow,
};
use isdc_cache::DelayCache;
use isdc_core::{linear_grid, IsdcConfig};
use isdc_synth::{OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;
use std::path::Path;
use std::sync::Arc;

/// Panics with a clear message if any batch point diverges from serial.
fn assert_bit_identical(batch: &BatchReport, serial: &BatchReport, threads: usize) {
    for (b, s) in batch.jobs.iter().zip(&serial.jobs) {
        assert_eq!(b.points.len(), s.points.len(), "{}: point count", b.job.design);
        for (bp, sp) in b.points.iter().zip(&s.points) {
            assert_eq!(
                bp.schedule, sp.schedule,
                "{} at {}ps: batch({threads} threads) diverged from the serial session sweep",
                b.job.design, bp.clock_period_ps
            );
        }
        assert_eq!(b.min_period_ps, s.min_period_ps, "{}: min period", b.job.design);
    }
}

/// `--repeat N` argument, falling back to `ISDC_BATCH_REPEAT`, default 1.
fn parse_repeats() -> usize {
    let mut args = std::env::args().skip(1);
    let mut repeats: Option<usize> = None;
    while let Some(a) = args.next() {
        if a == "--repeat" {
            repeats = args.next().and_then(|v| v.parse().ok());
        }
    }
    repeats
        .or_else(|| std::env::var("ISDC_BATCH_REPEAT").ok().and_then(|v| v.parse().ok()))
        .map_or(1, |n: usize| n.max(1))
}

/// Runs a timed configuration `repeats` times and keeps the run with the
/// median wall-clock (upper median for even N), so the reported document
/// is an actual measured run, internally consistent — not a blend.
fn median_run<E>(
    repeats: usize,
    mut run: impl FnMut() -> Result<BatchReport, E>,
) -> Result<BatchReport, E> {
    let mut reports: Vec<BatchReport> = (0..repeats).map(|_| run()).collect::<Result<_, _>>()?;
    reports.sort_by_key(|r| r.elapsed);
    let mid = reports.len() / 2;
    Ok(reports.swap_remove(mid))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::var_os("ISDC_BATCH_QUICK").is_some();
    let repeats = parse_repeats();
    let suite = isdc_benchsuite::suite();
    let points = if quick { 4 } else { 10 };
    let thread_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let hardware = std::thread::available_parallelism().map_or(1, usize::from);

    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    let designs: Vec<BatchDesign> = suite
        .iter()
        .map(|b| {
            let mut base = IsdcConfig::paper_defaults(b.clock_period_ps);
            base.max_iterations = if quick { 3 } else { 8 };
            // Outer (job-level) parallelism replaces inner evaluation
            // threads: one core per worker.
            base.threads = 1;
            BatchDesign { name: b.name.to_string(), graph: b.graph.clone(), base }
        })
        .collect();
    let jobs: Vec<Job> = suite
        .iter()
        .map(|b| {
            Job::sweep(b.name, linear_grid(b.clock_period_ps, b.clock_period_ps * 2.0, points))
        })
        .collect();
    let total_points: usize = jobs.iter().map(Job::planned_points).sum();
    println!(
        "{} designs x {points} periods = {total_points} runs ({}, {hardware} hardware threads, \
         median of {repeats})",
        designs.len(),
        if quick { "quick" } else { "full" },
    );

    // Serial session sweep: the baseline every speedup is measured against
    // and every schedule is compared against.
    let serial = median_run(repeats, || serial_reference(&designs, &jobs, &model, &oracle))?;
    println!("serial session sweep: {:.2?}", serial.elapsed);

    // Independent cold runs (`incremental: false`, no cache, no session):
    // the paper-faithful reference semantics, for the long-lever speedup.
    let mut cold_samples = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let cold_start = std::time::Instant::now();
        for ((design, job), serial_job) in designs.iter().zip(&jobs).zip(&serial.jobs) {
            let isdc_batch::JobKind::Sweep { periods } = &job.kind else { unreachable!() };
            let cold_points = isdc_core::sweep_clock_period_cold(
                &design.graph,
                &model,
                &oracle,
                &design.base,
                periods,
            )?;
            for (c, s) in cold_points.iter().zip(&serial_job.points) {
                assert_eq!(
                    c.schedule, s.schedule,
                    "{} at {}ps: serial session diverged from the cold reference",
                    design.name, c.clock_period_ps
                );
            }
        }
        cold_samples.push(cold_start.elapsed());
    }
    cold_samples.sort();
    let cold_total = cold_samples[cold_samples.len() / 2];
    println!("independent cold runs: {cold_total:.2?}");

    let mut scaling: Vec<ScalingRow> = Vec::new();
    let mut last: Option<BatchReport> = None;
    for &threads in thread_counts {
        let report = median_run(repeats, || {
            // Every repeat starts from its own cold shared cache, like the
            // thread counts themselves, so repeats measure the same thing.
            let cache = Arc::new(DelayCache::new());
            let options = BatchOptions { threads, shard_points: 0, ..Default::default() };
            run_batch(&designs, &jobs, &options, &model, &oracle, &cache)
        })?;
        // Execution failures surface per job since the fault-tolerance
        // rework; a bench run tolerates none (and the rendered document's
        // jobs_failed/jobs_retried/jobs_timed_out fields attest it to the
        // gate).
        assert!(report.all_ok(), "batch @ {threads} threads had failed jobs");
        assert_eq!(report.jobs_retried(), 0, "a bench must not need retries");
        assert_eq!(report.jobs_timed_out(), 0, "no deadlines are armed, nothing may time out");
        assert_bit_identical(&report, &serial, threads);
        println!(
            "batch @ {threads} threads: {:.2?} ({:.2}x vs serial, {:.1}x vs cold, {} shards, \
             {:.1}% fleet cache hit rate)",
            report.elapsed,
            serial.elapsed.as_secs_f64() / report.elapsed.as_secs_f64().max(1e-9),
            cold_total.as_secs_f64() / report.elapsed.as_secs_f64().max(1e-9),
            report.shards,
            report.cache_hit_rate() * 100.0,
        );
        scaling.push(ScalingRow { threads, total: report.elapsed });
        last = Some(report);
    }
    let report = last.expect("at least one thread count measured");
    println!("all {} schedules bit-identical to the serial baseline", total_points);

    println!("\ndesign                       | shards | points | hit rate | elapsed");
    for job in &report.jobs {
        println!(
            "{:<28} | {:>6} | {:>6} | {:>7.1}% | {:.1?}",
            job.job.design,
            job.shards,
            job.points.len(),
            job.cache_hit_rate() * 100.0,
            job.elapsed,
        );
    }

    let doc = BatchBenchDoc {
        mode: if quick { "quick" } else { "full" },
        designs: designs.len(),
        report: &report,
        hardware_threads: hardware,
        repeats,
        serial_total: Some(serial.elapsed),
        cold_total: Some(cold_total),
        scaling: &scaling,
        bit_identical: true,
    };
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_batch.json");
    std::fs::write(&out, render_batch_json(&doc))?;
    println!("wrote {}", out.display());
    Ok(())
}
