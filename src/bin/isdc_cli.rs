//! `isdc-cli` — command-line driver for the ISDC scheduler.
//!
//! ```text
//! isdc-cli show      <design.ir>                    graph statistics
//! isdc-cli schedule  <design.ir> [options]          schedule (baseline or ISDC)
//! isdc-cli sweep     <design.ir> [options]          clock-period sweep via IsdcSession
//! isdc-cli batch     [options]                      parallel multi-design batch (isdc-batch)
//! isdc-cli report    <design.ir> [sweep opts]       sweep + structured run report (text/JSON)
//! isdc-cli report    --baseline <old.json> <new.json>   rank metric deltas by wall-clock impact
//! isdc-cli aiger     <design.ir> [-o out.aag]       lower to gates, export AIGER
//! isdc-cli bench     [--emit <name> [-o out.ir]]    list / export bundled benchmarks
//! isdc-cli trace check <trace.jsonl>                validate an exported JSONL trace
//!
//! schedule options:
//!   --clock <ps>          target clock period (default 2500)
//!   --feedback            run the full ISDC loop (default: baseline SDC only)
//!   --iterations <n>      max feedback iterations (default 15)
//!   --subgraphs <m>       subgraphs per iteration (default 16)
//!   --scoring dd|fd       delay- or fanout-driven extraction (default fd)
//!   --shape path|cone|window   expansion strategy (default window)
//!   --cache               memoize downstream evaluations by structural fingerprint
//!   --cache-file <file>   persist the cache snapshot across runs (implies --cache)
//!   --cold-solver         rebuild and cold-solve the LP every iteration
//!                         (default: incremental warm-started re-solves)
//!   --deadline <ms>       wall-clock budget; an exceeded run exits 4
//!   --cache-capacity <n>  bound the delay cache to n entries (LRU eviction)
//!   --dot <file>          write the staged pipeline as Graphviz DOT
//!
//! sweep options (in addition to --iterations/--subgraphs/--scoring/--shape):
//!   --bench <name>        sweep a bundled benchmark instead of a .ir file
//!   --from <ps>           lowest clock period (default: the design clock)
//!   --to <ps>             highest clock period (default: 2x --from)
//!   --points <n>          grid points, ascending (default 10)
//!   --min-period          also binary-search the minimum feasible period
//!   --tol <ps>            search resolution for --min-period (default 10)
//!   --cache-file <file>   load/save the session snapshot (delays + potentials)
//!   --deadline <ms>       wall-clock budget; a cut-short sweep still prints
//!                         and saves its completed prefix, then exits 4
//!   --cache-capacity <n>  bound the session delay cache to n entries
//!   --out <file>          write the sweep records as BENCH_sweep-style JSON
//!
//! batch options (in addition to --iterations/--subgraphs/--scoring/--shape):
//!   --jobs <spec.json>    job spec (see isdc-batch docs: sweep / min_period
//!                         jobs over bundled benchmark names)
//!   --all-designs         one ascending sweep job per bundled benchmark
//!   --points <n>          grid points for --all-designs (default 10)
//!   --threads <n>         worker threads (default: available parallelism)
//!   --shard-points <n>    max sweep points per shard (default: auto)
//!   --keep-going          don't abort the queue on a job failure; finish
//!                         every other job and report per-job status
//!   --max-retries <n>     retry transient shard failures up to n times
//!                         (deterministic backoff; default 0)
//!   --deadline <ms>       per-job wall-clock budget for every job (jobs in
//!                         the spec may also set "deadline_ms" individually)
//!   --fleet-deadline <ms> wall-clock budget for the whole batch
//!   --stall-timeout <ms>  cancel a worker whose heartbeat goes silent
//!   --cache-capacity <n>  bound the fleet cache to n entries (LRU eviction)
//!   --cache-file <file>   load/save the fleet-wide cache snapshot
//!   --out <file>          write the batch report as BENCH_batch-style JSON;
//!                         failed jobs also dump their workers' flight-recorder
//!                         tails to <out>.flight.jsonl
//!
//! report options: the sweep design/grid flags (--bench/--from/--to/--points,
//!   --iterations/--subgraphs/--scoring/--shape) plus --out <file> for the
//!   JSON artifact, or --baseline <old.json> <new.json> to diff two artifacts
//!
//! telemetry options (schedule / sweep / batch):
//!   --trace <file>        capture a hierarchical span trace and write it on exit
//!   --trace-format <fmt>  jsonl (default) or chrome (Perfetto / about:tracing)
//!   --profile             print a per-stage profile table after the run
//! ```
//!
//! Sweeps run every period through one persistent `IsdcSession`, so later
//! points reuse the earlier points' oracle evaluations and LP state.
//! Batches fan a job queue (design x period shard) out over a worker pool
//! whose sessions share one delay cache. Schedules are bit-identical to
//! independent runs in both cases; only the time changes.
//!
//! Chaos reproduction: set `ISDC_FAULT_PLAN=site:hit:kind` (kind `panic`,
//! `error`, `truncate`, or `stall`; sites in `isdc::faults::SITES`) to arm
//! one deterministic fault before the command runs — e.g.
//! `ISDC_FAULT_PLAN=batch/shard:0:panic isdc-cli batch --keep-going ...`.
//!
//! Exit codes: 0 success; 2 usage, spec, or I/O errors; 3 one or more
//! batch jobs failed (the report still prints, and `--out`/`--cache-file`
//! artifacts are still written — see README § Robustness); 4 a deadline
//! cut the run short (`--deadline`/`--fleet-deadline`/`--stall-timeout` or
//! per-job `deadline_ms` — artifacts are still written and completed
//! results are bit-identical to an unbounded run's prefix). A corrupt
//! cache snapshot never fails a run: it is quarantined to `<file>.corrupt`
//! and the run cold-starts with a warning.

use isdc::core::metrics::post_synthesis_slack;
use isdc::core::{
    linear_grid, min_feasible_period, render_sweep_json, run_isdc, run_sdc, sweep_clock_period,
    IsdcConfig, IsdcSession, ScoringStrategy, ShapeStrategy,
};
use isdc::ir::{dot, text, transform, Graph};
use isdc::netlist::{aiger, lower_graph};
use isdc::synth::{OpDelayModel, SynthesisOracle};
use isdc::techlib::TechLibrary;
use std::process::ExitCode;

/// Exit code for usage, spec, and I/O errors (every plain-`String`
/// failure in the command handlers).
const EXIT_SPEC: u8 = 2;
/// Exit code when batch jobs failed but the run itself completed.
const EXIT_JOBS_FAILED: u8 = 3;
/// Exit code when a deadline (`--deadline`, `--fleet-deadline`, per-job
/// `deadline_ms`, or the stall watchdog) cut the run short. Takes
/// precedence over [`EXIT_JOBS_FAILED`]: a timeout means the budget was
/// too small, not that the work was bad.
const EXIT_DEADLINE: u8 = 4;

/// A CLI failure: the message to print and the exit code to die with.
/// `From<String>` classifies plain errors as spec/IO ([`EXIT_SPEC`]), so
/// `?` keeps working in the handlers; job failures construct their code
/// explicitly.
struct CliError {
    code: u8,
    message: String,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { code: EXIT_SPEC, message }
    }
}

/// Installs a fault plan from `ISDC_FAULT_PLAN=site:hit:kind` (kind one
/// of `panic`, `error`, `truncate`), so chaos runs are reproducible from
/// the command line — e.g. `ISDC_FAULT_PLAN=batch/shard:0:panic`.
fn install_fault_plan_from_env() -> Result<(), String> {
    let Ok(spec) = std::env::var("ISDC_FAULT_PLAN") else { return Ok(()) };
    let parts: Vec<&str> = spec.split(':').collect();
    let [site, hit, kind] = parts[..] else {
        return Err(format!("ISDC_FAULT_PLAN `{spec}`: want site:hit:kind"));
    };
    if !isdc::faults::SITES.contains(&site) {
        return Err(format!(
            "ISDC_FAULT_PLAN site `{site}`: known sites are {:?}",
            isdc::faults::SITES
        ));
    }
    let hit: u64 = hit.parse().map_err(|e| format!("ISDC_FAULT_PLAN hit `{hit}`: {e}"))?;
    let kind = match kind {
        "panic" => isdc::faults::FaultKind::Panic,
        "error" => isdc::faults::FaultKind::Error,
        "truncate" => isdc::faults::FaultKind::TruncateWrite,
        "stall" => isdc::faults::FaultKind::Stall,
        other => {
            return Err(format!("ISDC_FAULT_PLAN kind `{other}`: want panic|error|truncate|stall"))
        }
    };
    isdc::faults::install(isdc::faults::FaultPlan::new().with(site, hit, kind));
    eprintln!("fault injection armed: {site} hit {hit} -> {kind:?}");
    Ok(())
}

fn main() -> ExitCode {
    if let Err(message) = install_fault_plan_from_env() {
        eprintln!("error: {message}");
        return ExitCode::from(EXIT_SPEC);
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result: Result<(), CliError> = match args.first().map(String::as_str) {
        Some("show") => cmd_show(&args[1..]).map_err(CliError::from),
        Some("schedule") => cmd_schedule(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("report") => cmd_report(&args[1..]).map_err(CliError::from),
        Some("aiger") => cmd_aiger(&args[1..]).map_err(CliError::from),
        Some("bench") => cmd_bench(&args[1..]).map_err(CliError::from),
        Some("trace") => cmd_trace(&args[1..]).map_err(CliError::from),
        Some("--help") | Some("-h") | None => {
            eprintln!("{}", USAGE);
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(error) => {
            eprintln!("error: {}", error.message);
            ExitCode::from(error.code)
        }
    }
}

const USAGE: &str = "usage: isdc-cli <show|schedule|sweep|batch|report|aiger|bench|trace> [args]  \
     (see --help in source header)";

fn load_graph(path: &str) -> Result<Graph, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    text::parse(&src).map_err(|e| format!("parsing {path}: {e}"))
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Parses a millisecond-duration flag (`--deadline`, `--fleet-deadline`,
/// `--stall-timeout`).
fn flag_ms(args: &[String], flag: &str) -> Result<Option<std::time::Duration>, String> {
    flag_value(args, flag)
        .map(|v| {
            v.parse::<u64>()
                .map(std::time::Duration::from_millis)
                .map_err(|_| format!("bad {flag} `{v}`"))
        })
        .transpose()
}

/// Parses `--cache-capacity <entries>` (0 = unbounded, the default).
fn flag_cache_capacity(args: &[String]) -> Result<usize, String> {
    Ok(flag_value(args, "--cache-capacity")
        .map(|v| v.parse().map_err(|_| format!("bad --cache-capacity `{v}`")))
        .transpose()?
        .unwrap_or(0))
}

/// Classifies a scheduling failure for the exit code: a tripped deadline
/// is [`EXIT_DEADLINE`], everything else is a spec/run error.
fn schedule_error(e: isdc::core::ScheduleError) -> CliError {
    let code = match e {
        isdc::core::ScheduleError::DeadlineExceeded => EXIT_DEADLINE,
        _ => EXIT_SPEC,
    };
    CliError { code, message: e.to_string() }
}

/// On-disk trace encodings (`--trace-format`).
#[derive(Clone, Copy)]
enum TraceFormat {
    Jsonl,
    Chrome,
}

/// The `--trace`/`--trace-format`/`--profile` knobs shared by `schedule`,
/// `sweep`, and `batch`. Parsing the options *enables* span collection
/// when `--trace` is present, so construct this before the run starts.
struct TelemetryOpts {
    trace: Option<(std::path::PathBuf, TraceFormat)>,
    profile: bool,
}

impl TelemetryOpts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let path = flag_value(args, "--trace").map(std::path::PathBuf::from);
        let format = match flag_value(args, "--trace-format") {
            None => TraceFormat::Jsonl,
            Some(_) if path.is_none() => {
                return Err("--trace-format requires --trace <file>".to_string());
            }
            Some("jsonl") => TraceFormat::Jsonl,
            Some("chrome") => TraceFormat::Chrome,
            Some(other) => return Err(format!("bad --trace-format `{other}` (jsonl|chrome)")),
        };
        let opts = Self {
            trace: path.map(|p| (p, format)),
            profile: args.iter().any(|a| a == "--profile"),
        };
        if opts.trace.is_some() {
            isdc::telemetry::set_thread_track("main");
            isdc::telemetry::set_enabled(true);
        }
        Ok(opts)
    }

    /// Stops collection, validates the captured trace (a malformed trace is
    /// an error, not a warning), and writes it in the selected format.
    fn finish(&self) -> Result<(), String> {
        let Some((path, format)) = &self.trace else { return Ok(()) };
        isdc::telemetry::set_enabled(false);
        let trace = isdc::telemetry::take_trace();
        let summary = trace.validate().map_err(|e| format!("malformed trace: {e}"))?;
        let rendered = match format {
            TraceFormat::Jsonl => isdc::telemetry::render_jsonl(&trace),
            TraceFormat::Chrome => isdc::telemetry::render_chrome_trace(&trace),
        };
        std::fs::write(path, rendered).map_err(|e| format!("writing {}: {e}", path.display()))?;
        println!(
            "trace: {} events ({} spans, {} tracks, {:.1}ms) -> {}",
            summary.events,
            summary.spans,
            summary.tracks,
            summary.duration_ns as f64 / 1e6,
            path.display()
        );
        Ok(())
    }
}

/// The `--profile` table, shared with `isdc-cli report`: per-stage wall
/// clock, drain, LP-sparsification, cache, and quantile lines, all
/// rendered by [`isdc::telemetry::RunReport`].
fn print_profile(frames: &[&isdc::telemetry::MetricsFrame]) {
    let report = isdc::telemetry::RunReport::from_frames(frames.iter().copied());
    print!("{}", report.render_text());
}

/// `trace check <file.jsonl>` — parse an exported JSONL trace and run the
/// well-formedness validator over it.
fn cmd_trace(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("check") => {
            let path = args.get(1).ok_or("trace check requires a .jsonl trace file")?;
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            let (events, tracks) = isdc::telemetry::parse_jsonl(&text)?;
            let summary = isdc::telemetry::validate_events(
                events.iter().map(|e| (e.track, e.kind, e.name.as_str(), e.t_ns)),
            )
            .map_err(|e| format!("{path}: malformed trace: {e}"))?;
            println!(
                "{path}: ok — {} events, {} spans, {} instants, {} tracks (max depth {}), {:.1}ms",
                summary.events,
                summary.spans,
                summary.instants,
                summary.tracks,
                summary.max_depth,
                summary.duration_ns as f64 / 1e6
            );
            for (i, name) in tracks.iter().enumerate() {
                println!("  track {i}: {name}");
            }
            Ok(())
        }
        _ => Err("usage: isdc-cli trace check <trace.jsonl>".to_string()),
    }
}

fn cmd_show(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("show requires a .ir file")?;
    let g = load_graph(path)?;
    g.validate().map_err(|e| e.to_string())?;
    println!("name:    {}", g.name());
    println!("nodes:   {}", g.len());
    println!("params:  {}", g.params().len());
    println!("outputs: {}", g.outputs().len());
    println!("bits:    {}", g.total_bits());
    let mut histogram: Vec<(&str, usize)> = g.op_histogram().into_iter().collect();
    histogram.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("ops:");
    for (op, n) in histogram {
        println!("  {op:<12} {n}");
    }
    let (optimized, stats) = transform::optimize(&g);
    if stats.removed() > 0 {
        println!(
            "note: transform::optimize would remove {} nodes ({} -> {})",
            stats.removed(),
            stats.nodes_before,
            optimized.len()
        );
    }
    Ok(())
}

/// The extraction/iteration knobs shared by `schedule` and `sweep`.
fn parse_loop_opts(
    args: &[String],
) -> Result<(usize, usize, ScoringStrategy, ShapeStrategy), String> {
    let iterations: usize = flag_value(args, "--iterations")
        .map(|v| v.parse().map_err(|_| format!("bad --iterations `{v}`")))
        .transpose()?
        .unwrap_or(15);
    let subgraphs: usize = flag_value(args, "--subgraphs")
        .map(|v| v.parse().map_err(|_| format!("bad --subgraphs `{v}`")))
        .transpose()?
        .unwrap_or(16);
    let scoring = match flag_value(args, "--scoring").unwrap_or("fd") {
        "dd" => ScoringStrategy::DelayDriven,
        "fd" => ScoringStrategy::FanoutDriven,
        other => return Err(format!("bad --scoring `{other}` (dd|fd)")),
    };
    let shape = match flag_value(args, "--shape").unwrap_or("window") {
        "path" => ShapeStrategy::Path,
        "cone" => ShapeStrategy::Cone,
        "window" => ShapeStrategy::Window,
        other => return Err(format!("bad --shape `{other}` (path|cone|window)")),
    };
    Ok((iterations, subgraphs, scoring, shape))
}

fn cmd_schedule(args: &[String]) -> Result<(), CliError> {
    let path = args.first().ok_or_else(|| "schedule requires a .ir file".to_string())?;
    let g = load_graph(path)?;
    let clock: f64 = flag_value(args, "--clock")
        .map(|v| v.parse().map_err(|_| format!("bad --clock `{v}`")))
        .transpose()?
        .unwrap_or(2500.0);
    let feedback = args.iter().any(|a| a == "--feedback");
    let (iterations, subgraphs, scoring, shape) = parse_loop_opts(args)?;
    let telemetry = TelemetryOpts::parse(args)?;
    // Arm the wall-clock budget before any scheduling work: every
    // checkpoint underneath (stage entry, iteration top, oracle loop,
    // solver drain) polls it; without the flag checks stay one disarmed
    // atomic load.
    let deadline_scope =
        flag_ms(args, "--deadline")?.map(|d| isdc::cancel::CancelToken::with_deadline(d).install());
    let session_span = isdc::telemetry::span_str("session", "design", path);

    let cache_file = flag_value(args, "--cache-file").map(std::path::PathBuf::from);
    let cache = args.iter().any(|a| a == "--cache") || cache_file.is_some();
    let cache_capacity = flag_cache_capacity(args)?;
    if cache && !feedback {
        eprintln!("note: --cache/--cache-file only apply with --feedback; ignoring");
    }
    let incremental = !args.iter().any(|a| a == "--cold-solver");

    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let (schedule, label) = if feedback {
        let config = IsdcConfig {
            clock_period_ps: clock,
            subgraphs_per_iteration: subgraphs,
            max_iterations: iterations,
            scoring,
            shape,
            threads: 4,
            convergence_patience: 2,
            cache,
            cache_file,
            cache_capacity,
            incremental,
            iteration_metrics: true,
        };
        let result = run_isdc(&g, &model, &oracle, &config).map_err(schedule_error)?;
        if telemetry.profile {
            print_profile(&[&result.metrics]);
        }
        println!("iterations: {}", result.iterations());
        for rec in &result.history {
            // Drain counters ride on the verbose per-iteration display when
            // the incremental engine produced any (the cold path's one-shot
            // solver is consumed before its counters can be read).
            let drain = if rec.drain.paths > 0 {
                format!(", {} dijkstras/{} paths", rec.drain.dijkstras, rec.drain.paths)
            } else {
                String::new()
            };
            let solver = format!(
                "{:?} ({}{drain})",
                rec.solver_time,
                if rec.solver_warm { "warm" } else { "cold" }
            );
            if cache {
                println!(
                    "  iter {:2}: {:6} register bits, {:3} stages, est.err {:5.1}%, \
                     solve {solver}, cache {:3}/{:3} hits ({:4.0}%)",
                    rec.iteration,
                    rec.register_bits,
                    rec.num_stages,
                    rec.estimation_error_pct,
                    rec.cache_hits,
                    rec.cache_hits + rec.cache_misses,
                    rec.cache_hit_rate() * 100.0
                );
            } else {
                println!(
                    "  iter {:2}: {:6} register bits, {:3} stages, est.err {:5.1}%, \
                     solve {solver}",
                    rec.iteration, rec.register_bits, rec.num_stages, rec.estimation_error_pct
                );
            }
        }
        if let Some(stats) = result.cache_stats {
            println!(
                "cache: {} hits / {} lookups ({:.0}% hit rate), {} entries inserted",
                stats.hits,
                stats.hits + stats.misses,
                stats.hit_rate() * 100.0,
                stats.inserts
            );
        }
        (result.schedule, "isdc")
    } else {
        if telemetry.profile {
            eprintln!("note: --profile reports the ISDC pipeline; pass --feedback to profile");
        }
        let (schedule, _) = run_sdc(&g, &model, clock).map_err(schedule_error)?;
        (schedule, "sdc")
    };
    drop(session_span);
    drop(deadline_scope);
    telemetry.finish()?;

    println!("scheduler:     {label}");
    println!("clock:         {clock}ps");
    println!("stages:        {}", schedule.num_stages());
    println!("register bits: {}", schedule.register_bits(&g));
    println!("slack:         {:.0}ps", post_synthesis_slack(&g, &schedule, &oracle, clock));
    if let Some(dot_path) = flag_value(args, "--dot") {
        let rendered = dot::to_dot_with_stages(&g, schedule.cycles());
        std::fs::write(dot_path, rendered).map_err(|e| format!("writing {dot_path}: {e}"))?;
        println!("dot:           {dot_path}");
    }
    Ok(())
}

/// Resolves the design a sweep-shaped command (`sweep`, `report`) runs
/// over: a `.ir` file, or a bundled benchmark via `--bench`.
fn load_sweep_design(args: &[String], command: &str) -> Result<(Graph, f64, String), String> {
    match flag_value(args, "--bench") {
        Some(bench_name) => {
            let suite = isdc::benchsuite::suite();
            let b = suite
                .into_iter()
                .find(|b| b.name == bench_name)
                .ok_or_else(|| format!("unknown benchmark `{bench_name}`"))?;
            Ok((b.graph, b.clock_period_ps, b.name.to_string()))
        }
        None => {
            let path = args
                .first()
                .filter(|a| !a.starts_with("--"))
                .ok_or(format!("{command} requires a .ir file or --bench <name>"))?;
            let g = load_graph(path)?;
            Ok((g, 2500.0, path.clone()))
        }
    }
}

fn cmd_sweep(args: &[String]) -> Result<(), CliError> {
    let (g, default_clock, name) = load_sweep_design(args, "sweep")?;
    let from: f64 = flag_value(args, "--from")
        .map(|v| v.parse().map_err(|_| format!("bad --from `{v}`")))
        .transpose()?
        .unwrap_or(default_clock);
    let to: f64 = flag_value(args, "--to")
        .map(|v| v.parse().map_err(|_| format!("bad --to `{v}`")))
        .transpose()?
        .unwrap_or(from * 2.0);
    let points: usize = flag_value(args, "--points")
        .map(|v| v.parse().map_err(|_| format!("bad --points `{v}`")))
        .transpose()?
        .unwrap_or(10);
    if points == 0 || to < from {
        return Err("sweep needs --points >= 1 and --to >= --from".to_string().into());
    }
    let (iterations, subgraphs, scoring, shape) = parse_loop_opts(args)?;
    let tol: f64 = flag_value(args, "--tol")
        .map(|v| v.parse().map_err(|_| format!("bad --tol `{v}`")))
        .transpose()?
        .unwrap_or(10.0);
    let telemetry = TelemetryOpts::parse(args)?;
    // Armed before the session starts; a cut-short sweep keeps its
    // completed prefix (bit-identical to an unbounded run's first points),
    // saves artifacts, and exits with EXIT_DEADLINE.
    let deadline_scope =
        flag_ms(args, "--deadline")?.map(|d| isdc::cancel::CancelToken::with_deadline(d).install());
    let session_span = isdc::telemetry::span_str("session", "design", &name);

    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let base = IsdcConfig {
        subgraphs_per_iteration: subgraphs,
        max_iterations: iterations,
        scoring,
        shape,
        ..IsdcConfig::paper_defaults(from)
    };
    let cache =
        std::sync::Arc::new(isdc::cache::DelayCache::with_capacity(flag_cache_capacity(args)?));
    let mut session = IsdcSession::with_cache(&g, &model, &oracle, cache);
    let snapshot = flag_value(args, "--cache-file").map(std::path::PathBuf::from);
    if let Some(path) = &snapshot {
        report_snapshot_load(session.load_snapshot_resilient(path), path);
    }

    let periods = linear_grid(from, to, points);
    let sweep = sweep_clock_period(&mut session, &base, &periods).map_err(schedule_error)?;
    let mut timed_out = sweep.len() < periods.len();
    if telemetry.profile {
        let frames: Vec<&isdc::telemetry::MetricsFrame> =
            sweep.iter().map(|p| &p.metrics).collect();
        print_profile(&frames);
    }
    println!("{name}: {} nodes, {} points, {from}ps..{to}ps", g.len(), points);
    println!("clock_ps | feasible | reg bits | stages | iters | warm | hit rate | elapsed");
    for p in &sweep {
        println!(
            "{:>8.0} | {:>8} | {:>8} | {:>6} | {:>5} | {:>4} | {:>7.1}% | {:.1?}",
            p.clock_period_ps,
            if p.feasible { "yes" } else { "no" },
            p.register_bits,
            p.num_stages,
            p.iterations,
            if p.warm_start { "yes" } else { "no" },
            p.cache_hit_rate() * 100.0,
            p.elapsed,
        );
    }

    if args.iter().any(|a| a == "--min-period") && !timed_out {
        match min_feasible_period(&mut session, &base, 1.0, to, tol) {
            Ok(search) => match search.min_period_ps {
                Some(p) => println!(
                    "minimum feasible period: {p:.0}ps (+-{tol}ps, {} probes)",
                    search.probes.len()
                ),
                None => println!("no feasible period at or below {to}ps"),
            },
            Err(isdc::core::ScheduleError::DeadlineExceeded) => timed_out = true,
            Err(e) => return Err(e.to_string().into()),
        }
    }
    drop(session_span);
    drop(deadline_scope);
    telemetry.finish()?;

    // Artifacts are written even when the deadline cut the sweep short:
    // the session and cache are still consistent (clean-cut cancellation),
    // and the snapshot only carries completed work.
    if let Some(path) = &snapshot {
        session.save_snapshot(path).map_err(|e| e.to_string())?;
        println!("saved session snapshot (delays + potentials) to {}", path.display());
    }
    if let Some(out) = flag_value(args, "--out") {
        let json = render_sweep_json(&name, g.len(), "cli", &sweep, &[]);
        std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    if timed_out {
        return Err(CliError {
            code: EXIT_DEADLINE,
            message: format!(
                "deadline exceeded: {}/{} sweep points completed (completed prefix printed \
                 and saved)",
                sweep.len(),
                periods.len()
            ),
        });
    }
    Ok(())
}

/// A JSON value flattened for attribution: objects and arrays become
/// `path/to/key -> number` entries; non-numeric leaves are dropped. An
/// object's `"name"` string is surfaced to the enclosing array so rows
/// like the report's `stages` entries keep a stable path
/// (`stages/solve/ns`) even when their order changes between runs.
#[derive(Default)]
struct FlatValue {
    number: Option<f64>,
    name: Option<String>,
    entries: Vec<(String, f64)>,
}

fn flatten_value(p: &mut isdc::cache::json::Parser) -> Result<FlatValue, String> {
    let mut flat = FlatValue::default();
    match p.peek() {
        Some(b'{') => {
            p.expect(b'{')?;
            if p.peek_close(b'}') {
                return Ok(flat);
            }
            loop {
                let key = p.string()?;
                p.expect(b':')?;
                if key == "name" && p.peek() == Some(b'"') {
                    flat.name = Some(p.string()?);
                } else {
                    let child = flatten_value(p)?;
                    if let Some(v) = child.number {
                        flat.entries.push((key.clone(), v));
                    }
                    for (sub, v) in child.entries {
                        flat.entries.push((format!("{key}/{sub}"), v));
                    }
                }
                if !p.comma_or_close(b'}')? {
                    break;
                }
            }
        }
        Some(b'[') => {
            p.expect(b'[')?;
            if p.peek_close(b']') {
                return Ok(flat);
            }
            let mut index = 0usize;
            loop {
                let child = flatten_value(p)?;
                let segment = child.name.unwrap_or_else(|| index.to_string());
                if let Some(v) = child.number {
                    flat.entries.push((segment.clone(), v));
                }
                for (sub, v) in child.entries {
                    flat.entries.push((format!("{segment}/{sub}"), v));
                }
                index += 1;
                if !p.comma_or_close(b']')? {
                    break;
                }
            }
        }
        Some(b'"') => {
            p.string()?;
        }
        Some(b't') | Some(b'f') => {
            p.boolean()?;
        }
        Some(b'n') => p.null()?,
        Some(_) => flat.number = Some(p.number()?),
        None => return Err("unexpected end of input".to_string()),
    }
    Ok(flat)
}

/// Reads a report / BENCH JSON artifact into the flat `key -> number`
/// map [`isdc::telemetry::attribute`] diffs.
fn flatten_json_file(path: &str) -> Result<std::collections::BTreeMap<String, f64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut parser = isdc::cache::json::Parser::new(&text);
    let flat = flatten_value(&mut parser).map_err(|e| format!("{path}: {e}"))?;
    if flat.entries.is_empty() {
        return Err(format!("{path}: no numeric metrics found"));
    }
    // `isdc report` artifacts carry the full metric set under "counters";
    // everything else in them ("stages", "quantiles", "total_ns") is a
    // derived view that would only duplicate attribution rows.
    if flat.entries.iter().any(|(k, _)| k.starts_with("counters/")) {
        return Ok(flat
            .entries
            .into_iter()
            .filter_map(|(k, v)| k.strip_prefix("counters/").map(|k| (k.to_string(), v)))
            .collect());
    }
    Ok(flat.entries.into_iter().collect())
}

/// `report --baseline <old.json> <new.json>` diffs two report/BENCH
/// artifacts and ranks the deltas by contribution to the wall-clock
/// delta. `report (<design.ir>|--bench <name>) [sweep opts] [--out f]`
/// runs a sweep and emits the structured run report (text; JSON with
/// `--out`).
fn cmd_report(args: &[String]) -> Result<(), String> {
    if let Some(pos) = args.iter().position(|a| a == "--baseline") {
        let (Some(old_path), Some(new_path)) = (args.get(pos + 1), args.get(pos + 2)) else {
            return Err("usage: isdc-cli report --baseline <old.json> <new.json>".to_string());
        };
        let old = flatten_json_file(old_path)?;
        let new = flatten_json_file(new_path)?;
        let (total, rows) = isdc::telemetry::attribute(&old, &new);
        println!("baseline: {old_path}");
        println!("current:  {new_path}");
        print!("{}", isdc::telemetry::render_attribution(total, &rows, 20));
        return Ok(());
    }

    let (g, default_clock, name) = load_sweep_design(args, "report")?;
    let from: f64 = flag_value(args, "--from")
        .map(|v| v.parse().map_err(|_| format!("bad --from `{v}`")))
        .transpose()?
        .unwrap_or(default_clock);
    let to: f64 = flag_value(args, "--to")
        .map(|v| v.parse().map_err(|_| format!("bad --to `{v}`")))
        .transpose()?
        .unwrap_or(from * 2.0);
    let points: usize = flag_value(args, "--points")
        .map(|v| v.parse().map_err(|_| format!("bad --points `{v}`")))
        .transpose()?
        .unwrap_or(10);
    if points == 0 || to < from {
        return Err("report needs --points >= 1 and --to >= --from".to_string());
    }
    let (iterations, subgraphs, scoring, shape) = parse_loop_opts(args)?;

    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let base = IsdcConfig {
        subgraphs_per_iteration: subgraphs,
        max_iterations: iterations,
        scoring,
        shape,
        ..IsdcConfig::paper_defaults(from)
    };
    let mut session = IsdcSession::new(&g, &model, &oracle);
    let periods = linear_grid(from, to, points);
    let sweep = sweep_clock_period(&mut session, &base, &periods).map_err(|e| e.to_string())?;

    let report = isdc::telemetry::RunReport::from_frames(sweep.iter().map(|p| &p.metrics));
    println!("{name}: {} nodes, {} points, {from}ps..{to}ps", g.len(), points);
    print!("{}", report.render_text());
    if let Some(out) = flag_value(args, "--out") {
        std::fs::write(out, report.render_json()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
    }
    Ok(())
}

/// Prints the outcome of a resilient snapshot load. Corruption is a
/// warning plus a quarantine pointer, never a failure — the run proceeds
/// cold and rewrites the snapshot on save.
fn report_snapshot_load(load: isdc::cache::SnapshotLoad, path: &std::path::Path) {
    use isdc::cache::SnapshotLoad;
    match load {
        SnapshotLoad::Loaded { entries } => {
            println!("loaded {entries} cached delays from {}", path.display());
        }
        SnapshotLoad::Missing => {}
        SnapshotLoad::ColdStart { reason, quarantined } => {
            eprintln!("warning: ignoring snapshot {}: {reason}", path.display());
            if let Some(q) = quarantined {
                eprintln!("warning: quarantined the damaged snapshot to {}", q.display());
            }
            eprintln!("warning: starting with a cold cache");
        }
    }
}

fn cmd_batch(args: &[String]) -> Result<(), CliError> {
    use isdc::batch::{
        parse_jobs, render_batch_json, run_batch, BatchBenchDoc, BatchDesign, BatchOptions,
        FailPolicy, Job, JobKind, JobStatus, ScalingRow,
    };
    use isdc::cache::DelayCache;
    use std::sync::Arc;

    let (iterations, subgraphs, scoring, shape) = parse_loop_opts(args)?;
    let suite = isdc::benchsuite::suite();
    let designs: Vec<BatchDesign> = suite
        .iter()
        .map(|b| BatchDesign {
            name: b.name.to_string(),
            graph: b.graph.clone(),
            base: IsdcConfig {
                subgraphs_per_iteration: subgraphs,
                max_iterations: iterations,
                scoring,
                shape,
                threads: 1,
                ..IsdcConfig::paper_defaults(b.clock_period_ps)
            },
        })
        .collect();

    let jobs: Vec<Job> = match flag_value(args, "--jobs") {
        Some(path) => {
            let spec = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            parse_jobs(&spec)?
        }
        None if args.iter().any(|a| a == "--all-designs") => {
            let points: usize = flag_value(args, "--points")
                .map(|v| v.parse().map_err(|_| format!("bad --points `{v}`")))
                .transpose()?
                .unwrap_or(10);
            if points == 0 {
                return Err("batch needs --points >= 1".to_string().into());
            }
            suite
                .iter()
                .map(|b| {
                    Job::sweep(
                        b.name,
                        linear_grid(b.clock_period_ps, b.clock_period_ps * 2.0, points),
                    )
                })
                .collect()
        }
        None => {
            return Err("batch requires --jobs <spec.json> or --all-designs".to_string().into())
        }
    };
    if jobs.is_empty() {
        return Err("the job spec contains no jobs".to_string().into());
    }

    let threads: usize = flag_value(args, "--threads")
        .map(|v| v.parse().map_err(|_| format!("bad --threads `{v}`")))
        .transpose()?
        .unwrap_or(0);
    let shard_points: usize = flag_value(args, "--shard-points")
        .map(|v| v.parse().map_err(|_| format!("bad --shard-points `{v}`")))
        .transpose()?
        .unwrap_or(0);
    let fail_policy = if args.iter().any(|a| a == "--keep-going") {
        FailPolicy::KeepGoing
    } else {
        FailPolicy::Abort
    };
    let max_retries: u32 = flag_value(args, "--max-retries")
        .map(|v| v.parse().map_err(|_| format!("bad --max-retries `{v}`")))
        .transpose()?
        .unwrap_or(0);
    let fleet_deadline = flag_ms(args, "--fleet-deadline")?;
    let stall_timeout = flag_ms(args, "--stall-timeout")?;
    // `--deadline` is the per-job budget applied to every job; jobs whose
    // spec carries its own `deadline_ms` keep the tighter of the two.
    let job_deadline_ms = flag_ms(args, "--deadline")?.map(|d| d.as_millis() as u64);
    let jobs: Vec<Job> = match job_deadline_ms {
        Some(ms) => jobs
            .into_iter()
            .map(|j| {
                let ms = j.deadline_ms.map_or(ms, |own| own.min(ms));
                j.with_deadline_ms(ms)
            })
            .collect(),
        None => jobs,
    };
    let telemetry = TelemetryOpts::parse(args)?;
    let session_span = isdc::telemetry::span_u64("session", "jobs", jobs.len() as u64);

    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let cache = Arc::new(DelayCache::with_capacity(flag_cache_capacity(args)?));
    let snapshot = flag_value(args, "--cache-file").map(std::path::PathBuf::from);
    if let Some(path) = &snapshot {
        use isdc::synth::DelayOracle as _;
        report_snapshot_load(cache.load_resilient(path, oracle.name()), path);
    }

    let options = BatchOptions {
        threads,
        shard_points,
        fail_policy,
        max_retries,
        fleet_deadline,
        stall_timeout,
    };
    let report =
        run_batch(&designs, &jobs, &options, &model, &oracle, &cache).map_err(|e| e.to_string())?;
    drop(session_span);
    telemetry.finish()?;
    if telemetry.profile {
        let frames: Vec<&isdc::telemetry::MetricsFrame> =
            report.jobs.iter().flat_map(|j| j.points.iter().map(|p| &p.metrics)).collect();
        print_profile(&frames);
    }
    println!(
        "{} jobs over {} shards on {} threads in {:.2?} ({} runs, fleet hit rate {:.1}%)",
        report.jobs.len(),
        report.shards,
        report.threads,
        report.elapsed,
        report.total_points(),
        report.cache_hit_rate() * 100.0,
    );
    println!(
        "design                       |     type |  status | shards | points | hit rate | elapsed"
    );
    for job in &report.jobs {
        let kind = match &job.job.kind {
            JobKind::Sweep { .. } => "sweep",
            JobKind::MinPeriod { .. } => "min_prd",
        };
        let status = match &job.status {
            JobStatus::Ok => "ok",
            JobStatus::Failed(_) => "FAILED",
            JobStatus::TimedOut { .. } => "TIMEOUT",
            JobStatus::Skipped => "skipped",
        };
        println!(
            "{:<28} | {:>8} | {:>7} | {:>6} | {:>6} | {:>7.1}% | {:.1?}",
            job.job.design,
            kind,
            status,
            job.shards,
            job.points.len(),
            job.cache_hit_rate() * 100.0,
            job.elapsed,
        );
        if let Some(min) = job.min_period_ps {
            println!("{:<28} |   -> minimum feasible period {min:.0}ps", "");
        }
        if let JobStatus::Failed(error) = &job.status {
            println!("{:<28} |   -> {error}", "");
            // The failing worker's flight-recorder tail: the last few
            // events before death, recorded even with tracing off.
            let skip = error.flight.len().saturating_sub(6);
            for event in error.flight.iter().skip(skip) {
                println!("{:<28} |      flight: {event}", "");
            }
        }
        if let JobStatus::TimedOut { elapsed_ms, points_completed, flight } = &job.status {
            println!(
                "{:<28} |   -> deadline exceeded after {elapsed_ms}ms \
                 ({points_completed} point(s) completed, withheld)",
                ""
            );
            let skip = flight.len().saturating_sub(6);
            for event in flight.iter().skip(skip) {
                println!("{:<28} |      flight: {event}", "");
            }
        }
    }

    if let Some(path) = &snapshot {
        use isdc::synth::DelayOracle as _;
        cache.save(path, oracle.name()).map_err(|e| e.to_string())?;
        println!("saved fleet cache snapshot to {}", path.display());
    }
    if let Some(out) = flag_value(args, "--out") {
        let doc = BatchBenchDoc {
            mode: "cli",
            designs: designs.len(),
            report: &report,
            hardware_threads: std::thread::available_parallelism().map_or(1, usize::from),
            repeats: 1,
            serial_total: None,
            cold_total: None,
            scaling: &[ScalingRow { threads: report.threads, total: report.elapsed }],
            bit_identical: false,
        };
        std::fs::write(out, render_batch_json(&doc)).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote {out}");
        // Post-mortem artifact: every failed or timed-out job's flight
        // tail, one JSONL header line per job followed by its worker's
        // event lines.
        let mut dump = String::new();
        let mut tails = 0usize;
        for (ji, job) in report.jobs.iter().enumerate() {
            let (header, flight) = match &job.status {
                JobStatus::Failed(error) => (
                    format!(
                        "{{\"kind\":\"job\",\"job\":{},\"shard\":{},\"design\":\"{}\",\
                         \"error\":\"{}\"}}\n",
                        error.job,
                        error.shard,
                        isdc::cache::json::escape(&error.design),
                        isdc::cache::json::escape(&error.message),
                    ),
                    &error.flight,
                ),
                JobStatus::TimedOut { elapsed_ms, points_completed, flight } => (
                    format!(
                        "{{\"kind\":\"job\",\"job\":{ji},\"design\":\"{}\",\
                         \"timed_out_after_ms\":{elapsed_ms},\
                         \"points_completed\":{points_completed}}}\n",
                        isdc::cache::json::escape(&job.job.design),
                    ),
                    flight,
                ),
                JobStatus::Ok | JobStatus::Skipped => continue,
            };
            tails += 1;
            dump.push_str(&header);
            for event in flight {
                event.render_jsonl_line(&mut dump);
                dump.push('\n');
            }
        }
        if tails > 0 {
            let flight_path = format!("{out}.flight.jsonl");
            std::fs::write(&flight_path, dump)
                .map_err(|e| format!("writing {flight_path}: {e}"))?;
            println!("wrote {flight_path} ({tails} failed/timed-out job tail(s))");
        }
    }
    // Artifacts above are written even on failure — a partial keep-going
    // report is still useful — but the exit code says what happened. A
    // deadline cut takes precedence: exit 4 means "the budget ran out",
    // which callers handle differently from "the work was bad" (exit 3).
    let timed_out = report.jobs_timed_out();
    if timed_out > 0 {
        let completed = report.jobs.iter().filter(|j| j.status.is_ok()).count();
        return Err(CliError {
            code: EXIT_DEADLINE,
            message: format!(
                "{timed_out} job(s) timed out, {completed} completed (status table above; \
                 artifacts written)"
            ),
        });
    }
    if !report.all_ok() {
        let failed = report.jobs_failed();
        let skipped = report.jobs.iter().filter(|j| matches!(j.status, JobStatus::Skipped)).count();
        let first =
            report.first_error().map(|e| format!(": first failure: {e}")).unwrap_or_default();
        return Err(CliError {
            code: EXIT_JOBS_FAILED,
            message: format!(
                "{failed} job(s) failed, {skipped} skipped, {} completed{first}",
                report.jobs.len() - failed - skipped
            ),
        });
    }
    Ok(())
}

fn cmd_aiger(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("aiger requires a .ir file")?;
    let g = load_graph(path)?;
    let lowered = lower_graph(&g);
    let aag = aiger::write_aag(&lowered.aig);
    match flag_value(args, "-o") {
        Some(out) => {
            std::fs::write(out, aag).map_err(|e| format!("writing {out}: {e}"))?;
            println!(
                "wrote {out}: {} inputs, {} ANDs, depth {}",
                lowered.aig.num_inputs(),
                lowered.aig.num_ands(),
                lowered.aig.depth()
            );
        }
        None => print!("{aag}"),
    }
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let suite = isdc::benchsuite::suite();
    match flag_value(args, "--emit") {
        Some(name) => {
            let b = suite
                .iter()
                .find(|b| b.name == name)
                .ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            let rendered = text::print(&b.graph);
            match flag_value(args, "-o") {
                Some(out) => {
                    std::fs::write(out, rendered).map_err(|e| format!("writing {out}: {e}"))?;
                    println!("wrote {out}");
                }
                None => print!("{rendered}"),
            }
        }
        None => {
            println!("{:<28} {:>6} {:>8}", "benchmark", "nodes", "clock");
            for b in &suite {
                println!("{:<28} {:>6} {:>7.0}ps", b.name, b.graph.len(), b.clock_period_ps);
            }
        }
    }
    Ok(())
}
