//! # isdc — feedback-guided iterative SDC scheduling for HLS
//!
//! A from-scratch reproduction of *"Subgraph Extraction-based
//! Feedback-guided Iterative Scheduling for HLS"* (DATE 2024,
//! [arXiv:2401.12343](https://arxiv.org/abs/2401.12343)): an HLS scheduler
//! that iteratively refines a system-of-difference-constraints (SDC)
//! schedule using delay feedback from a downstream logic-synthesis flow,
//! cutting pipeline register usage.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`ir`] — the XLS-like dataflow IR (graphs, interpreter, text format);
//! - [`techlib`] — the SKY130-flavoured technology library;
//! - [`netlist`] — AIG netlists and bit-blasting;
//! - [`synth`] — the downstream-tool simulator (passes, STA, oracles);
//! - [`sdc`] — the difference-constraint LP solver;
//! - [`cache`] — structural-fingerprint memoization of oracle evaluations;
//! - [`core`] — ISDC itself (delay matrix, extraction, iteration driver);
//! - [`batch`] — the parallel multi-session batch engine (shared cache,
//!   period shards, worker pool);
//! - [`telemetry`] — hierarchical spans, the fleet metrics registry, and
//!   JSONL/Chrome trace export (see README § Observability);
//! - [`faults`] — deterministic fault injection for chaos testing (see
//!   README § Robustness);
//! - [`cancel`] — cooperative cancellation tokens and deadlines (one
//!   relaxed atomic load per checkpoint when disarmed);
//! - [`benchsuite`] — the 17 evaluation benchmarks and sweep generators.
//!
//! # Examples
//!
//! ```
//! use isdc::core::{run_isdc, run_sdc, IsdcConfig};
//! use isdc::ir::{Graph, OpKind};
//! use isdc::synth::{OpDelayModel, SynthesisOracle};
//! use isdc::techlib::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new("mac");
//! let a = g.param("a", 8);
//! let b = g.param("b", 8);
//! let c = g.param("c", 16);
//! let p = g.binary(OpKind::Mul, a, b)?;
//! let p16 = g.unary(OpKind::ZeroExt { new_width: 16 }, p)?;
//! let s = g.binary(OpKind::Add, p16, c)?;
//! g.set_output(s);
//!
//! let lib = TechLibrary::sky130();
//! let model = OpDelayModel::new(lib.clone());
//! let oracle = SynthesisOracle::new(lib);
//! let (baseline, _) = run_sdc(&g, &model, 2500.0)?;
//! let mut config = IsdcConfig::paper_defaults(2500.0);
//! config.threads = 1;
//! let refined = run_isdc(&g, &model, &oracle, &config)?;
//! assert!(refined.schedule.register_bits(&g) <= baseline.register_bits(&g));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use isdc_batch as batch;
pub use isdc_benchsuite as benchsuite;
pub use isdc_cache as cache;
pub use isdc_cancel as cancel;
pub use isdc_core as core;
pub use isdc_faults as faults;
pub use isdc_ir as ir;
pub use isdc_netlist as netlist;
pub use isdc_sdc as sdc;
pub use isdc_synth as synth;
pub use isdc_techlib as techlib;
pub use isdc_telemetry as telemetry;
