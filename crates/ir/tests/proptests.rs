//! Property-based tests for the IR crate: bit-vector arithmetic against a
//! native reference, text-format round trips, and structural invariants on
//! randomly generated graphs.

use isdc_ir::{interp, text, BitVecValue, Graph, OpKind};
use proptest::prelude::*;
use std::collections::HashMap;

fn value_and_width() -> impl Strategy<Value = (u64, u32)> {
    (1u32..=64).prop_flat_map(|w| {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        (0..=mask, Just(w))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_matches_native((a, w) in value_and_width(), b in any::<u64>()) {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let b = b & mask;
        let x = BitVecValue::from_u64(a, w);
        let y = BitVecValue::from_u64(b, w);
        prop_assert_eq!(x.add(&y).to_u64(), a.wrapping_add(b) & mask);
        prop_assert_eq!(x.sub(&y).to_u64(), a.wrapping_sub(b) & mask);
        prop_assert_eq!(x.mul(&y).to_u64(), a.wrapping_mul(b) & mask);
    }

    #[test]
    fn logic_matches_native((a, w) in value_and_width(), b in any::<u64>()) {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let b = b & mask;
        let x = BitVecValue::from_u64(a, w);
        let y = BitVecValue::from_u64(b, w);
        prop_assert_eq!(x.and(&y).to_u64(), a & b);
        prop_assert_eq!(x.or(&y).to_u64(), a | b);
        prop_assert_eq!(x.xor(&y).to_u64(), a ^ b);
        prop_assert_eq!(x.not().to_u64(), !a & mask);
        prop_assert_eq!(x.ult(&y), a < b);
    }

    #[test]
    fn shifts_match_native((a, w) in value_and_width(), amt in 0u64..100) {
        let mask = if w == 64 { u64::MAX } else { (1u64 << w) - 1 };
        let x = BitVecValue::from_u64(a, w);
        let expected_shl = if amt >= w as u64 { 0 } else { (a << amt) & mask };
        let expected_shr = if amt >= w as u64 { 0 } else { (a & mask) >> amt };
        prop_assert_eq!(x.shl(amt).to_u64(), expected_shl);
        prop_assert_eq!(x.shr(amt).to_u64(), expected_shr);
    }

    #[test]
    fn neg_is_additive_inverse((a, w) in value_and_width()) {
        let x = BitVecValue::from_u64(a, w);
        prop_assert!(x.add(&x.neg()).is_zero());
    }

    #[test]
    fn concat_slice_roundtrip((a, w1) in value_and_width(), (b, w2) in value_and_width()) {
        let hi = BitVecValue::from_u64(a, w1);
        let lo = BitVecValue::from_u64(b, w2);
        let cat = hi.concat(&lo);
        prop_assert_eq!(cat.width(), w1 + w2);
        prop_assert_eq!(cat.slice(0, w2), lo);
        prop_assert_eq!(cat.slice(w2, w1), hi);
    }

    #[test]
    fn extensions_preserve_value((a, w) in value_and_width(), extra in 0u32..64) {
        let x = BitVecValue::from_u64(a, w);
        let ze = x.zero_ext(w + extra);
        prop_assert_eq!(ze.slice(0, w), x.clone());
        if extra > 0 {
            prop_assert!(ze.slice(w, extra).is_zero());
        }
        let se = x.sign_ext(w + extra);
        prop_assert_eq!(se.slice(0, w), x.clone());
        if extra > 0 {
            let fill = se.slice(w, extra);
            prop_assert_eq!(fill.is_zero(), !x.bit(w - 1));
        }
    }

    #[test]
    fn reduce_xor_is_parity((a, w) in value_and_width()) {
        let x = BitVecValue::from_u64(a, w);
        prop_assert_eq!(x.reduce_xor().to_u64(), (a.count_ones() % 2) as u64);
    }
}

/// Builds a small random graph directly with proptest combinators.
fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (2usize..12, any::<u64>()).prop_map(|(ops, seed)| {
        let mut state = seed;
        let mut rng = move |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m.max(1)
        };
        let mut g = Graph::new("prop");
        let widths = [4u32, 8, 11];
        let mut pool = vec![g.param("p0", widths[rng(3)]), g.param("p1", widths[rng(3)])];
        for _ in 0..ops {
            let a = pool[rng(pool.len())];
            let b = pool[rng(pool.len())];
            let w = g.node(a).width;
            let b = if g.node(b).width == w {
                b
            } else if g.node(b).width < w {
                g.unary(OpKind::ZeroExt { new_width: w }, b).unwrap()
            } else {
                g.unary(OpKind::BitSlice { start: 0, width: w }, b).unwrap()
            };
            let id = match rng(5) {
                0 => g.binary(OpKind::Add, a, b).unwrap(),
                1 => g.binary(OpKind::Xor, a, b).unwrap(),
                2 => g.binary(OpKind::Mul, a, b).unwrap(),
                3 => g.unary(OpKind::Not, a).unwrap(),
                _ => {
                    let c = g.binary(OpKind::Ult, a, b).unwrap();
                    g.select(c, a, b).unwrap()
                }
            };
            pool.push(id);
        }
        let sinks: Vec<_> = g.node_ids().filter(|&id| g.users(id).is_empty()).collect();
        for s in sinks {
            g.set_output(s);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_graphs_validate(g in arbitrary_graph()) {
        prop_assert!(g.validate().is_ok());
    }

    #[test]
    fn text_roundtrip_preserves_semantics(g in arbitrary_graph(), seed in any::<u64>()) {
        let printed = text::print(&g);
        let reparsed = text::parse(&printed).expect("own output parses");
        prop_assert_eq!(g.len(), reparsed.len());
        // Compare interpreter results on a random input vector.
        let mut state = seed;
        let mut inputs = HashMap::new();
        for &p in g.params() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let node = g.node(p);
            inputs.insert(
                node.name.clone().unwrap(),
                BitVecValue::from_u64(state >> 13, node.width),
            );
        }
        let o1 = interp::evaluate_outputs(&g, &inputs).unwrap();
        let o2 = interp::evaluate_outputs(&reparsed, &inputs).unwrap();
        prop_assert_eq!(o1, o2);
    }

    #[test]
    fn reachability_agrees_with_fanin(g in arbitrary_graph()) {
        use isdc_ir::analysis::{transitive_fanin, ReachabilityMatrix};
        let m = ReachabilityMatrix::compute(&g);
        for v in g.node_ids() {
            let fanin = transitive_fanin(&g, &[v]);
            for u in g.node_ids() {
                prop_assert_eq!(
                    m.reaches(u, v),
                    fanin.contains(&u),
                    "disagree on ({}, {})", u, v
                );
            }
        }
    }

    #[test]
    fn logic_levels_respect_edges(g in arbitrary_graph()) {
        let levels = isdc_ir::analysis::logic_levels(&g);
        for (id, node) in g.iter() {
            for &p in &node.operands {
                prop_assert!(levels[p.index()] < levels[id.index()]);
            }
        }
    }
}
