//! # isdc-ir — HLS intermediate representation
//!
//! The dataflow IR that [ISDC](https://arxiv.org/abs/2401.12343) schedules:
//! a directed acyclic graph of typed bit-vector operations, modeled on the
//! scheduling-relevant subset of the Google XLS IR.
//!
//! The crate provides:
//!
//! - [`Graph`] / [`Node`] / [`OpKind`] — the graph itself and a builder API;
//! - [`BitVecValue`] — arbitrary-width bit-vector values;
//! - [`interp`] — a reference interpreter (functional ground truth for
//!   gate-level lowering);
//! - [`analysis`] — topological orders, reachability, fan-in/out sets;
//! - [`transform`] — DCE, CSE and constant folding (the pre-scheduling
//!   cleanup a frontend runs);
//! - [`dot`] — Graphviz export, optionally clustered by pipeline stage;
//! - [`text`] — a parser and printer for a human-readable text format.
//!
//! # Examples
//!
//! ```
//! use isdc_ir::{Graph, OpKind, BitVecValue, interp};
//! use std::collections::HashMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // y = (a * b) + c, all 16-bit.
//! let mut g = Graph::new("mac");
//! let a = g.param("a", 16);
//! let b = g.param("b", 16);
//! let c = g.param("c", 16);
//! let prod = g.binary(OpKind::Mul, a, b)?;
//! let sum = g.binary(OpKind::Add, prod, c)?;
//! g.set_output(sum);
//! g.validate()?;
//!
//! let mut inputs = HashMap::new();
//! inputs.insert("a".into(), BitVecValue::from_u64(3, 16));
//! inputs.insert("b".into(), BitVecValue::from_u64(5, 16));
//! inputs.insert("c".into(), BitVecValue::from_u64(7, 16));
//! assert_eq!(interp::evaluate_outputs(&g, &inputs)?[0].to_u64(), 22);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod dot;
mod graph;
pub mod interp;
mod op;
pub mod text;
pub mod transform;
mod value;

pub use graph::{Graph, GraphError, Node, NodeId};
pub use op::OpKind;
pub use value::BitVecValue;
