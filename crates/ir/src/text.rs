//! Textual IR format: a human-readable serialization of [`Graph`]s.
//!
//! The syntax is a simplified take on the XLS IR text format:
//!
//! ```text
//! fn mac(a: bits[16], b: bits[16], c: bits[16]) {
//!   t3: bits[16] = mul(a, b)
//!   t4: bits[16] = add(t3, c)
//!   ret t4
//! }
//! ```
//!
//! Attribute-carrying ops spell their attributes as `key=value` pairs:
//! `bit_slice(x, start=4, width=4)`, `zero_ext(x, new_width=32)`,
//! `literal(value=0xff, width=8)`.

use crate::graph::{Graph, GraphError, NodeId};
use crate::op::OpKind;
use crate::value::BitVecValue;
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Renders a graph in the textual IR format.
///
/// Round-trips with [`parse`]: `parse(&print(&g))` reconstructs a graph that
/// computes the same function with the same structure.
pub fn print(graph: &Graph) -> String {
    let mut out = String::new();
    let name_of = |id: NodeId| -> String {
        graph.node(id).name.clone().unwrap_or_else(|| format!("t{}", id.0))
    };
    write!(out, "fn {}(", graph.name()).unwrap();
    for (i, &p) in graph.params().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{}: bits[{}]", name_of(p), graph.node(p).width).unwrap();
    }
    out.push_str(") {\n");
    for (id, node) in graph.iter() {
        if node.kind == OpKind::Param {
            continue;
        }
        write!(out, "  {}: bits[{}] = {}(", name_of(id), node.width, node.kind.mnemonic()).unwrap();
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&s);
        };
        for &op in &node.operands {
            emit(name_of(op), &mut out);
        }
        match &node.kind {
            OpKind::Literal(v) => {
                emit(format!("value={}", render_hex(v)), &mut out);
                emit(format!("width={}", v.width()), &mut out);
            }
            OpKind::BitSlice { start, width } => {
                emit(format!("start={start}"), &mut out);
                emit(format!("width={width}"), &mut out);
            }
            OpKind::ZeroExt { new_width } | OpKind::SignExt { new_width } => {
                emit(format!("new_width={new_width}"), &mut out);
            }
            _ => {}
        }
        out.push_str(")\n");
    }
    out.push_str("  ret ");
    for (i, &o) in graph.outputs().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&name_of(o));
    }
    out.push_str("\n}\n");
    out
}

fn render_hex(v: &BitVecValue) -> String {
    let s = format!("{v:?}"); // bits[w]:0x....
    let hex = s.split(":0x").nth(1).unwrap_or("0");
    let trimmed = hex.trim_start_matches('0');
    format!("0x{}", if trimmed.is_empty() { "0" } else { trimmed })
}

/// Errors produced by [`parse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The input deviated from the grammar.
    Syntax {
        /// 1-based line number of the offending token.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A structurally invalid graph (bad widths, unknown operand, ...).
    Graph(GraphError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            ParseError::Graph(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<GraphError> for ParseError {
    fn from(e: GraphError) -> Self {
        ParseError::Graph(e)
    }
}

/// Parses the textual IR format produced by [`print()`](print()).
///
/// # Errors
///
/// Returns [`ParseError::Syntax`] on malformed input and
/// [`ParseError::Graph`] when the text describes an inconsistent graph.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = "fn inc(x: bits[8]) {\n  one: bits[8] = literal(value=0x1, width=8)\n  y: bits[8] = add(x, one)\n  ret y\n}\n";
/// let g = isdc_ir::text::parse(src)?;
/// assert_eq!(g.name(), "inc");
/// assert_eq!(g.len(), 3);
/// # Ok(())
/// # }
/// ```
pub fn parse(src: &str) -> Result<Graph, ParseError> {
    Parser::new(src).parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        let lines = src
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.split("//").next().unwrap_or("").trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Self { lines, pos: 0 }
    }

    fn error(&self, line: usize, message: impl Into<String>) -> ParseError {
        ParseError::Syntax { line, message: message.into() }
    }

    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        let item = self.lines.get(self.pos).copied();
        self.pos += 1;
        item
    }

    fn parse(mut self) -> Result<Graph, ParseError> {
        let (line_no, header) = self.next_line().ok_or_else(|| self.error(0, "empty input"))?;
        let header = header
            .strip_prefix("fn ")
            .ok_or_else(|| self.error(line_no, "expected `fn <name>(...)`"))?;
        let open = header
            .find('(')
            .ok_or_else(|| self.error(line_no, "expected `(` after function name"))?;
        let close = header
            .rfind(')')
            .ok_or_else(|| self.error(line_no, "expected `)` in function header"))?;
        let name = header[..open].trim();
        if name.is_empty() {
            return Err(self.error(line_no, "missing function name"));
        }
        let mut graph = Graph::new(name);
        let mut env: HashMap<String, NodeId> = HashMap::new();
        let params_src = &header[open + 1..close];
        for part in split_top_level(params_src) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (pname, width) = parse_typed_name(part)
                .ok_or_else(|| self.error(line_no, format!("bad parameter `{part}`")))?;
            let id = graph.param(pname, width);
            env.insert(pname.to_string(), id);
        }
        loop {
            let (line_no, line) = self
                .next_line()
                .ok_or_else(|| self.error(0, "unexpected end of input (missing `}`)"))?;
            if line == "}" {
                break;
            }
            if let Some(rets) = line.strip_prefix("ret ") {
                for r in rets.split(',') {
                    let r = r.trim();
                    let id = *env
                        .get(r)
                        .ok_or_else(|| self.error(line_no, format!("unknown value `{r}`")))?;
                    graph.set_output(id);
                }
                continue;
            }
            // `<name>: bits[w] = <op>(args...)`
            let (lhs, rhs) = line
                .split_once('=')
                .ok_or_else(|| self.error(line_no, "expected `name: bits[w] = op(...)`"))?;
            let (vname, declared_width) = parse_typed_name(lhs.trim())
                .ok_or_else(|| self.error(line_no, format!("bad binding `{}`", lhs.trim())))?;
            let rhs = rhs.trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| self.error(line_no, "expected `(` after op mnemonic"))?;
            let close =
                rhs.rfind(')').ok_or_else(|| self.error(line_no, "expected closing `)`"))?;
            let mnemonic = rhs[..open].trim();
            let mut operands: Vec<NodeId> = Vec::new();
            let mut attrs: HashMap<&str, &str> = HashMap::new();
            for arg in split_top_level(&rhs[open + 1..close]) {
                let arg = arg.trim();
                if arg.is_empty() {
                    continue;
                }
                if let Some((k, v)) = arg.split_once('=') {
                    attrs.insert(k.trim(), v.trim());
                } else {
                    let id = *env
                        .get(arg)
                        .ok_or_else(|| self.error(line_no, format!("unknown value `{arg}`")))?;
                    operands.push(id);
                }
            }
            let kind = self.kind_from(mnemonic, &attrs, line_no)?;
            let id = graph.add_node(kind, operands)?;
            if graph.node(id).width != declared_width {
                return Err(self.error(
                    line_no,
                    format!(
                        "`{vname}` declares bits[{declared_width}] but op produces bits[{}]",
                        graph.node(id).width
                    ),
                ));
            }
            graph.set_name(id, vname);
            if env.insert(vname.to_string(), id).is_some() {
                return Err(self.error(line_no, format!("redefinition of `{vname}`")));
            }
        }
        graph.validate()?;
        Ok(graph)
    }

    fn kind_from(
        &self,
        mnemonic: &str,
        attrs: &HashMap<&str, &str>,
        line: usize,
    ) -> Result<OpKind, ParseError> {
        let int_attr = |key: &str| -> Result<u32, ParseError> {
            attrs
                .get(key)
                .ok_or_else(|| self.error(line, format!("{mnemonic} requires `{key}=`")))?
                .parse::<u32>()
                .map_err(|_| self.error(line, format!("bad integer for `{key}`")))
        };
        Ok(match mnemonic {
            "literal" => {
                let width = int_attr("width")?;
                let raw = attrs
                    .get("value")
                    .ok_or_else(|| self.error(line, "literal requires `value=`"))?;
                let v = parse_hex_value(raw, width)
                    .ok_or_else(|| self.error(line, format!("bad literal value `{raw}`")))?;
                OpKind::Literal(v)
            }
            "add" => OpKind::Add,
            "sub" => OpKind::Sub,
            "mul" => OpKind::Mul,
            "neg" => OpKind::Neg,
            "and" => OpKind::And,
            "or" => OpKind::Or,
            "xor" => OpKind::Xor,
            "not" => OpKind::Not,
            "shll" => OpKind::Shll,
            "shrl" => OpKind::Shrl,
            "shra" => OpKind::Shra,
            "eq" => OpKind::Eq,
            "ne" => OpKind::Ne,
            "ult" => OpKind::Ult,
            "ule" => OpKind::Ule,
            "ugt" => OpKind::Ugt,
            "uge" => OpKind::Uge,
            "sel" => OpKind::Sel,
            "concat" => OpKind::Concat,
            "bit_slice" => {
                OpKind::BitSlice { start: int_attr("start")?, width: int_attr("width")? }
            }
            "zero_ext" => OpKind::ZeroExt { new_width: int_attr("new_width")? },
            "sign_ext" => OpKind::SignExt { new_width: int_attr("new_width")? },
            "reduce_xor" => OpKind::ReduceXor,
            "reduce_or" => OpKind::ReduceOr,
            "reduce_and" => OpKind::ReduceAnd,
            other => return Err(self.error(line, format!("unknown op `{other}`"))),
        })
    }
}

/// Splits on commas that are not inside brackets.
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in s.char_indices() {
        match c {
            '[' | '(' => depth += 1,
            ']' | ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// Parses `name: bits[w]`.
fn parse_typed_name(s: &str) -> Option<(&str, u32)> {
    let (name, ty) = s.split_once(':')?;
    let ty = ty.trim();
    let width = ty.strip_prefix("bits[")?.strip_suffix(']')?.parse().ok()?;
    let name = name.trim();
    if name.is_empty() || !name.chars().all(|c| c.is_alphanumeric() || c == '_' || c == '.') {
        return None;
    }
    Some((name, width))
}

fn parse_hex_value(raw: &str, width: u32) -> Option<BitVecValue> {
    let hex = raw.strip_prefix("0x").unwrap_or(raw);
    if hex.is_empty() || hex.len() as u32 > width.div_ceil(4) {
        return None;
    }
    let mut v = BitVecValue::zero(width);
    for (i, c) in hex.chars().rev().enumerate() {
        let nib = c.to_digit(16)? as u64;
        for b in 0..4 {
            let pos = (i * 4 + b) as u32;
            if nib >> b & 1 == 1 {
                if pos >= width {
                    return None;
                }
                v.set_bit(pos, true);
            }
        }
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;

    fn mac() -> Graph {
        let mut g = Graph::new("mac");
        let a = g.param("a", 16);
        let b = g.param("b", 16);
        let c = g.param("c", 16);
        let one = g.literal_u64(0x2a, 16);
        let prod = g.binary(OpKind::Mul, a, b).unwrap();
        let masked = g.binary(OpKind::And, prod, one).unwrap();
        let sum = g.binary(OpKind::Add, masked, c).unwrap();
        let sl = g.unary(OpKind::BitSlice { start: 4, width: 8 }, sum).unwrap();
        let ext = g.unary(OpKind::ZeroExt { new_width: 16 }, sl).unwrap();
        g.set_output(ext);
        g
    }

    #[test]
    fn print_contains_structure() {
        let text = print(&mac());
        assert!(text.starts_with("fn mac(a: bits[16], b: bits[16], c: bits[16]) {"));
        assert!(text.contains("mul(a, b)"));
        assert!(text.contains("literal(value=0x2a, width=16)"));
        assert!(text.contains("bit_slice("));
        assert!(text.contains("start=4"));
        assert!(text.trim_end().ends_with('}'));
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let g = mac();
        let g2 = parse(&print(&g)).unwrap();
        assert_eq!(g.len(), g2.len());
        let mut inputs = HashMap::new();
        for (name, val) in [("a", 31u64), ("b", 77), ("c", 1000)] {
            inputs.insert(name.to_string(), BitVecValue::from_u64(val, 16));
        }
        let o1 = interp::evaluate_outputs(&g, &inputs).unwrap();
        let o2 = interp::evaluate_outputs(&g2, &inputs).unwrap();
        assert_eq!(o1, o2);
    }

    #[test]
    fn roundtrip_twice_is_fixpoint() {
        let g = mac();
        let t1 = print(&parse(&print(&g)).unwrap());
        let t2 = print(&parse(&t1).unwrap());
        assert_eq!(t1, t2);
    }

    #[test]
    fn parse_rejects_unknown_value() {
        let src = "fn f(a: bits[8]) {\n  y: bits[8] = add(a, zzz)\n  ret y\n}";
        let err = parse(src).unwrap_err();
        assert!(matches!(err, ParseError::Syntax { line: 2, .. }), "{err}");
    }

    #[test]
    fn parse_rejects_unknown_op() {
        let src = "fn f(a: bits[8]) {\n  y: bits[8] = frobnicate(a)\n  ret y\n}";
        assert!(parse(src).is_err());
    }

    #[test]
    fn parse_rejects_width_lie() {
        let src = "fn f(a: bits[8], b: bits[8]) {\n  y: bits[4] = add(a, b)\n  ret y\n}";
        let err = parse(src).unwrap_err();
        assert!(format!("{err}").contains("declares bits[4]"));
    }

    #[test]
    fn parse_rejects_redefinition() {
        let src = "fn f(a: bits[8]) {\n  y: bits[8] = not(a)\n  y: bits[8] = not(a)\n  ret y\n}";
        assert!(parse(src).is_err());
    }

    #[test]
    fn parse_handles_comments_and_blank_lines() {
        let src = "// header\nfn f(a: bits[8]) {\n\n  // negate\n  y: bits[8] = not(a) // trailing\n  ret y\n}";
        let g = parse(src).unwrap();
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn parse_multiple_outputs() {
        let src = "fn f(a: bits[8]) {\n  y: bits[8] = not(a)\n  ret y, a\n}";
        let g = parse(src).unwrap();
        assert_eq!(g.outputs().len(), 2);
    }

    #[test]
    fn parse_hex_values() {
        let v = parse_hex_value("0xff", 8).unwrap();
        assert_eq!(v.to_u64(), 0xff);
        assert!(parse_hex_value("0x1ff", 8).is_none()); // overflow
        assert!(parse_hex_value("0xzz", 8).is_none());
    }

    #[test]
    fn typed_name_parsing() {
        assert_eq!(parse_typed_name("x: bits[8]"), Some(("x", 8)));
        assert_eq!(parse_typed_name("foo_1:bits[128]"), Some(("foo_1", 128)));
        assert_eq!(parse_typed_name("x bits[8]"), None);
        assert_eq!(parse_typed_name("x: bits[y]"), None);
    }
}
