//! HLS IR operation kinds.
//!
//! The operation vocabulary mirrors the scheduling-relevant subset of the XLS
//! IR: bit-vector arithmetic, logic, shifts, comparisons, selects and bit
//! manipulation. Attributes that affect the result width (slice bounds,
//! extension targets) are embedded in the kind so a node is fully described by
//! `(kind, operands)`.

use crate::value::BitVecValue;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of an IR operation node.
///
/// # Examples
///
/// ```
/// use isdc_ir::OpKind;
///
/// assert_eq!(OpKind::Add.arity(), Some(2));
/// assert!(OpKind::Mul.is_arithmetic());
/// assert_eq!(OpKind::Concat.arity(), None); // n-ary
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// A graph input with no operands.
    Param,
    /// A compile-time constant.
    Literal(BitVecValue),
    /// Wrapping addition of two equal-width operands.
    Add,
    /// Wrapping subtraction of two equal-width operands.
    Sub,
    /// Wrapping multiplication of two equal-width operands.
    Mul,
    /// Two's-complement negation.
    Neg,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT.
    Not,
    /// Logical shift left; second operand is the shift amount.
    Shll,
    /// Logical shift right; second operand is the shift amount.
    Shrl,
    /// Arithmetic shift right; second operand is the shift amount.
    Shra,
    /// Equality comparison (1-bit result).
    Eq,
    /// Inequality comparison (1-bit result).
    Ne,
    /// Unsigned less-than (1-bit result).
    Ult,
    /// Unsigned less-or-equal (1-bit result).
    Ule,
    /// Unsigned greater-than (1-bit result).
    Ugt,
    /// Unsigned greater-or-equal (1-bit result).
    Uge,
    /// Two-way select: operands are `(selector, on_true, on_false)`;
    /// the selector is 1 bit wide.
    Sel,
    /// Concatenation of all operands; the first operand forms the most
    /// significant bits.
    Concat,
    /// Extracts `width` bits starting at `start`.
    BitSlice {
        /// Least-significant extracted bit position.
        start: u32,
        /// Number of extracted bits.
        width: u32,
    },
    /// Zero-extension to `new_width` (must not be narrower than the operand).
    ZeroExt {
        /// The result width.
        new_width: u32,
    },
    /// Sign-extension to `new_width` (must not be narrower than the operand).
    SignExt {
        /// The result width.
        new_width: u32,
    },
    /// XOR-reduce all bits of the operand to a single bit.
    ReduceXor,
    /// OR-reduce all bits of the operand to a single bit.
    ReduceOr,
    /// AND-reduce all bits of the operand to a single bit.
    ReduceAnd,
}

impl OpKind {
    /// The fixed operand count, or `None` for variadic ops ([`OpKind::Concat`]).
    pub fn arity(&self) -> Option<usize> {
        use OpKind::*;
        match self {
            Param | Literal(_) => Some(0),
            Not
            | Neg
            | BitSlice { .. }
            | ZeroExt { .. }
            | SignExt { .. }
            | ReduceXor
            | ReduceOr
            | ReduceAnd => Some(1),
            Add | Sub | Mul | And | Or | Xor | Shll | Shrl | Shra | Eq | Ne | Ult | Ule | Ugt
            | Uge => Some(2),
            Sel => Some(3),
            Concat => None,
        }
    }

    /// True for ops whose gate-level implementation contains carry or partial
    /// product chains (the expensive datapath ops).
    pub fn is_arithmetic(&self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Sub
                | OpKind::Mul
                | OpKind::Neg
                | OpKind::Ult
                | OpKind::Ule
                | OpKind::Ugt
                | OpKind::Uge
        )
    }

    /// True for pure wiring ops that synthesize to zero logic.
    pub fn is_free(&self) -> bool {
        matches!(
            self,
            OpKind::Param
                | OpKind::Literal(_)
                | OpKind::Concat
                | OpKind::BitSlice { .. }
                | OpKind::ZeroExt { .. }
                | OpKind::SignExt { .. }
        )
    }

    /// True if operand order does not affect the result.
    pub fn is_commutative(&self) -> bool {
        matches!(
            self,
            OpKind::Add
                | OpKind::Mul
                | OpKind::And
                | OpKind::Or
                | OpKind::Xor
                | OpKind::Eq
                | OpKind::Ne
        )
    }

    /// The canonical mnemonic used by the text format.
    pub fn mnemonic(&self) -> &'static str {
        use OpKind::*;
        match self {
            Param => "param",
            Literal(_) => "literal",
            Add => "add",
            Sub => "sub",
            Mul => "mul",
            Neg => "neg",
            And => "and",
            Or => "or",
            Xor => "xor",
            Not => "not",
            Shll => "shll",
            Shrl => "shrl",
            Shra => "shra",
            Eq => "eq",
            Ne => "ne",
            Ult => "ult",
            Ule => "ule",
            Ugt => "ugt",
            Uge => "uge",
            Sel => "sel",
            Concat => "concat",
            BitSlice { .. } => "bit_slice",
            ZeroExt { .. } => "zero_ext",
            SignExt { .. } => "sign_ext",
            ReduceXor => "reduce_xor",
            ReduceOr => "reduce_or",
            ReduceAnd => "reduce_and",
        }
    }

    /// Computes the result width from operand widths, or an error message if
    /// the operand widths are inconsistent with this kind.
    pub fn infer_width(&self, operand_widths: &[u32]) -> Result<u32, String> {
        use OpKind::*;
        if let Some(arity) = self.arity() {
            if operand_widths.len() != arity {
                return Err(format!(
                    "{} expects {} operands, got {}",
                    self.mnemonic(),
                    arity,
                    operand_widths.len()
                ));
            }
        } else if operand_widths.is_empty() {
            return Err(format!("{} expects at least one operand", self.mnemonic()));
        }
        let same2 = |w: &[u32]| -> Result<u32, String> {
            if w[0] != w[1] {
                Err(format!("{} operand widths differ: {} vs {}", self.mnemonic(), w[0], w[1]))
            } else {
                Ok(w[0])
            }
        };
        match self {
            Param => Err("param width cannot be inferred".to_string()),
            Literal(v) => Ok(v.width()),
            Add | Sub | Mul | And | Or | Xor => same2(operand_widths),
            Neg | Not => Ok(operand_widths[0]),
            Shll | Shrl | Shra => Ok(operand_widths[0]),
            Eq | Ne | Ult | Ule | Ugt | Uge => same2(operand_widths).map(|_| 1),
            Sel => {
                if operand_widths[0] != 1 {
                    Err(format!("sel selector must be 1 bit, got {}", operand_widths[0]))
                } else if operand_widths[1] != operand_widths[2] {
                    Err(format!(
                        "sel arm widths differ: {} vs {}",
                        operand_widths[1], operand_widths[2]
                    ))
                } else {
                    Ok(operand_widths[1])
                }
            }
            Concat => Ok(operand_widths.iter().sum()),
            BitSlice { start, width } => {
                if start + width > operand_widths[0] {
                    Err(format!(
                        "bit_slice [{start}, {}) out of range for operand width {}",
                        start + width,
                        operand_widths[0]
                    ))
                } else if *width == 0 {
                    Err("bit_slice width must be positive".to_string())
                } else {
                    Ok(*width)
                }
            }
            ZeroExt { new_width } | SignExt { new_width } => {
                if *new_width < operand_widths[0] {
                    Err(format!(
                        "{} target width {} narrower than operand width {}",
                        self.mnemonic(),
                        new_width,
                        operand_widths[0]
                    ))
                } else {
                    Ok(*new_width)
                }
            }
            ReduceXor | ReduceOr | ReduceAnd => Ok(1),
        }
    }
}

impl fmt::Display for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_covers_all_classes() {
        assert_eq!(OpKind::Param.arity(), Some(0));
        assert_eq!(OpKind::Not.arity(), Some(1));
        assert_eq!(OpKind::Add.arity(), Some(2));
        assert_eq!(OpKind::Sel.arity(), Some(3));
        assert_eq!(OpKind::Concat.arity(), None);
    }

    #[test]
    fn width_inference_binary() {
        assert_eq!(OpKind::Add.infer_width(&[8, 8]), Ok(8));
        assert!(OpKind::Add.infer_width(&[8, 9]).is_err());
        assert!(OpKind::Add.infer_width(&[8]).is_err());
    }

    #[test]
    fn width_inference_compare_is_one_bit() {
        assert_eq!(OpKind::Ult.infer_width(&[32, 32]), Ok(1));
        assert_eq!(OpKind::Eq.infer_width(&[5, 5]), Ok(1));
    }

    #[test]
    fn width_inference_sel() {
        assert_eq!(OpKind::Sel.infer_width(&[1, 16, 16]), Ok(16));
        assert!(OpKind::Sel.infer_width(&[2, 16, 16]).is_err());
        assert!(OpKind::Sel.infer_width(&[1, 16, 8]).is_err());
    }

    #[test]
    fn width_inference_wiring() {
        assert_eq!(OpKind::Concat.infer_width(&[4, 8, 4]), Ok(16));
        assert!(OpKind::Concat.infer_width(&[]).is_err());
        assert_eq!(OpKind::BitSlice { start: 4, width: 4 }.infer_width(&[8]), Ok(4));
        assert!(OpKind::BitSlice { start: 5, width: 4 }.infer_width(&[8]).is_err());
        assert_eq!(OpKind::ZeroExt { new_width: 16 }.infer_width(&[8]), Ok(16));
        assert!(OpKind::ZeroExt { new_width: 4 }.infer_width(&[8]).is_err());
    }

    #[test]
    fn shifts_take_result_width_from_value_operand() {
        assert_eq!(OpKind::Shll.infer_width(&[32, 5]), Ok(32));
    }

    #[test]
    fn classification() {
        assert!(OpKind::Mul.is_arithmetic());
        assert!(!OpKind::Xor.is_arithmetic());
        assert!(OpKind::Concat.is_free());
        assert!(!OpKind::Add.is_free());
        assert!(OpKind::Xor.is_commutative());
        assert!(!OpKind::Sub.is_commutative());
    }
}
