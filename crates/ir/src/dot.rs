//! Graphviz DOT export for IR graphs and schedules.
//!
//! Emits one cluster per pipeline stage when a schedule is supplied, which
//! makes register boundaries (every edge leaving a cluster) visible at a
//! glance — handy for debugging extraction strategies.

use crate::graph::{Graph, NodeId};
use std::fmt::Write as _;

/// Renders the graph in Graphviz DOT format.
pub fn to_dot(graph: &Graph) -> String {
    render(graph, None)
}

/// Renders the graph with nodes grouped into per-stage clusters.
///
/// `stage_of` must assign a stage to every node (typically
/// `schedule.cycles()`).
///
/// # Panics
///
/// Panics if `stage_of.len() != graph.len()`.
pub fn to_dot_with_stages(graph: &Graph, stage_of: &[u32]) -> String {
    assert_eq!(stage_of.len(), graph.len(), "one stage per node required");
    render(graph, Some(stage_of))
}

fn render(graph: &Graph, stage_of: Option<&[u32]>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(graph.name()));
    let _ = writeln!(out, "  rankdir=TB;");
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");

    let label = |id: NodeId| -> String {
        let node = graph.node(id);
        let name = node.name.as_deref().unwrap_or("");
        if name.is_empty() {
            format!("{id}: {}\\nbits[{}]", node.kind.mnemonic(), node.width)
        } else {
            format!("{name}\\n{}: bits[{}]", node.kind.mnemonic(), node.width)
        }
    };
    let emit_node = |out: &mut String, id: NodeId| {
        let node = graph.node(id);
        let shape =
            if node.operands.is_empty() { ", style=filled, fillcolor=lightblue" } else { "" };
        let outline = if graph.outputs().contains(&id) { ", peripheries=2" } else { "" };
        let _ = writeln!(out, "    n{} [label=\"{}\"{shape}{outline}];", id.0, label(id));
    };

    match stage_of {
        Some(stages) => {
            let max_stage = stages.iter().copied().max().unwrap_or(0);
            for stage in 0..=max_stage {
                let _ = writeln!(out, "  subgraph cluster_stage{stage} {{");
                let _ = writeln!(out, "    label=\"stage {stage}\";");
                for id in graph.node_ids() {
                    if stages[id.index()] == stage {
                        emit_node(&mut out, id);
                    }
                }
                let _ = writeln!(out, "  }}");
            }
        }
        None => {
            for id in graph.node_ids() {
                emit_node(&mut out, id);
            }
        }
    }
    for (id, node) in graph.iter() {
        for &op in &node.operands {
            let crossing = stage_of.map(|s| s[op.index()] != s[id.index()]).unwrap_or(false);
            let style = if crossing { " [color=red, penwidth=2]" } else { "" };
            let _ = writeln!(out, "  n{} -> n{}{};", op.0, id.0, style);
        }
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name.chars().map(|c| if c.is_alphanumeric() { c } else { '_' }).collect();
    if cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    fn mac() -> Graph {
        let mut g = Graph::new("mac-1");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let m = g.binary(OpKind::Mul, a, b).unwrap();
        g.set_output(m);
        g
    }

    #[test]
    fn plain_dot_contains_all_nodes_and_edges() {
        let g = mac();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph mac_1 {"));
        assert_eq!(dot.matches("n0 ->").count() + dot.matches("n1 ->").count(), 2);
        assert!(dot.contains("mul: bits[8]") || dot.contains("mul\\nbits[8]"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn staged_dot_clusters_and_marks_crossings() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let x = g.unary(OpKind::Not, a).unwrap();
        let y = g.unary(OpKind::Neg, x).unwrap();
        g.set_output(y);
        let dot = to_dot_with_stages(&g, &[0, 0, 1]);
        assert!(dot.contains("cluster_stage0"));
        assert!(dot.contains("cluster_stage1"));
        // The x -> y edge crosses a boundary and must be highlighted.
        assert!(dot.contains("n1 -> n2 [color=red"));
        // The a -> x edge stays in stage 0.
        assert!(dot.contains("n0 -> n1;"));
    }

    #[test]
    #[should_panic(expected = "one stage per node")]
    fn staged_dot_checks_length() {
        let g = mac();
        let _ = to_dot_with_stages(&g, &[0]);
    }

    #[test]
    fn outputs_get_double_border() {
        let dot = to_dot(&mac());
        assert!(dot.contains("peripheries=2"));
    }
}
