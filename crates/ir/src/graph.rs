//! The HLS IR dataflow graph and its builder.

use crate::op::OpKind;
use crate::value::BitVecValue;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node within a [`Graph`].
///
/// Node ids are dense indices assigned in creation order, which is always a
/// valid topological order because operands must exist before their users.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single operation node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// What the node computes.
    pub kind: OpKind,
    /// Operand node ids, in positional order.
    pub operands: Vec<NodeId>,
    /// Result width in bits.
    pub width: u32,
    /// Optional user-facing name (parameters always have one).
    pub name: Option<String>,
}

/// Errors produced when constructing or validating a [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An operand id referred to a node that does not exist (or to a later
    /// node, which would create a cycle).
    InvalidOperand {
        /// The offending operand id.
        operand: NodeId,
        /// Number of nodes existing when the reference was made.
        node_count: usize,
    },
    /// Operand widths are inconsistent with the operation kind.
    WidthMismatch {
        /// Explanation from [`OpKind::infer_width`].
        message: String,
    },
    /// The graph has no output nodes.
    NoOutputs,
    /// A name was used for two different nodes.
    DuplicateName(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidOperand { operand, node_count } => {
                write!(f, "operand {operand} is out of range for graph with {node_count} nodes")
            }
            GraphError::WidthMismatch { message } => f.write_str(message),
            GraphError::NoOutputs => f.write_str("graph has no output nodes"),
            GraphError::DuplicateName(name) => write!(f, "duplicate node name `{name}`"),
        }
    }
}

impl std::error::Error for GraphError {}

/// A directed acyclic dataflow graph of HLS IR operations.
///
/// This is the unit ISDC schedules: nodes are operations (additions,
/// multiplications, selects, ...), edges are data dependencies. Acyclicity is
/// guaranteed by construction — operands must already exist when a node is
/// added, so node-id order is a topological order.
///
/// # Examples
///
/// ```
/// use isdc_ir::{Graph, OpKind};
///
/// let mut g = Graph::new("mac");
/// let a = g.param("a", 16);
/// let b = g.param("b", 16);
/// let c = g.param("c", 16);
/// let prod = g.binary(OpKind::Mul, a, b).unwrap();
/// let sum = g.binary(OpKind::Add, prod, c).unwrap();
/// g.set_output(sum);
/// assert_eq!(g.node(sum).width, 16);
/// assert_eq!(g.users(prod), &[sum]);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    nodes: Vec<Node>,
    params: Vec<NodeId>,
    outputs: Vec<NodeId>,
    #[serde(skip)]
    users: UsersCache,
}

#[derive(Clone, Debug, Default)]
struct UsersCache {
    /// `users[v]` = ids of nodes that consume `v`, deduplicated, ascending.
    users: Vec<Vec<NodeId>>,
}

impl Graph {
    /// Creates an empty graph with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            nodes: Vec::new(),
            params: Vec::new(),
            outputs: Vec::new(),
            users: UsersCache::default(),
        }
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph contains no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Accesses a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All node ids in creation (= topological) order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All nodes with their ids, in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// The parameter (primary input) nodes.
    pub fn params(&self) -> &[NodeId] {
        &self.params
    }

    /// The output nodes.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Adds a parameter node of the given width and returns its id.
    pub fn param(&mut self, name: impl Into<String>, width: u32) -> NodeId {
        let id = self.push(Node {
            kind: OpKind::Param,
            operands: vec![],
            width,
            name: Some(name.into()),
        });
        self.params.push(id);
        id
    }

    /// Adds a literal (constant) node.
    pub fn literal(&mut self, value: BitVecValue) -> NodeId {
        let width = value.width();
        self.push(Node { kind: OpKind::Literal(value), operands: vec![], width, name: None })
    }

    /// Convenience: a literal from the low `width` bits of `x`.
    pub fn literal_u64(&mut self, x: u64, width: u32) -> NodeId {
        self.literal(BitVecValue::from_u64(x, width))
    }

    /// Adds an operation node with explicit operands, inferring the width.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidOperand`] if an operand id is out of
    /// range, or [`GraphError::WidthMismatch`] if the operand widths are
    /// inconsistent with `kind`.
    pub fn add_node(&mut self, kind: OpKind, operands: Vec<NodeId>) -> Result<NodeId, GraphError> {
        for &op in &operands {
            if op.index() >= self.nodes.len() {
                return Err(GraphError::InvalidOperand {
                    operand: op,
                    node_count: self.nodes.len(),
                });
            }
        }
        let widths: Vec<u32> = operands.iter().map(|&o| self.nodes[o.index()].width).collect();
        let width =
            kind.infer_width(&widths).map_err(|message| GraphError::WidthMismatch { message })?;
        Ok(self.push(Node { kind, operands, width, name: None }))
    }

    /// Adds a unary operation.
    ///
    /// # Errors
    ///
    /// See [`Graph::add_node`].
    pub fn unary(&mut self, kind: OpKind, a: NodeId) -> Result<NodeId, GraphError> {
        self.add_node(kind, vec![a])
    }

    /// Adds a binary operation.
    ///
    /// # Errors
    ///
    /// See [`Graph::add_node`].
    pub fn binary(&mut self, kind: OpKind, a: NodeId, b: NodeId) -> Result<NodeId, GraphError> {
        self.add_node(kind, vec![a, b])
    }

    /// Adds a two-way select.
    ///
    /// # Errors
    ///
    /// See [`Graph::add_node`].
    pub fn select(
        &mut self,
        selector: NodeId,
        on_true: NodeId,
        on_false: NodeId,
    ) -> Result<NodeId, GraphError> {
        self.add_node(OpKind::Sel, vec![selector, on_true, on_false])
    }

    /// Marks a node as a graph output. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_output(&mut self, id: NodeId) {
        assert!(id.index() < self.nodes.len(), "output {id} out of range");
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Assigns a user-facing name to a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn set_name(&mut self, id: NodeId, name: impl Into<String>) {
        self.nodes[id.index()].name = Some(name.into());
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.users.users.push(Vec::new());
        for &op in node.operands.clone().iter() {
            let list = &mut self.users.users[op.index()];
            if list.last() != Some(&id) {
                list.push(id);
            }
        }
        self.nodes.push(node);
        id
    }

    /// The nodes that consume `id`'s result, deduplicated, ascending.
    ///
    /// This is the `num_users` fanout quantity of the paper's Eq. 3.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn users(&self, id: NodeId) -> &[NodeId] {
        &self.users.users[id.index()]
    }

    /// Checks structural invariants: output presence, operand ordering, unique
    /// non-empty names, consistent widths.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), GraphError> {
        if self.outputs.is_empty() {
            return Err(GraphError::NoOutputs);
        }
        let mut seen_names: HashMap<&str, NodeId> = HashMap::new();
        for (id, node) in self.iter() {
            for &op in &node.operands {
                if op.index() >= id.index() {
                    return Err(GraphError::InvalidOperand { operand: op, node_count: id.index() });
                }
            }
            let widths: Vec<u32> =
                node.operands.iter().map(|&o| self.nodes[o.index()].width).collect();
            if node.kind != OpKind::Param {
                let inferred = node
                    .kind
                    .infer_width(&widths)
                    .map_err(|message| GraphError::WidthMismatch { message })?;
                if inferred != node.width {
                    return Err(GraphError::WidthMismatch {
                        message: format!(
                            "node {id} declares width {} but {} infers {}",
                            node.width,
                            node.kind.mnemonic(),
                            inferred
                        ),
                    });
                }
            }
            if let Some(name) = &node.name {
                if let Some(prev) = seen_names.insert(name.as_str(), id) {
                    if prev != id {
                        return Err(GraphError::DuplicateName(name.clone()));
                    }
                }
            }
        }
        Ok(())
    }

    /// Rebuilds the (serde-skipped) users cache; called after deserialization.
    pub fn rebuild_users(&mut self) {
        self.users.users = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let id = NodeId(i as u32);
            for &op in &node.operands {
                let list = &mut self.users.users[op.index()];
                if list.last() != Some(&id) {
                    list.push(id);
                }
            }
        }
    }

    /// Total number of result bits across all non-free nodes — a rough size
    /// metric used in reports.
    pub fn total_bits(&self) -> u64 {
        self.nodes.iter().filter(|n| !n.kind.is_free()).map(|n| n.width as u64).sum()
    }

    /// Counts nodes of each mnemonic, for workload reporting.
    pub fn op_histogram(&self) -> HashMap<&'static str, usize> {
        let mut h = HashMap::new();
        for node in &self.nodes {
            *h.entry(node.kind.mnemonic()).or_insert(0) += 1;
        }
        h
    }
}

impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.nodes == other.nodes
            && self.params == other.params
            && self.outputs == other.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac() -> (Graph, NodeId, NodeId) {
        let mut g = Graph::new("mac");
        let a = g.param("a", 16);
        let b = g.param("b", 16);
        let c = g.param("c", 16);
        let prod = g.binary(OpKind::Mul, a, b).unwrap();
        let sum = g.binary(OpKind::Add, prod, c).unwrap();
        g.set_output(sum);
        (g, prod, sum)
    }

    #[test]
    fn build_and_validate() {
        let (g, _, sum) = mac();
        assert_eq!(g.len(), 5);
        assert_eq!(g.params().len(), 3);
        assert_eq!(g.outputs(), &[sum]);
        g.validate().unwrap();
    }

    #[test]
    fn users_tracking() {
        let (mut g, prod, sum) = mac();
        assert_eq!(g.users(prod), &[sum]);
        assert!(g.users(sum).is_empty());
        let d = g.binary(OpKind::Xor, prod, prod).unwrap();
        // duplicate operand appears once
        assert_eq!(g.users(prod), &[sum, d]);
    }

    #[test]
    fn invalid_operand_rejected() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let err = g.binary(OpKind::Add, a, NodeId(99)).unwrap_err();
        assert!(matches!(err, GraphError::InvalidOperand { .. }));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 9);
        let err = g.binary(OpKind::Add, a, b).unwrap_err();
        assert!(matches!(err, GraphError::WidthMismatch { .. }));
    }

    #[test]
    fn validate_catches_no_outputs() {
        let mut g = Graph::new("t");
        g.param("a", 8);
        assert_eq!(g.validate(), Err(GraphError::NoOutputs));
    }

    #[test]
    fn validate_catches_duplicate_names() {
        let mut g = Graph::new("t");
        let a = g.param("x", 8);
        let b = g.param("y", 8);
        let s = g.binary(OpKind::Add, a, b).unwrap();
        g.set_name(s, "x");
        g.set_output(s);
        assert_eq!(g.validate(), Err(GraphError::DuplicateName("x".into())));
    }

    #[test]
    fn set_output_idempotent() {
        let (mut g, _, sum) = mac();
        g.set_output(sum);
        assert_eq!(g.outputs().len(), 1);
    }

    #[test]
    fn rebuild_users_matches_incremental() {
        let (mut g, prod, _) = mac();
        let before = g.users(prod).to_vec();
        g.rebuild_users();
        assert_eq!(g.users(prod), before.as_slice());
    }

    #[test]
    fn clone_then_rebuild_users_is_equal() {
        let (g, prod, _) = mac();
        let mut g2 = g.clone();
        g2.rebuild_users();
        assert_eq!(g, g2);
        assert_eq!(g.users(prod), g2.users(prod));
    }

    #[test]
    fn histogram_counts() {
        let (g, _, _) = mac();
        let h = g.op_histogram();
        assert_eq!(h["param"], 3);
        assert_eq!(h["mul"], 1);
        assert_eq!(h["add"], 1);
    }
}
