//! Arbitrary-width bit-vector values.
//!
//! [`BitVecValue`] is the concrete value domain of the IR interpreter. Widths
//! are fixed per value (like hardware wires); all arithmetic wraps modulo
//! `2^width`, matching the semantics of the corresponding [`crate::OpKind`]s.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of bits per storage limb.
const LIMB_BITS: u32 = 64;

/// A fixed-width bit vector of up to [`BitVecValue::MAX_WIDTH`] bits.
///
/// Bit 0 is the least significant bit. Unused high bits of the last limb are
/// always kept zero (a structural invariant re-established after every
/// mutation).
///
/// # Examples
///
/// ```
/// use isdc_ir::BitVecValue;
///
/// let a = BitVecValue::from_u64(0b1010, 4);
/// let b = BitVecValue::from_u64(0b0110, 4);
/// assert_eq!(a.xor(&b).to_u64(), 0b1100);
/// assert_eq!(a.add(&b).to_u64(), 0b0000); // wraps modulo 2^4
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVecValue {
    width: u32,
    limbs: Vec<u64>,
}

impl BitVecValue {
    /// Maximum supported width in bits.
    pub const MAX_WIDTH: u32 = 4096;

    /// Creates an all-zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or exceeds [`Self::MAX_WIDTH`].
    pub fn zero(width: u32) -> Self {
        assert!(
            width > 0 && width <= Self::MAX_WIDTH,
            "bit-vector width {width} out of range 1..={}",
            Self::MAX_WIDTH
        );
        let n = width.div_ceil(LIMB_BITS) as usize;
        Self { width, limbs: vec![0; n] }
    }

    /// Creates an all-ones value of the given width.
    pub fn all_ones(width: u32) -> Self {
        let mut v = Self::zero(width);
        for limb in &mut v.limbs {
            *limb = u64::MAX;
        }
        v.mask();
        v
    }

    /// Creates a value from the low `width` bits of `x`.
    pub fn from_u64(x: u64, width: u32) -> Self {
        let mut v = Self::zero(width);
        v.limbs[0] = x;
        v.mask();
        v
    }

    /// Creates a value from explicit bits, least significant first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or longer than [`Self::MAX_WIDTH`].
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut v = Self::zero(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.set_bit(i as u32, true);
            }
        }
        v
    }

    /// The width of this value in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Returns the low 64 bits as a `u64` (truncating wider values).
    pub fn to_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Returns bit `i` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        (self.limbs[(i / LIMB_BITS) as usize] >> (i % LIMB_BITS)) & 1 == 1
    }

    /// Sets bit `i` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set_bit(&mut self, i: u32, value: bool) {
        assert!(i < self.width, "bit index {i} out of range for width {}", self.width);
        let limb = &mut self.limbs[(i / LIMB_BITS) as usize];
        let mask = 1u64 << (i % LIMB_BITS);
        if value {
            *limb |= mask;
        } else {
            *limb &= !mask;
        }
    }

    /// Returns the bits as a vector, least significant first.
    pub fn to_bits(&self) -> Vec<bool> {
        (0..self.width).map(|i| self.bit(i)).collect()
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Clears bits at positions `>= width` in the top limb.
    fn mask(&mut self) {
        let rem = self.width % LIMB_BITS;
        if rem != 0 {
            let last = self.limbs.len() - 1;
            self.limbs[last] &= (1u64 << rem) - 1;
        }
    }

    fn assert_same_width(&self, other: &Self, op: &str) {
        assert_eq!(
            self.width, other.width,
            "{op}: operand widths differ ({} vs {})",
            self.width, other.width
        );
    }

    /// Bitwise AND. Panics if widths differ.
    pub fn and(&self, other: &Self) -> Self {
        self.assert_same_width(other, "and");
        let mut out = self.clone();
        for (a, b) in out.limbs.iter_mut().zip(&other.limbs) {
            *a &= b;
        }
        out
    }

    /// Bitwise OR. Panics if widths differ.
    pub fn or(&self, other: &Self) -> Self {
        self.assert_same_width(other, "or");
        let mut out = self.clone();
        for (a, b) in out.limbs.iter_mut().zip(&other.limbs) {
            *a |= b;
        }
        out
    }

    /// Bitwise XOR. Panics if widths differ.
    pub fn xor(&self, other: &Self) -> Self {
        self.assert_same_width(other, "xor");
        let mut out = self.clone();
        for (a, b) in out.limbs.iter_mut().zip(&other.limbs) {
            *a ^= b;
        }
        out
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for a in &mut out.limbs {
            *a = !*a;
        }
        out.mask();
        out
    }

    /// Wrapping addition modulo `2^width`. Panics if widths differ.
    pub fn add(&self, other: &Self) -> Self {
        self.assert_same_width(other, "add");
        let mut out = Self::zero(self.width);
        let mut carry = 0u64;
        for i in 0..self.limbs.len() {
            let (s1, c1) = self.limbs[i].overflowing_add(other.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out.limbs[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        out.mask();
        out
    }

    /// Wrapping subtraction modulo `2^width`. Panics if widths differ.
    pub fn sub(&self, other: &Self) -> Self {
        self.add(&other.neg())
    }

    /// Two's-complement negation modulo `2^width`.
    pub fn neg(&self) -> Self {
        let one = Self::from_u64(1, self.width);
        self.not().add(&one)
    }

    /// Wrapping multiplication modulo `2^width`. Panics if widths differ.
    pub fn mul(&self, other: &Self) -> Self {
        self.assert_same_width(other, "mul");
        let n = self.limbs.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry: u128 = 0;
            if self.limbs[i] == 0 {
                continue;
            }
            for j in 0..n - i {
                let cur =
                    acc[i + j] as u128 + (self.limbs[i] as u128) * (other.limbs[j] as u128) + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        let mut out = Self { width: self.width, limbs: acc };
        out.mask();
        out
    }

    /// Logical left shift by a dynamic amount. Shifts of `>= width` yield zero.
    pub fn shl(&self, amount: u64) -> Self {
        if amount >= self.width as u64 {
            return Self::zero(self.width);
        }
        let mut out = Self::zero(self.width);
        for i in 0..self.width {
            let src = i as i64 - amount as i64;
            if src >= 0 && self.bit(src as u32) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Logical right shift by a dynamic amount. Shifts of `>= width` yield zero.
    pub fn shr(&self, amount: u64) -> Self {
        if amount >= self.width as u64 {
            return Self::zero(self.width);
        }
        let mut out = Self::zero(self.width);
        for i in 0..self.width {
            let src = i as u64 + amount;
            if src < self.width as u64 && self.bit(src as u32) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Arithmetic right shift by a dynamic amount (sign bit replicated).
    pub fn shra(&self, amount: u64) -> Self {
        let sign = self.bit(self.width - 1);
        let mut out = self.shr(amount);
        if sign {
            let start = (self.width as u64).saturating_sub(amount.min(self.width as u64));
            for i in start..self.width as u64 {
                out.set_bit(i as u32, true);
            }
            if amount >= self.width as u64 {
                return Self::all_ones(self.width);
            }
        }
        out
    }

    /// Unsigned comparison: `self < other`. Panics if widths differ.
    pub fn ult(&self, other: &Self) -> bool {
        self.assert_same_width(other, "ult");
        for i in (0..self.limbs.len()).rev() {
            if self.limbs[i] != other.limbs[i] {
                return self.limbs[i] < other.limbs[i];
            }
        }
        false
    }

    /// Concatenation: `self` occupies the **high** bits, `low` the low bits
    /// (matching hardware `{self, low}` notation).
    pub fn concat(&self, low: &Self) -> Self {
        let width = self.width + low.width;
        assert!(width <= Self::MAX_WIDTH, "concat width {width} exceeds max");
        let mut out = Self::zero(width);
        for i in 0..low.width {
            if low.bit(i) {
                out.set_bit(i, true);
            }
        }
        for i in 0..self.width {
            if self.bit(i) {
                out.set_bit(low.width + i, true);
            }
        }
        out
    }

    /// Extracts `width` bits starting at bit `start` (little-endian).
    ///
    /// # Panics
    ///
    /// Panics if the slice extends past the end of the value.
    pub fn slice(&self, start: u32, width: u32) -> Self {
        assert!(
            start + width <= self.width,
            "slice [{start}, {start}+{width}) out of range for width {}",
            self.width
        );
        let mut out = Self::zero(width);
        for i in 0..width {
            if self.bit(start + i) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Zero-extends (or truncates, if narrower) to `new_width`.
    pub fn zero_ext(&self, new_width: u32) -> Self {
        let mut out = Self::zero(new_width);
        for i in 0..self.width.min(new_width) {
            if self.bit(i) {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// Sign-extends to `new_width` (truncates if narrower).
    pub fn sign_ext(&self, new_width: u32) -> Self {
        let mut out = self.zero_ext(new_width);
        if new_width > self.width && self.bit(self.width - 1) {
            for i in self.width..new_width {
                out.set_bit(i, true);
            }
        }
        out
    }

    /// XOR of all bits (1-bit result).
    pub fn reduce_xor(&self) -> Self {
        let parity = self.limbs.iter().fold(0u32, |p, l| p ^ l.count_ones()) & 1;
        Self::from_u64(parity as u64, 1)
    }

    /// OR of all bits (1-bit result).
    pub fn reduce_or(&self) -> Self {
        Self::from_u64(u64::from(!self.is_zero()), 1)
    }

    /// AND of all bits (1-bit result).
    pub fn reduce_and(&self) -> Self {
        Self::from_u64(u64::from(*self == Self::all_ones(self.width)), 1)
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.limbs.iter().map(|l| l.count_ones()).sum()
    }
}

impl fmt::Debug for BitVecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bits[{}]:0x", self.width)?;
        let nibbles = self.width.div_ceil(4);
        for i in (0..nibbles).rev() {
            let mut nib = 0u8;
            for b in 0..4 {
                let pos = i * 4 + b;
                if pos < self.width && self.bit(pos) {
                    nib |= 1 << b;
                }
            }
            write!(f, "{nib:x}")?;
        }
        Ok(())
    }
}

impl fmt::Display for BitVecValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_ones() {
        let z = BitVecValue::zero(67);
        assert!(z.is_zero());
        assert_eq!(z.width(), 67);
        let o = BitVecValue::all_ones(67);
        assert_eq!(o.count_ones(), 67);
        assert!(o.bit(66));
    }

    #[test]
    #[should_panic(expected = "width 0 out of range")]
    fn zero_width_rejected() {
        let _ = BitVecValue::zero(0);
    }

    #[test]
    fn from_u64_masks() {
        let v = BitVecValue::from_u64(0xff, 4);
        assert_eq!(v.to_u64(), 0xf);
    }

    #[test]
    fn add_wraps() {
        let a = BitVecValue::from_u64(0xffff_ffff_ffff_ffff, 64);
        let b = BitVecValue::from_u64(1, 64);
        assert_eq!(a.add(&b).to_u64(), 0);
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BitVecValue::from_u64(u64::MAX, 128);
        let b = BitVecValue::from_u64(1, 128);
        let s = a.add(&b);
        assert!(!s.bit(63));
        assert!(s.bit(64));
    }

    #[test]
    fn sub_and_neg() {
        let a = BitVecValue::from_u64(5, 8);
        let b = BitVecValue::from_u64(7, 8);
        assert_eq!(a.sub(&b).to_u64(), 254); // 5 - 7 mod 256
        assert_eq!(b.sub(&a).to_u64(), 2);
        assert_eq!(a.neg().to_u64(), 251);
    }

    #[test]
    fn mul_matches_native() {
        for (x, y) in [(3u64, 7u64), (255, 255), (0, 123), (1 << 20, 1 << 20)] {
            let a = BitVecValue::from_u64(x, 32);
            let b = BitVecValue::from_u64(y, 32);
            assert_eq!(a.mul(&b).to_u64(), (x.wrapping_mul(y)) & 0xffff_ffff);
        }
    }

    #[test]
    fn mul_wide_cross_limb() {
        let a = BitVecValue::from_u64(u64::MAX, 128);
        let s = a.mul(&a);
        // (2^64 - 1)^2 = 2^128 - 2^65 + 1; within 128 bits.
        assert_eq!(s.limbs[0], 1);
        assert_eq!(s.limbs[1], u64::MAX - 1);
    }

    #[test]
    fn shifts() {
        let v = BitVecValue::from_u64(0b1001, 8);
        assert_eq!(v.shl(2).to_u64(), 0b100100);
        assert_eq!(v.shr(1).to_u64(), 0b100);
        assert_eq!(v.shl(8).to_u64(), 0);
        assert_eq!(v.shr(100).to_u64(), 0);
    }

    #[test]
    fn arithmetic_shift_replicates_sign() {
        let v = BitVecValue::from_u64(0b1000_0000, 8);
        assert_eq!(v.shra(3).to_u64(), 0b1111_0000);
        assert_eq!(v.shra(100).to_u64(), 0xff);
        let p = BitVecValue::from_u64(0b0100_0000, 8);
        assert_eq!(p.shra(3).to_u64(), 0b0000_1000);
    }

    #[test]
    fn comparisons() {
        let a = BitVecValue::from_u64(3, 70);
        let mut b = BitVecValue::from_u64(3, 70);
        assert!(!a.ult(&b));
        b.set_bit(69, true);
        assert!(a.ult(&b));
        assert!(!b.ult(&a));
    }

    #[test]
    fn concat_order() {
        let hi = BitVecValue::from_u64(0b10, 2);
        let lo = BitVecValue::from_u64(0b011, 3);
        let c = hi.concat(&lo);
        assert_eq!(c.width(), 5);
        assert_eq!(c.to_u64(), 0b10_011);
    }

    #[test]
    fn slice_and_ext() {
        let v = BitVecValue::from_u64(0b1101_0110, 8);
        assert_eq!(v.slice(1, 4).to_u64(), 0b1011);
        assert_eq!(v.zero_ext(16).to_u64(), 0b1101_0110);
        assert_eq!(v.sign_ext(16).to_u64(), 0xffd6);
        assert_eq!(v.zero_ext(4).to_u64(), 0b0110); // truncation
    }

    #[test]
    fn reductions() {
        let v = BitVecValue::from_u64(0b101, 3);
        assert_eq!(v.reduce_xor().to_u64(), 0);
        assert_eq!(v.reduce_or().to_u64(), 1);
        assert_eq!(v.reduce_and().to_u64(), 0);
        let o = BitVecValue::all_ones(3);
        assert_eq!(o.reduce_and().to_u64(), 1);
        assert_eq!(o.reduce_xor().to_u64(), 1);
    }

    #[test]
    fn bit_roundtrip() {
        let bits = [true, false, true, true, false];
        let v = BitVecValue::from_bits(&bits);
        assert_eq!(v.to_bits(), bits);
    }

    #[test]
    fn debug_format_hex() {
        let v = BitVecValue::from_u64(0xab, 8);
        assert_eq!(format!("{v:?}"), "bits[8]:0xab");
    }
}
