//! IR-level optimization passes: dead-code elimination, common-subexpression
//! elimination and constant folding.
//!
//! HLS frontends run these before scheduling; they matter to ISDC because a
//! cleaner graph means fewer scheduling variables, fewer timing pairs and
//! tighter register accounting. All passes preserve semantics (checked by
//! the interpreter-backed tests) and renumber nodes densely, keeping the
//! id-order-is-topological invariant.

use crate::graph::{Graph, NodeId};
use crate::interp;
use crate::op::OpKind;
use crate::value::BitVecValue;
use std::collections::HashMap;

/// Statistics from one pass application.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransformStats {
    /// Nodes in the input graph.
    pub nodes_before: usize,
    /// Nodes in the output graph.
    pub nodes_after: usize,
}

impl TransformStats {
    /// Nodes removed by the pass.
    pub fn removed(&self) -> usize {
        self.nodes_before - self.nodes_after
    }
}

/// Removes every node not reachable from the graph's outputs.
///
/// Parameters are always kept (they are the design's interface), even when
/// dead.
pub fn dead_code_elimination(graph: &Graph) -> (Graph, TransformStats) {
    let mut live = vec![false; graph.len()];
    let mut stack: Vec<NodeId> = graph.outputs().to_vec();
    for &p in graph.params() {
        live[p.index()] = true;
    }
    while let Some(v) = stack.pop() {
        if live[v.index()] {
            continue;
        }
        live[v.index()] = true;
        stack.extend(graph.node(v).operands.iter().copied());
    }
    rebuild(graph, |id, _| live[id.index()], |_, _, _| None)
}

/// Structurally deduplicates identical `(kind, operands)` nodes, commuting
/// commutative operands into canonical order first.
pub fn common_subexpression_elimination(graph: &Graph) -> (Graph, TransformStats) {
    let mut seen: HashMap<(OpKind, Vec<NodeId>), NodeId> = HashMap::new();
    rebuild(
        graph,
        |_, _| true,
        move |id, kind, operands| {
            if kind == &OpKind::Param {
                return None;
            }
            let mut key_ops = operands.to_vec();
            if kind.is_commutative() {
                key_ops.sort_unstable();
            }
            let key = (kind.clone(), key_ops);
            match seen.get(&key) {
                Some(&prev) => Some(prev),
                None => {
                    seen.insert(key, id);
                    None
                }
            }
        },
    )
}

/// Folds operations whose operands are all literals into literal nodes.
pub fn constant_folding(graph: &Graph) -> (Graph, TransformStats) {
    // Evaluate constant-only regions with the interpreter: a node is
    // foldable when it is not a param and all transitive inputs are
    // literals.
    let mut constant: Vec<Option<BitVecValue>> = vec![None; graph.len()];
    for (id, node) in graph.iter() {
        if let OpKind::Literal(v) = &node.kind {
            constant[id.index()] = Some(v.clone());
            continue;
        }
        if node.kind == OpKind::Param || node.operands.is_empty() {
            continue;
        }
        if node.operands.iter().all(|o| constant[o.index()].is_some()) {
            // Evaluate just this node on its constant operands.
            let mut sub = Graph::new("fold");
            let ops: Vec<NodeId> = node
                .operands
                .iter()
                .map(|o| sub.literal(constant[o.index()].clone().expect("const")))
                .collect();
            let out = sub.add_node(node.kind.clone(), ops).expect("same validity");
            sub.set_output(out);
            let values = interp::evaluate(&sub, &HashMap::new()).expect("constant eval");
            constant[id.index()] = Some(values[out.index()].clone());
        }
    }
    let folded: Vec<Option<BitVecValue>> = graph
        .iter()
        .map(|(id, node)| {
            if matches!(node.kind, OpKind::Literal(_) | OpKind::Param) {
                None
            } else {
                constant[id.index()].clone()
            }
        })
        .collect();
    // Rebuild, replacing foldable nodes by fresh literals.
    let mut out = Graph::new(graph.name());
    let mut map: Vec<Option<NodeId>> = vec![None; graph.len()];
    for (id, node) in graph.iter() {
        let new_id = if let Some(v) = &folded[id.index()] {
            out.literal(v.clone())
        } else {
            match &node.kind {
                OpKind::Param => out.param(node.name.clone().expect("params named"), node.width),
                _ => {
                    let ops: Vec<NodeId> = node
                        .operands
                        .iter()
                        .map(|o| map[o.index()].expect("topological order"))
                        .collect();
                    let nid = out.add_node(node.kind.clone(), ops).expect("valid rebuild");
                    if let Some(name) = &node.name {
                        out.set_name(nid, name.clone());
                    }
                    nid
                }
            }
        };
        map[id.index()] = Some(new_id);
    }
    for &o in graph.outputs() {
        out.set_output(map[o.index()].expect("outputs mapped"));
    }
    let stats = TransformStats { nodes_before: graph.len(), nodes_after: out.len() };
    // Folding by itself does not remove the now-dead literal operands; run
    // DCE to collect them.
    let (cleaned, _) = dead_code_elimination(&out);
    let stats = TransformStats { nodes_before: stats.nodes_before, nodes_after: cleaned.len() };
    (cleaned, stats)
}

/// The standard cleanup pipeline: constant folding, CSE, then DCE.
pub fn optimize(graph: &Graph) -> (Graph, TransformStats) {
    let before = graph.len();
    let (g, _) = constant_folding(graph);
    let (g, _) = common_subexpression_elimination(&g);
    let (g, _) = dead_code_elimination(&g);
    (g.clone(), TransformStats { nodes_before: before, nodes_after: g.len() })
}

/// Shared rebuild helper: copies `graph` keeping nodes passing `keep`,
/// redirecting each node through `replace` (which may return an existing
/// *old* node id to alias to).
fn rebuild(
    graph: &Graph,
    keep: impl Fn(NodeId, &Graph) -> bool,
    mut replace: impl FnMut(NodeId, &OpKind, &[NodeId]) -> Option<NodeId>,
) -> (Graph, TransformStats) {
    let mut out = Graph::new(graph.name());
    let mut map: Vec<Option<NodeId>> = vec![None; graph.len()];
    for (id, node) in graph.iter() {
        if !keep(id, graph) {
            continue;
        }
        if let Some(alias) = replace(id, &node.kind, &node.operands) {
            map[id.index()] = map[alias.index()];
            continue;
        }
        let new_id = match &node.kind {
            OpKind::Param => out.param(node.name.clone().expect("params named"), node.width),
            _ => {
                let ops: Vec<NodeId> =
                    node.operands.iter().map(|o| map[o.index()].expect("operands kept")).collect();
                let nid = out.add_node(node.kind.clone(), ops).expect("valid rebuild");
                if let Some(name) = &node.name {
                    // Names may collide after aliasing; keep the first.
                    if out.iter().all(|(_, n)| n.name.as_deref() != Some(name.as_str())) {
                        out.set_name(nid, name.clone());
                    }
                }
                nid
            }
        };
        map[id.index()] = Some(new_id);
    }
    for &o in graph.outputs() {
        if let Some(mapped) = map[o.index()] {
            out.set_output(mapped);
        }
    }
    let stats = TransformStats { nodes_before: graph.len(), nodes_after: out.len() };
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_equivalent(a: &Graph, b: &Graph, cases: u64) {
        for seed in 0..cases {
            let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
            let mut inputs = HashMap::new();
            for &p in a.params() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
                let node = a.node(p);
                inputs.insert(
                    node.name.clone().unwrap(),
                    BitVecValue::from_u64(state >> 11, node.width),
                );
            }
            let oa = interp::evaluate_outputs(a, &inputs).unwrap();
            let ob = interp::evaluate_outputs(b, &inputs).unwrap();
            assert_eq!(oa, ob, "semantics changed (seed {seed})");
        }
    }

    #[test]
    fn dce_removes_dead_chain() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let live = g.unary(OpKind::Not, a).unwrap();
        let dead1 = g.unary(OpKind::Neg, a).unwrap();
        let _dead2 = g.unary(OpKind::Not, dead1).unwrap();
        g.set_output(live);
        let (out, stats) = dead_code_elimination(&g);
        assert_eq!(stats.removed(), 2);
        assert_eq!(out.len(), 2);
        out.validate().unwrap();
        check_equivalent(&g, &out, 4);
    }

    #[test]
    fn dce_keeps_params() {
        let mut g = Graph::new("t");
        let _unused = g.param("unused", 8);
        let a = g.param("a", 8);
        let n = g.unary(OpKind::Not, a).unwrap();
        g.set_output(n);
        let (out, _) = dead_code_elimination(&g);
        assert_eq!(out.params().len(), 2, "interface params survive");
    }

    #[test]
    fn cse_merges_duplicates() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x1 = g.binary(OpKind::Add, a, b).unwrap();
        let x2 = g.binary(OpKind::Add, a, b).unwrap();
        let y = g.binary(OpKind::Xor, x1, x2).unwrap();
        g.set_output(y);
        let (out, stats) = common_subexpression_elimination(&g);
        assert_eq!(stats.removed(), 1);
        out.validate().unwrap();
        check_equivalent(&g, &out, 4);
    }

    #[test]
    fn cse_canonicalizes_commutative_operands() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x1 = g.binary(OpKind::Mul, a, b).unwrap();
        let x2 = g.binary(OpKind::Mul, b, a).unwrap(); // commuted duplicate
        let y = g.binary(OpKind::And, x1, x2).unwrap();
        g.set_output(y);
        let (out, stats) = common_subexpression_elimination(&g);
        assert_eq!(stats.removed(), 1);
        check_equivalent(&g, &out, 4);
    }

    #[test]
    fn cse_does_not_merge_noncommutative_swaps() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x1 = g.binary(OpKind::Sub, a, b).unwrap();
        let x2 = g.binary(OpKind::Sub, b, a).unwrap();
        let y = g.binary(OpKind::Xor, x1, x2).unwrap();
        g.set_output(y);
        let (out, stats) = common_subexpression_elimination(&g);
        assert_eq!(stats.removed(), 0);
        check_equivalent(&g, &out, 4);
    }

    #[test]
    fn folding_collapses_constant_trees() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let k1 = g.literal_u64(3, 8);
        let k2 = g.literal_u64(4, 8);
        let sum = g.binary(OpKind::Add, k1, k2).unwrap(); // 7
        let prod = g.binary(OpKind::Mul, sum, sum).unwrap(); // 49
        let out = g.binary(OpKind::Xor, a, prod).unwrap();
        g.set_output(out);
        let (folded, stats) = constant_folding(&g);
        assert!(stats.removed() >= 2, "constant subtree collapses");
        folded.validate().unwrap();
        check_equivalent(&g, &folded, 4);
        // The folded graph should contain a literal 49.
        let has_49 =
            folded.iter().any(|(_, n)| matches!(&n.kind, OpKind::Literal(v) if v.to_u64() == 49));
        assert!(has_49);
    }

    #[test]
    fn optimize_pipeline_on_redundant_graph() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let k1 = g.literal_u64(1, 8);
        let k2 = g.literal_u64(1, 8);
        let two = g.binary(OpKind::Add, k1, k2).unwrap();
        let x1 = g.binary(OpKind::Add, a, two).unwrap();
        let x2 = g.binary(OpKind::Add, a, two).unwrap();
        let dead = g.binary(OpKind::Mul, x1, x2).unwrap();
        let _deader = g.unary(OpKind::Not, dead).unwrap();
        let out = g.binary(OpKind::Xor, x1, x2).unwrap();
        g.set_output(out);
        let (opt, stats) = optimize(&g);
        assert!(stats.removed() >= 4, "removed {}", stats.removed());
        opt.validate().unwrap();
        check_equivalent(&g, &opt, 6);
    }

    #[test]
    fn optimize_is_idempotent() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        g.set_output(x);
        let (once, _) = optimize(&g);
        let (twice, stats) = optimize(&once);
        assert_eq!(once, twice);
        assert_eq!(stats.removed(), 0);
    }
}
