//! A reference interpreter for the IR.
//!
//! Evaluates a [`Graph`] on concrete [`BitVecValue`] inputs. The interpreter
//! is the functional ground truth used to validate gate-level lowering: the
//! netlist crate simulates its AIGs on random vectors and cross-checks the
//! results against this module.

use crate::graph::{Graph, NodeId};
use crate::op::OpKind;
use crate::value::BitVecValue;
use std::collections::HashMap;
use std::fmt;

/// Errors produced by [`evaluate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A parameter had no binding in the input map.
    MissingInput(String),
    /// A bound input value's width differs from the parameter's declared width.
    InputWidthMismatch {
        /// Parameter name.
        name: String,
        /// Declared parameter width.
        expected: u32,
        /// Provided value width.
        got: u32,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingInput(name) => write!(f, "missing input for parameter `{name}`"),
            EvalError::InputWidthMismatch { name, expected, got } => {
                write!(f, "input `{name}` has width {got}, parameter declares {expected}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates every node of `graph` on the given named inputs, returning the
/// value of each node indexed by node id.
///
/// # Errors
///
/// Returns [`EvalError::MissingInput`] if a parameter is unbound and
/// [`EvalError::InputWidthMismatch`] if a binding has the wrong width.
///
/// # Examples
///
/// ```
/// use isdc_ir::{Graph, OpKind, BitVecValue, interp};
/// use std::collections::HashMap;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new("add");
/// let a = g.param("a", 8);
/// let b = g.param("b", 8);
/// let s = g.binary(OpKind::Add, a, b)?;
/// g.set_output(s);
///
/// let mut inputs = HashMap::new();
/// inputs.insert("a".to_string(), BitVecValue::from_u64(200, 8));
/// inputs.insert("b".to_string(), BitVecValue::from_u64(100, 8));
/// let values = interp::evaluate(&g, &inputs)?;
/// assert_eq!(values[s.index()].to_u64(), 44); // wraps mod 256
/// # Ok(())
/// # }
/// ```
pub fn evaluate(
    graph: &Graph,
    inputs: &HashMap<String, BitVecValue>,
) -> Result<Vec<BitVecValue>, EvalError> {
    let mut values: Vec<BitVecValue> = Vec::with_capacity(graph.len());
    for (_, node) in graph.iter() {
        let get = |id: NodeId| -> &BitVecValue { &values[id.index()] };
        let value = match &node.kind {
            OpKind::Param => {
                let name = node.name.as_deref().unwrap_or_default();
                let v =
                    inputs.get(name).ok_or_else(|| EvalError::MissingInput(name.to_string()))?;
                if v.width() != node.width {
                    return Err(EvalError::InputWidthMismatch {
                        name: name.to_string(),
                        expected: node.width,
                        got: v.width(),
                    });
                }
                v.clone()
            }
            OpKind::Literal(v) => v.clone(),
            OpKind::Add => get(node.operands[0]).add(get(node.operands[1])),
            OpKind::Sub => get(node.operands[0]).sub(get(node.operands[1])),
            OpKind::Mul => get(node.operands[0]).mul(get(node.operands[1])),
            OpKind::Neg => get(node.operands[0]).neg(),
            OpKind::And => get(node.operands[0]).and(get(node.operands[1])),
            OpKind::Or => get(node.operands[0]).or(get(node.operands[1])),
            OpKind::Xor => get(node.operands[0]).xor(get(node.operands[1])),
            OpKind::Not => get(node.operands[0]).not(),
            OpKind::Shll => get(node.operands[0]).shl(shift_amount(get(node.operands[1]))),
            OpKind::Shrl => get(node.operands[0]).shr(shift_amount(get(node.operands[1]))),
            OpKind::Shra => get(node.operands[0]).shra(shift_amount(get(node.operands[1]))),
            OpKind::Eq => bool_value(get(node.operands[0]) == get(node.operands[1])),
            OpKind::Ne => bool_value(get(node.operands[0]) != get(node.operands[1])),
            OpKind::Ult => bool_value(get(node.operands[0]).ult(get(node.operands[1]))),
            OpKind::Ule => bool_value(!get(node.operands[1]).ult(get(node.operands[0]))),
            OpKind::Ugt => bool_value(get(node.operands[1]).ult(get(node.operands[0]))),
            OpKind::Uge => bool_value(!get(node.operands[0]).ult(get(node.operands[1]))),
            OpKind::Sel => {
                if get(node.operands[0]).bit(0) {
                    get(node.operands[1]).clone()
                } else {
                    get(node.operands[2]).clone()
                }
            }
            OpKind::Concat => {
                // First operand is most significant.
                let mut acc = get(node.operands[0]).clone();
                for &op in &node.operands[1..] {
                    acc = acc.concat(get(op));
                }
                acc
            }
            OpKind::BitSlice { start, width } => get(node.operands[0]).slice(*start, *width),
            OpKind::ZeroExt { new_width } => get(node.operands[0]).zero_ext(*new_width),
            OpKind::SignExt { new_width } => get(node.operands[0]).sign_ext(*new_width),
            OpKind::ReduceXor => get(node.operands[0]).reduce_xor(),
            OpKind::ReduceOr => get(node.operands[0]).reduce_or(),
            OpKind::ReduceAnd => get(node.operands[0]).reduce_and(),
        };
        values.push(value);
    }
    Ok(values)
}

/// Evaluates and returns only the output node values, in output order.
///
/// # Errors
///
/// Same as [`evaluate`].
pub fn evaluate_outputs(
    graph: &Graph,
    inputs: &HashMap<String, BitVecValue>,
) -> Result<Vec<BitVecValue>, EvalError> {
    let all = evaluate(graph, inputs)?;
    Ok(graph.outputs().iter().map(|&id| all[id.index()].clone()).collect())
}

fn shift_amount(v: &BitVecValue) -> u64 {
    // Saturate huge shift amounts; anything >= width shifts out everything
    // anyway, so the low 64 bits plus an "is any high bit set" check suffice.
    if v.width() > 64 {
        let high = v.slice(64, v.width() - 64);
        if !high.is_zero() {
            return u64::MAX;
        }
    }
    v.to_u64()
}

fn bool_value(b: bool) -> BitVecValue {
    BitVecValue::from_u64(u64::from(b), 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn inputs(pairs: &[(&str, u64, u32)]) -> HashMap<String, BitVecValue> {
        pairs.iter().map(|&(n, v, w)| (n.to_string(), BitVecValue::from_u64(v, w))).collect()
    }

    #[test]
    fn arithmetic_ops() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let add = g.binary(OpKind::Add, a, b).unwrap();
        let sub = g.binary(OpKind::Sub, a, b).unwrap();
        let mul = g.binary(OpKind::Mul, a, b).unwrap();
        g.set_output(mul);
        let vals = evaluate(&g, &inputs(&[("a", 7, 8), ("b", 3, 8)])).unwrap();
        assert_eq!(vals[add.index()].to_u64(), 10);
        assert_eq!(vals[sub.index()].to_u64(), 4);
        assert_eq!(vals[mul.index()].to_u64(), 21);
    }

    #[test]
    fn comparisons_and_select() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let lt = g.binary(OpKind::Ult, a, b).unwrap();
        let min = g.select(lt, a, b).unwrap();
        g.set_output(min);
        let vals = evaluate(&g, &inputs(&[("a", 9, 8), ("b", 4, 8)])).unwrap();
        assert_eq!(vals[lt.index()].to_u64(), 0);
        assert_eq!(vals[min.index()].to_u64(), 4);

        let vals = evaluate(&g, &inputs(&[("a", 2, 8), ("b", 4, 8)])).unwrap();
        assert_eq!(vals[min.index()].to_u64(), 2);
    }

    #[test]
    fn ordered_comparison_family_is_consistent() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let ult = g.binary(OpKind::Ult, a, b).unwrap();
        let ule = g.binary(OpKind::Ule, a, b).unwrap();
        let ugt = g.binary(OpKind::Ugt, a, b).unwrap();
        let uge = g.binary(OpKind::Uge, a, b).unwrap();
        g.set_output(uge);
        for (x, y) in [(3u64, 5u64), (5, 3), (4, 4)] {
            let vals = evaluate(&g, &inputs(&[("a", x, 8), ("b", y, 8)])).unwrap();
            assert_eq!(vals[ult.index()].to_u64() == 1, x < y);
            assert_eq!(vals[ule.index()].to_u64() == 1, x <= y);
            assert_eq!(vals[ugt.index()].to_u64() == 1, x > y);
            assert_eq!(vals[uge.index()].to_u64() == 1, x >= y);
        }
    }

    #[test]
    fn shifts_by_dynamic_amount() {
        let mut g = Graph::new("t");
        let a = g.param("a", 16);
        let s = g.param("s", 4);
        let shl = g.binary(OpKind::Shll, a, s).unwrap();
        let shr = g.binary(OpKind::Shrl, a, s).unwrap();
        g.set_output(shl);
        let vals = evaluate(&g, &inputs(&[("a", 0x00f0, 16), ("s", 4, 4)])).unwrap();
        assert_eq!(vals[shl.index()].to_u64(), 0x0f00);
        assert_eq!(vals[shr.index()].to_u64(), 0x000f);
    }

    #[test]
    fn concat_slice_ext_round() {
        let mut g = Graph::new("t");
        let a = g.param("a", 4);
        let b = g.param("b", 4);
        let cat = g.add_node(OpKind::Concat, vec![a, b]).unwrap();
        let hi = g.unary(OpKind::BitSlice { start: 4, width: 4 }, cat).unwrap();
        let ext = g.unary(OpKind::SignExt { new_width: 8 }, hi).unwrap();
        g.set_output(ext);
        let vals = evaluate(&g, &inputs(&[("a", 0b1010, 4), ("b", 0b0011, 4)])).unwrap();
        assert_eq!(vals[cat.index()].to_u64(), 0b1010_0011);
        assert_eq!(vals[hi.index()].to_u64(), 0b1010);
        assert_eq!(vals[ext.index()].to_u64(), 0b1111_1010);
    }

    #[test]
    fn reductions() {
        let mut g = Graph::new("t");
        let a = g.param("a", 4);
        let rx = g.unary(OpKind::ReduceXor, a).unwrap();
        let ro = g.unary(OpKind::ReduceOr, a).unwrap();
        let ra = g.unary(OpKind::ReduceAnd, a).unwrap();
        g.set_output(rx);
        let vals = evaluate(&g, &inputs(&[("a", 0b0111, 4)])).unwrap();
        assert_eq!(vals[rx.index()].to_u64(), 1);
        assert_eq!(vals[ro.index()].to_u64(), 1);
        assert_eq!(vals[ra.index()].to_u64(), 0);
    }

    #[test]
    fn missing_input_error() {
        let mut g = Graph::new("t");
        let a = g.param("a", 4);
        g.set_output(a);
        let err = evaluate(&g, &HashMap::new()).unwrap_err();
        assert_eq!(err, EvalError::MissingInput("a".to_string()));
    }

    #[test]
    fn width_mismatch_error() {
        let mut g = Graph::new("t");
        let a = g.param("a", 4);
        g.set_output(a);
        let err = evaluate(&g, &inputs(&[("a", 1, 8)])).unwrap_err();
        assert!(matches!(err, EvalError::InputWidthMismatch { expected: 4, got: 8, .. }));
    }

    #[test]
    fn evaluate_outputs_selects_output_nodes() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let n = g.unary(OpKind::Not, a).unwrap();
        g.set_output(n);
        g.set_output(a);
        let outs = evaluate_outputs(&g, &inputs(&[("a", 0x0f, 8)])).unwrap();
        assert_eq!(outs[0].to_u64(), 0xf0);
        assert_eq!(outs[1].to_u64(), 0x0f);
    }
}
