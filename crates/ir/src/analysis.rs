//! Structural analyses over [`Graph`]: topological orders, reachability,
//! logic levels and transitive fan-in/fan-out sets.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Node ids in a valid topological order (operands before users).
///
/// Creation order is already topological, so this is simply the id sequence;
/// it exists as a named function so call sites read like the paper's
/// pseudo-code (`topo_sort(V)`).
pub fn topo_order(graph: &Graph) -> Vec<NodeId> {
    graph.node_ids().collect()
}

/// Node ids in reverse topological order (users before operands).
pub fn reverse_topo_order(graph: &Graph) -> Vec<NodeId> {
    let mut v = topo_order(graph);
    v.reverse();
    v
}

/// Dense bit-matrix of the reflexive-transitive *is-connected* relation:
/// `reaches(u, v)` is true iff there is a directed path from `u` to `v`
/// (including `u == v`).
///
/// This is the `is_connected(u, v)` predicate of the paper's Alg. 1. The
/// matrix costs `n^2 / 8` bytes — fine for the graph sizes HLS scheduling
/// operates on.
///
/// # Examples
///
/// ```
/// use isdc_ir::{Graph, OpKind, analysis::ReachabilityMatrix};
///
/// let mut g = Graph::new("chain");
/// let a = g.param("a", 8);
/// let b = g.param("b", 8);
/// let s = g.binary(OpKind::Add, a, b).unwrap();
/// let t = g.unary(OpKind::Not, s).unwrap();
/// g.set_output(t);
///
/// let r = ReachabilityMatrix::compute(&g);
/// assert!(r.reaches(a, t));
/// assert!(!r.reaches(a, b));
/// ```
#[derive(Clone, Debug)]
pub struct ReachabilityMatrix {
    n: usize,
    words_per_row: usize,
    /// Row `u` holds the set of nodes reachable **from** `u`.
    bits: Vec<u64>,
}

impl ReachabilityMatrix {
    /// Computes reachability for every ordered pair, in `O(n^2 / 64 * e)`
    /// word operations via reverse-topological bitset union.
    pub fn compute(graph: &Graph) -> Self {
        let n = graph.len();
        let words_per_row = n.div_ceil(64);
        let mut bits = vec![0u64; n * words_per_row];
        // Process users-first so each node can union its users' rows.
        for u in (0..n).rev() {
            let base = u * words_per_row;
            bits[base + u / 64] |= 1u64 << (u % 64);
            // Union rows of direct users.
            let users: Vec<usize> =
                graph.users(NodeId(u as u32)).iter().map(|id| id.index()).collect();
            for user in users {
                let ubase = user * words_per_row;
                for w in 0..words_per_row {
                    let val = bits[ubase + w];
                    bits[base + w] |= val;
                }
            }
        }
        Self { n, words_per_row, bits }
    }

    /// True iff a directed path (possibly empty) exists from `u` to `v`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        assert!(u.index() < self.n && v.index() < self.n, "node id out of range");
        let base = u.index() * self.words_per_row;
        self.bits[base + v.index() / 64] >> (v.index() % 64) & 1 == 1
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

/// The logic level (longest path length in *edges* from any param/literal) of
/// every node. Sources have level 0.
pub fn logic_levels(graph: &Graph) -> Vec<u32> {
    let mut levels = vec![0u32; graph.len()];
    for (id, node) in graph.iter() {
        let lvl = node.operands.iter().map(|&o| levels[o.index()] + 1).max().unwrap_or(0);
        levels[id.index()] = lvl;
    }
    levels
}

/// All transitive operands of `roots` (inclusive), as a sorted id list.
///
/// Used by cone extraction to find the fan-in region of a path endpoint.
pub fn transitive_fanin(graph: &Graph, roots: &[NodeId]) -> Vec<NodeId> {
    collect(graph.len(), roots, |id| graph.node(id).operands.clone())
}

/// All transitive users of `roots` (inclusive), as a sorted id list.
pub fn transitive_fanout(graph: &Graph, roots: &[NodeId]) -> Vec<NodeId> {
    collect(graph.len(), roots, |id| graph.users(id).to_vec())
}

fn collect(n: usize, roots: &[NodeId], neighbors: impl Fn(NodeId) -> Vec<NodeId>) -> Vec<NodeId> {
    let mut seen = vec![false; n];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &r in roots {
        assert!(r.index() < n, "node id out of range");
        if !seen[r.index()] {
            seen[r.index()] = true;
            queue.push_back(r);
        }
    }
    while let Some(id) = queue.pop_front() {
        for next in neighbors(id) {
            if !seen[next.index()] {
                seen[next.index()] = true;
                queue.push_back(next);
            }
        }
    }
    let mut out: Vec<NodeId> = (0..n as u32).map(NodeId).filter(|id| seen[id.index()]).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpKind;

    fn diamond() -> (Graph, [NodeId; 5]) {
        // a -> l, r -> join ; b feeds both sides
        let mut g = Graph::new("diamond");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let l = g.binary(OpKind::Add, a, b).unwrap();
        let r = g.binary(OpKind::Xor, a, b).unwrap();
        let j = g.binary(OpKind::And, l, r).unwrap();
        g.set_output(j);
        (g, [a, b, l, r, j])
    }

    #[test]
    fn reachability_diamond() {
        let (g, [a, b, l, r, j]) = diamond();
        let m = ReachabilityMatrix::compute(&g);
        assert!(m.reaches(a, j));
        assert!(m.reaches(b, j));
        assert!(m.reaches(l, j));
        assert!(m.reaches(a, a)); // reflexive
        assert!(!m.reaches(l, r));
        assert!(!m.reaches(j, a)); // no back edges
    }

    #[test]
    fn reachability_wide_graph_crosses_word_boundary() {
        // Chain of >64 nodes so bitset rows span multiple words.
        let mut g = Graph::new("chain");
        let mut prev = g.param("p", 8);
        let first = prev;
        for _ in 0..100 {
            prev = g.unary(OpKind::Not, prev).unwrap();
        }
        g.set_output(prev);
        let m = ReachabilityMatrix::compute(&g);
        assert!(m.reaches(first, prev));
        assert!(!m.reaches(prev, first));
    }

    #[test]
    fn levels() {
        let (g, [a, b, l, _r, j]) = diamond();
        let lv = logic_levels(&g);
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[b.index()], 0);
        assert_eq!(lv[l.index()], 1);
        assert_eq!(lv[j.index()], 2);
    }

    #[test]
    fn fanin_fanout_sets() {
        let (g, [a, b, l, r, j]) = diamond();
        assert_eq!(transitive_fanin(&g, &[j]), vec![a, b, l, r, j]);
        assert_eq!(transitive_fanin(&g, &[l]), vec![a, b, l]);
        assert_eq!(transitive_fanout(&g, &[a]), vec![a, l, r, j]);
        assert_eq!(transitive_fanout(&g, &[j]), vec![j]);
    }

    #[test]
    fn orders() {
        let (g, _) = diamond();
        let topo = topo_order(&g);
        assert_eq!(topo.len(), g.len());
        let rev = reverse_topo_order(&g);
        assert_eq!(rev[0], *topo.last().unwrap());
    }
}
