//! Property-based equivalence testing: every randomly generated IR graph,
//! lowered to gates, must compute exactly what the interpreter computes —
//! the soundness property the whole downstream simulator rests on.

use isdc_ir::{interp, BitVecValue, Graph, OpKind};
use isdc_netlist::{lower_graph, lower_subgraph};
use proptest::prelude::*;
use std::collections::HashMap;

/// Generates a random valid graph exercising all op kinds.
fn arbitrary_graph() -> impl Strategy<Value = (Graph, u64)> {
    (2usize..16, any::<u64>(), any::<u64>()).prop_map(|(ops, seed, input_seed)| {
        let mut state = seed;
        let mut rng = move |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m.max(1)
        };
        let mut g = Graph::new("prop");
        let widths = [1u32, 3, 8, 13];
        let mut pool = vec![g.param("p0", widths[1 + rng(3)]), g.param("p1", widths[1 + rng(3)])];
        for _ in 0..ops {
            let a = pool[rng(pool.len())];
            let b = pool[rng(pool.len())];
            let w = g.node(a).width;
            let b = if g.node(b).width == w {
                b
            } else if g.node(b).width < w {
                g.unary(OpKind::ZeroExt { new_width: w }, b).unwrap()
            } else {
                g.unary(OpKind::BitSlice { start: 0, width: w }, b).unwrap()
            };
            let id = match rng(12) {
                0 => g.binary(OpKind::Add, a, b).unwrap(),
                1 => g.binary(OpKind::Sub, a, b).unwrap(),
                2 => g.binary(OpKind::Mul, a, b).unwrap(),
                3 => g.binary(OpKind::And, a, b).unwrap(),
                4 => g.binary(OpKind::Or, a, b).unwrap(),
                5 => g.binary(OpKind::Xor, a, b).unwrap(),
                6 => g.unary(OpKind::Neg, a).unwrap(),
                7 => g.binary(OpKind::Shll, a, b).unwrap(),
                8 => g.binary(OpKind::Shrl, a, b).unwrap(),
                9 => {
                    let c = g.binary(OpKind::Ult, a, b).unwrap();
                    g.select(c, a, b).unwrap()
                }
                10 => g.unary(OpKind::ReduceXor, a).unwrap(),
                _ => {
                    let e = g.binary(OpKind::Eq, a, b).unwrap();
                    g.unary(OpKind::ZeroExt { new_width: 4 }, e).unwrap()
                }
            };
            pool.push(id);
        }
        let sinks: Vec<_> = g.node_ids().filter(|&id| g.users(id).is_empty()).collect();
        for s in sinks {
            g.set_output(s);
        }
        (g, input_seed)
    })
}

fn random_inputs(g: &Graph, seed: u64) -> HashMap<String, BitVecValue> {
    let mut state = seed;
    g.params()
        .iter()
        .map(|&p| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(99);
            let node = g.node(p);
            (node.name.clone().unwrap(), BitVecValue::from_u64(state >> 17, node.width))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lowering_is_functionally_equivalent((g, input_seed) in arbitrary_graph()) {
        let lowered = lower_graph(&g);
        for round in 0..3u64 {
            let inputs = random_inputs(&g, input_seed.wrapping_add(round));
            let values = interp::evaluate(&g, &inputs).unwrap();
            let aig_inputs: Vec<bool> = lowered
                .input_map
                .iter()
                .map(|&(id, bit)| values[id.index()].bit(bit))
                .collect();
            let aig_out = lowered.aig.eval(&aig_inputs);
            for (pos, &(id, bit)) in lowered.output_map.iter().enumerate() {
                prop_assert_eq!(
                    aig_out[pos],
                    values[id.index()].bit(bit),
                    "node {} bit {}", id, bit
                );
            }
        }
    }

    #[test]
    fn subgraph_lowering_matches_whole((g, input_seed) in arbitrary_graph()) {
        // Lower a prefix subgraph; its outputs must agree with the full
        // interpretation on the same inputs.
        let members: Vec<_> = g.node_ids().take(g.len() / 2 + 1).collect();
        let lowered = lower_subgraph(&g, &members);
        let inputs = random_inputs(&g, input_seed);
        let values = interp::evaluate(&g, &inputs).unwrap();
        let aig_inputs: Vec<bool> = lowered
            .input_map
            .iter()
            .map(|&(id, bit)| values[id.index()].bit(bit))
            .collect();
        let aig_out = lowered.aig.eval(&aig_inputs);
        for (pos, &(id, bit)) in lowered.output_map.iter().enumerate() {
            prop_assert_eq!(aig_out[pos], values[id.index()].bit(bit));
        }
    }

    #[test]
    fn sweep_preserves_outputs((g, input_seed) in arbitrary_graph()) {
        let lowered = lower_graph(&g);
        let swept = lowered.aig.sweep();
        prop_assert!(swept.num_ands() <= lowered.aig.num_ands());
        let inputs = random_inputs(&g, input_seed);
        let values = interp::evaluate(&g, &inputs).unwrap();
        let aig_inputs: Vec<bool> = lowered
            .input_map
            .iter()
            .map(|&(id, bit)| values[id.index()].bit(bit))
            .collect();
        prop_assert_eq!(swept.eval(&aig_inputs), lowered.aig.eval(&aig_inputs));
    }
}
