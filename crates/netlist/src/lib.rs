//! # isdc-netlist — gate-level netlists for the downstream-tool simulator
//!
//! Bit-blasts HLS IR regions into and-inverter graphs ([`Aig`]) with
//! structural hashing, the representation consumed by the logic-synthesis
//! simulator in `isdc-synth`. The combination plays the role Yosys/ABC play
//! in the paper's evaluation flow.
//!
//! # Examples
//!
//! ```
//! use isdc_ir::{Graph, OpKind};
//! use isdc_netlist::lower_graph;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new("add");
//! let a = g.param("a", 8);
//! let b = g.param("b", 8);
//! let s = g.binary(OpKind::Add, a, b)?;
//! g.set_output(s);
//!
//! let lowered = lower_graph(&g);
//! assert_eq!(lowered.aig.num_inputs(), 16);
//! assert!(lowered.aig.depth() > 0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod aig;
pub mod aiger;
mod lower;

pub use aig::{Aig, AigLit, AigNode};
pub use lower::{lower_graph, lower_subgraph, LoweredSubgraph};
