//! ASCII AIGER (`aag`) import and export.
//!
//! AIGER is the standard exchange format for and-inverter graphs, consumed
//! by ABC, aigbmc and friends. Supporting it means netlists produced by this
//! crate can be handed to real logic-synthesis and verification tools — the
//! interoperability story behind the paper's "compatible with a wide range
//! of downstream tools" claim.
//!
//! Only the combinational subset is supported (no latches), which is all an
//! ISDC subgraph ever is.

use crate::aig::{Aig, AigLit, AigNode};
use std::fmt;

/// Errors from [`parse_aag`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParseAagError {
    /// The header line is missing or malformed.
    BadHeader(String),
    /// The file declares latches, which are unsupported.
    LatchesUnsupported,
    /// A body line deviated from the grammar.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// A literal referenced an undefined variable.
    UndefinedLiteral(u32),
}

impl fmt::Display for ParseAagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAagError::BadHeader(h) => write!(f, "bad aag header `{h}`"),
            ParseAagError::LatchesUnsupported => {
                f.write_str("aag files with latches are not supported")
            }
            ParseAagError::BadLine { line, message } => write!(f, "line {line}: {message}"),
            ParseAagError::UndefinedLiteral(l) => write!(f, "undefined literal {l}"),
        }
    }
}

impl std::error::Error for ParseAagError {}

/// Serializes the AIG in ASCII AIGER format.
///
/// Nodes are renumbered into AIGER's required order (inputs first, then AND
/// gates topologically); the function is total for any well-formed [`Aig`].
pub fn write_aag(aig: &Aig) -> String {
    let nodes = aig.nodes();
    // Assign AIGER variable indices: inputs get 1..=I in creation order,
    // then ANDs in node order.
    let mut var_of: Vec<u32> = vec![0; nodes.len()];
    let mut next = 1u32;
    let mut input_vars = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if matches!(node, AigNode::Input(_)) {
            var_of[i] = next;
            input_vars.push(next);
            next += 1;
        }
    }
    let mut and_rows = Vec::new();
    for (i, node) in nodes.iter().enumerate() {
        if let AigNode::And(..) = node {
            var_of[i] = next;
            next += 1;
        }
        let _ = i;
    }
    let lit_of = |l: AigLit| -> u32 { var_of[l.node() as usize] * 2 + l.is_complemented() as u32 };
    for (i, node) in nodes.iter().enumerate() {
        if let AigNode::And(a, b) = node {
            and_rows.push((var_of[i] * 2, lit_of(*a), lit_of(*b)));
        }
    }
    let max_var = next - 1;
    let mut out = String::new();
    out.push_str(&format!(
        "aag {} {} 0 {} {}\n",
        max_var,
        input_vars.len(),
        aig.outputs().len(),
        and_rows.len()
    ));
    for v in input_vars {
        out.push_str(&format!("{}\n", v * 2));
    }
    for &o in aig.outputs() {
        out.push_str(&format!("{}\n", lit_of(o)));
    }
    for (lhs, r0, r1) in and_rows {
        out.push_str(&format!("{lhs} {r0} {r1}\n"));
    }
    out
}

/// Parses an ASCII AIGER file into an [`Aig`].
///
/// # Errors
///
/// See [`ParseAagError`]. Latches are rejected.
pub fn parse_aag(src: &str) -> Result<Aig, ParseAagError> {
    let mut lines = src.lines().enumerate();
    let (_, header) =
        lines.next().ok_or_else(|| ParseAagError::BadHeader("<empty input>".into()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 6 || fields[0] != "aag" {
        return Err(ParseAagError::BadHeader(header.to_string()));
    }
    let parse_count = |s: &str| -> Result<usize, ParseAagError> {
        s.parse().map_err(|_| ParseAagError::BadHeader(header.to_string()))
    };
    let max_var = parse_count(fields[1])?;
    let num_inputs = parse_count(fields[2])?;
    let num_latches = parse_count(fields[3])?;
    let num_outputs = parse_count(fields[4])?;
    let num_ands = parse_count(fields[5])?;
    if num_latches != 0 {
        return Err(ParseAagError::LatchesUnsupported);
    }

    let mut aig = Aig::new();
    // var -> literal in our AIG; var 0 is constant false.
    let mut lit_of_var: Vec<Option<AigLit>> = vec![None; max_var + 1];
    lit_of_var[0] = Some(AigLit::FALSE);

    let take_line = |lines: &mut std::iter::Enumerate<std::str::Lines>,
                     what: &str|
     -> Result<(usize, String), ParseAagError> {
        for (no, l) in lines.by_ref() {
            let l = l.trim();
            if !l.is_empty() {
                return Ok((no + 1, l.to_string()));
            }
        }
        Err(ParseAagError::BadLine { line: 0, message: format!("missing {what} line") })
    };

    let mut input_vars = Vec::with_capacity(num_inputs);
    for _ in 0..num_inputs {
        let (no, l) = take_line(&mut lines, "input")?;
        let lit: u32 = l.parse().map_err(|_| ParseAagError::BadLine {
            line: no,
            message: format!("bad input `{l}`"),
        })?;
        if !lit.is_multiple_of(2) || lit == 0 {
            return Err(ParseAagError::BadLine {
                line: no,
                message: format!("input literal {lit} must be positive and even"),
            });
        }
        input_vars.push((lit / 2) as usize);
    }
    for &v in &input_vars {
        if v > max_var {
            return Err(ParseAagError::UndefinedLiteral(v as u32 * 2));
        }
        lit_of_var[v] = Some(aig.input());
    }
    let mut output_lits = Vec::with_capacity(num_outputs);
    for _ in 0..num_outputs {
        let (no, l) = take_line(&mut lines, "output")?;
        let lit: u32 = l.parse().map_err(|_| ParseAagError::BadLine {
            line: no,
            message: format!("bad output `{l}`"),
        })?;
        output_lits.push(lit);
    }
    for _ in 0..num_ands {
        let (no, l) = take_line(&mut lines, "and")?;
        let parts: Vec<u32> =
            l.split_whitespace().map(|t| t.parse::<u32>()).collect::<Result<_, _>>().map_err(
                |_| ParseAagError::BadLine { line: no, message: format!("bad and `{l}`") },
            )?;
        let [lhs, r0, r1] = parts.as_slice() else {
            return Err(ParseAagError::BadLine {
                line: no,
                message: "and gates need exactly three literals".to_string(),
            });
        };
        if lhs % 2 != 0 {
            return Err(ParseAagError::BadLine {
                line: no,
                message: format!("and lhs {lhs} must be even"),
            });
        }
        let resolve = |lit: u32, table: &[Option<AigLit>]| -> Result<AigLit, ParseAagError> {
            let var = (lit / 2) as usize;
            let base =
                table.get(var).copied().flatten().ok_or(ParseAagError::UndefinedLiteral(lit))?;
            Ok(base ^ (lit % 2 == 1))
        };
        let a = resolve(*r0, &lit_of_var)?;
        let b = resolve(*r1, &lit_of_var)?;
        lit_of_var[(*lhs / 2) as usize] = Some(aig.and(a, b));
    }
    for lit in output_lits {
        let var = (lit / 2) as usize;
        let base =
            lit_of_var.get(var).copied().flatten().ok_or(ParseAagError::UndefinedLiteral(lit))?;
        aig.push_output(base ^ (lit % 2 == 1));
    }
    Ok(aig)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_netlist() -> Aig {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor(a, b);
        aig.push_output(x);
        aig.push_output(x.not());
        aig
    }

    #[test]
    fn export_header_is_consistent() {
        let aig = xor_netlist();
        let text = write_aag(&aig);
        let header = text.lines().next().unwrap();
        assert_eq!(header, format!("aag {} 2 0 2 {}", 2 + aig.num_ands(), aig.num_ands()));
    }

    #[test]
    fn roundtrip_preserves_function() {
        let aig = xor_netlist();
        let text = write_aag(&aig);
        let parsed = parse_aag(&text).unwrap();
        assert_eq!(parsed.num_inputs(), 2);
        assert_eq!(parsed.outputs().len(), 2);
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(aig.eval(&[a, b]), parsed.eval(&[a, b]), "inputs {a} {b}");
            }
        }
    }

    #[test]
    fn constants_roundtrip() {
        let mut aig = Aig::new();
        let a = aig.input();
        aig.push_output(AigLit::TRUE);
        aig.push_output(AigLit::FALSE);
        aig.push_output(a);
        let parsed = parse_aag(&write_aag(&aig)).unwrap();
        assert_eq!(parsed.eval(&[true]), vec![true, false, true]);
        assert_eq!(parsed.eval(&[false]), vec![true, false, false]);
    }

    #[test]
    fn parse_canonical_example() {
        // AND of two inputs, from the AIGER spec.
        let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
        let aig = parse_aag(src).unwrap();
        assert_eq!(aig.eval(&[true, true]), vec![true]);
        assert_eq!(aig.eval(&[true, false]), vec![false]);
    }

    #[test]
    fn rejects_latches() {
        let src = "aag 3 1 1 1 0\n2\n4 2\n4\n";
        assert_eq!(parse_aag(src).unwrap_err(), ParseAagError::LatchesUnsupported);
    }

    #[test]
    fn rejects_bad_header_and_lines() {
        assert!(matches!(parse_aag("nonsense"), Err(ParseAagError::BadHeader(_))));
        assert!(matches!(parse_aag("aag 1 1 0 0 0\n3\n"), Err(ParseAagError::BadLine { .. })));
        assert!(matches!(parse_aag("aag 1 0 0 1 0\n4\n"), Err(ParseAagError::UndefinedLiteral(4))));
    }

    #[test]
    fn roundtrip_on_lowered_op() {
        use isdc_ir::{Graph, OpKind};
        let mut g = Graph::new("add");
        let a = g.param("a", 4);
        let b = g.param("b", 4);
        let s = g.binary(OpKind::Add, a, b).unwrap();
        g.set_output(s);
        let lowered = crate::lower_graph(&g);
        let parsed = parse_aag(&write_aag(&lowered.aig)).unwrap();
        // Exhaustive check over all 256 input combinations.
        for x in 0..16u32 {
            for y in 0..16u32 {
                let bits: Vec<bool> = lowered
                    .input_map
                    .iter()
                    .enumerate()
                    .map(|(i, _)| {
                        let (node, bit) = lowered.input_map[i];
                        let val = if node == a { x } else { y };
                        let _ = node;
                        (val >> bit) & 1 == 1
                    })
                    .collect();
                assert_eq!(lowered.aig.eval(&bits), parsed.eval(&bits));
            }
        }
    }
}
