//! Bit-blasting HLS IR operations into AIGs.
//!
//! [`lower_subgraph`] turns any operand-closed set of IR nodes into a single
//! AIG whose inputs are the bits crossing into the set and whose outputs are
//! the bits leaving it. Lowering a *multi-op* region into one netlist is what
//! lets the downstream simulator observe cross-operation optimizations — the
//! effect ISDC's feedback loop exploits.
//!
//! Word-level constructions are the classic textbook ones: ripple-carry
//! adders, shift-add multipliers, barrel shifters, ripple comparators and
//! per-bit mux trees.

use crate::aig::{Aig, AigLit};
use isdc_ir::{Graph, NodeId, OpKind};
use std::collections::HashMap;

/// The result of lowering an IR region to gates.
#[derive(Clone, Debug)]
pub struct LoweredSubgraph {
    /// The netlist.
    pub aig: Aig,
    /// For each AIG input ordinal, the IR `(node, bit)` it carries.
    pub input_map: Vec<(NodeId, u32)>,
    /// For each AIG output position, the IR `(node, bit)` it produces.
    pub output_map: Vec<(NodeId, u32)>,
}

/// Lowers the entire graph.
///
/// Equivalent to [`lower_subgraph`] over all node ids. Graph parameters
/// become AIG inputs; graph outputs (plus any dangling values) become AIG
/// outputs.
pub fn lower_graph(graph: &Graph) -> LoweredSubgraph {
    let all: Vec<NodeId> = graph.node_ids().collect();
    lower_subgraph(graph, &all)
}

/// Lowers the node set `members` into one AIG.
///
/// `members` need not contain operands of its nodes: any operand outside the
/// set contributes primary inputs (one per bit). A member's bits become AIG
/// outputs when the member is a graph output, has a user outside the set, or
/// has no users at all (subgraph roots).
///
/// # Panics
///
/// Panics if `members` is empty or contains out-of-range ids.
pub fn lower_subgraph(graph: &Graph, members: &[NodeId]) -> LoweredSubgraph {
    assert!(!members.is_empty(), "cannot lower an empty subgraph");
    let mut member_set = vec![false; graph.len()];
    for &id in members {
        member_set[id.index()] = true;
    }
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    sorted.dedup();

    let mut aig = Aig::new();
    let mut input_map = Vec::new();
    let mut bits: HashMap<NodeId, Vec<AigLit>> = HashMap::new();

    // Import an IR value as fresh primary inputs, one per bit.
    fn import(
        aig: &mut Aig,
        input_map: &mut Vec<(NodeId, u32)>,
        id: NodeId,
        width: u32,
    ) -> Vec<AigLit> {
        (0..width)
            .map(|bit| {
                input_map.push((id, bit));
                aig.input()
            })
            .collect()
    }

    for &id in &sorted {
        let node = graph.node(id);
        let mut operand_bits: Vec<Vec<AigLit>> = Vec::with_capacity(node.operands.len());
        for &op in &node.operands {
            if let Some(lits) = bits.get(&op) {
                operand_bits.push(lits.clone());
            } else {
                let width = graph.node(op).width;
                let lits = import(&mut aig, &mut input_map, op, width);
                bits.insert(op, lits.clone());
                operand_bits.push(lits);
            }
        }
        // Params inside the set read fresh primary inputs; everything else
        // lowers structurally.
        let result = if node.kind == OpKind::Param {
            import(&mut aig, &mut input_map, id, node.width)
        } else {
            lower_op(&mut aig, &node.kind, &operand_bits, node.width)
        };
        debug_assert_eq!(result.len(), node.width as usize);
        bits.insert(id, result);
    }

    // Decide outputs: member bits visible outside the set.
    let mut output_map = Vec::new();
    for &id in &sorted {
        let is_graph_output = graph.outputs().contains(&id);
        let users = graph.users(id);
        let escapes = users.iter().any(|u| !member_set[u.index()]);
        if is_graph_output || escapes || users.is_empty() {
            for (bit, &lit) in bits[&id].iter().enumerate() {
                output_map.push((id, bit as u32));
                aig.push_output(lit);
            }
        }
    }
    LoweredSubgraph { aig, input_map, output_map }
}

/// Lowers one operation over pre-lowered operand bit vectors.
fn lower_op(aig: &mut Aig, kind: &OpKind, operands: &[Vec<AigLit>], width: u32) -> Vec<AigLit> {
    match kind {
        OpKind::Param => unreachable!("params are handled by the caller"),
        OpKind::Literal(v) => {
            (0..width).map(|i| if v.bit(i) { AigLit::TRUE } else { AigLit::FALSE }).collect()
        }
        OpKind::Add => {
            let (sum, _carry) = ripple_add(aig, &operands[0], &operands[1], AigLit::FALSE);
            sum
        }
        OpKind::Sub => {
            let nb: Vec<AigLit> = operands[1].iter().map(|l| l.not()).collect();
            let (diff, _carry) = ripple_add(aig, &operands[0], &nb, AigLit::TRUE);
            diff
        }
        OpKind::Neg => {
            let na: Vec<AigLit> = operands[0].iter().map(|l| l.not()).collect();
            let zero = vec![AigLit::FALSE; na.len()];
            let (neg, _carry) = ripple_add(aig, &zero, &na, AigLit::TRUE);
            neg
        }
        OpKind::Mul => multiply(aig, &operands[0], &operands[1]),
        OpKind::And => zip2(aig, &operands[0], &operands[1], Aig::and),
        OpKind::Or => zip2(aig, &operands[0], &operands[1], Aig::or),
        OpKind::Xor => zip2(aig, &operands[0], &operands[1], Aig::xor),
        OpKind::Not => operands[0].iter().map(|l| l.not()).collect(),
        OpKind::Shll => {
            barrel_shift(aig, &operands[0], &operands[1], ShiftDir::Left, AigLit::FALSE)
        }
        OpKind::Shrl => {
            barrel_shift(aig, &operands[0], &operands[1], ShiftDir::Right, AigLit::FALSE)
        }
        OpKind::Shra => {
            let sign = *operands[0].last().expect("nonzero width");
            barrel_shift(aig, &operands[0], &operands[1], ShiftDir::Right, sign)
        }
        OpKind::Eq => {
            let eq = equality(aig, &operands[0], &operands[1]);
            vec![eq]
        }
        OpKind::Ne => {
            let eq = equality(aig, &operands[0], &operands[1]);
            vec![eq.not()]
        }
        OpKind::Ult => vec![less_than(aig, &operands[0], &operands[1])],
        OpKind::Ugt => vec![less_than(aig, &operands[1], &operands[0])],
        OpKind::Ule => {
            let gt = less_than(aig, &operands[1], &operands[0]);
            vec![gt.not()]
        }
        OpKind::Uge => {
            let lt = less_than(aig, &operands[0], &operands[1]);
            vec![lt.not()]
        }
        OpKind::Sel => {
            let s = operands[0][0];
            operands[1].iter().zip(&operands[2]).map(|(&t, &e)| aig.mux(s, t, e)).collect()
        }
        OpKind::Concat => {
            // First operand is most significant: little-endian result takes
            // operands back to front.
            let mut out = Vec::with_capacity(width as usize);
            for lits in operands.iter().rev() {
                out.extend_from_slice(lits);
            }
            out
        }
        OpKind::BitSlice { start, width } => {
            operands[0][*start as usize..(*start + *width) as usize].to_vec()
        }
        OpKind::ZeroExt { new_width } => {
            let mut out = operands[0].clone();
            out.resize(*new_width as usize, AigLit::FALSE);
            out
        }
        OpKind::SignExt { new_width } => {
            let mut out = operands[0].clone();
            let sign = *out.last().expect("nonzero width");
            out.resize(*new_width as usize, sign);
            out
        }
        OpKind::ReduceXor => vec![aig.xor_tree(&operands[0].clone())],
        OpKind::ReduceOr => vec![aig.or_tree(&operands[0].clone())],
        OpKind::ReduceAnd => vec![aig.and_tree(&operands[0].clone())],
    }
}

fn zip2(
    aig: &mut Aig,
    a: &[AigLit],
    b: &[AigLit],
    mut f: impl FnMut(&mut Aig, AigLit, AigLit) -> AigLit,
) -> Vec<AigLit> {
    a.iter().zip(b).map(|(&x, &y)| f(aig, x, y)).collect()
}

/// Ripple-carry addition; returns `(sum_bits, carry_out)`.
///
/// Ripple-carry is deliberate: it is what a naive standard-cell mapping (the
/// default Yosys/SKY130 `$add` lowering) produces, and it is the source of
/// the paper's headline phenomenon — the *worst-case* path of an adder in
/// isolation runs LSB-in to MSB-out through the whole carry chain, but when
/// adders are chained the late MSB only feeds a one-full-adder path in the
/// consumer. Summing per-op characterized delays therefore grossly
/// overestimates fused regions, and that unused slack is exactly what ISDC's
/// downstream feedback recovers.
fn ripple_add(
    aig: &mut Aig,
    a: &[AigLit],
    b: &[AigLit],
    carry_in: AigLit,
) -> (Vec<AigLit>, AigLit) {
    debug_assert_eq!(a.len(), b.len());
    let mut carry = carry_in;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let xy = aig.xor(x, y);
        sum.push(aig.xor(xy, carry));
        // carry_out = (x & y) | (carry & (x ^ y))
        let gen = aig.and(x, y);
        let prop = aig.and(carry, xy);
        carry = aig.or(gen, prop);
    }
    (sum, carry)
}

/// Wallace-tree multiplier, truncated to the operand width: partial product
/// rows are reduced three-at-a-time with 3:2 compressors (`O(log w)` layers)
/// and a final fast adder resolves the remaining sum/carry pair.
fn multiply(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    let w = a.len();
    let mut rows: Vec<Vec<AigLit>> = Vec::new();
    for (i, &bi) in b.iter().enumerate() {
        if i >= w {
            break;
        }
        // Partial product row i: (a & b_i) << i, truncated to w bits.
        let mut row = vec![AigLit::FALSE; w];
        for j in 0..w - i {
            row[i + j] = aig.and(a[j], bi);
        }
        rows.push(row);
    }
    while rows.len() > 2 {
        let mut next = Vec::with_capacity(rows.len().div_ceil(3) * 2);
        for chunk in rows.chunks(3) {
            if let [x, y, z] = chunk {
                let (s, c) = compress_3_2(aig, x, y, z);
                next.push(s);
                next.push(c);
            } else {
                next.extend(chunk.iter().cloned());
            }
        }
        rows = next;
    }
    match rows.len() {
        0 => vec![AigLit::FALSE; w],
        1 => rows.pop().expect("one row"),
        _ => {
            let second = rows.pop().expect("two rows");
            let first = rows.pop().expect("two rows");
            let (result, _overflow) = ripple_add(aig, &first, &second, AigLit::FALSE);
            result
        }
    }
}

/// 3:2 carry-save compressor over whole rows: `(sum, carry << 1)`.
fn compress_3_2(
    aig: &mut Aig,
    x: &[AigLit],
    y: &[AigLit],
    z: &[AigLit],
) -> (Vec<AigLit>, Vec<AigLit>) {
    let w = x.len();
    let mut sum = Vec::with_capacity(w);
    let mut carry = vec![AigLit::FALSE; w];
    for j in 0..w {
        let xy = aig.xor(x[j], y[j]);
        sum.push(aig.xor(xy, z[j]));
        if j + 1 < w {
            let gen = aig.and(x[j], y[j]);
            let prop = aig.and(xy, z[j]);
            carry[j + 1] = aig.or(gen, prop);
        }
    }
    (sum, carry)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum ShiftDir {
    Left,
    Right,
}

/// Barrel shifter: one mux layer per bit of the shift amount. Amount bits
/// whose weight `2^i` meets or exceeds the width select an all-`fill` result.
fn barrel_shift(
    aig: &mut Aig,
    value: &[AigLit],
    amount: &[AigLit],
    dir: ShiftDir,
    fill: AigLit,
) -> Vec<AigLit> {
    let w = value.len();
    let mut cur = value.to_vec();
    for (i, &abit) in amount.iter().enumerate() {
        let step = 1u128 << i.min(100);
        let shifted: Vec<AigLit> = (0..w)
            .map(|j| {
                if step >= w as u128 {
                    fill
                } else {
                    let step = step as usize;
                    match dir {
                        ShiftDir::Left => {
                            if j >= step {
                                cur[j - step]
                            } else {
                                fill
                            }
                        }
                        ShiftDir::Right => {
                            if j + step < w {
                                cur[j + step]
                            } else {
                                fill
                            }
                        }
                    }
                }
            })
            .collect();
        cur = cur.iter().zip(&shifted).map(|(&keep, &shift)| aig.mux(abit, shift, keep)).collect();
    }
    cur
}

fn equality(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let eqs: Vec<AigLit> = a.iter().zip(b).map(|(&x, &y)| aig.xnor(x, y)).collect();
    aig.and_tree(&eqs)
}

/// Unsigned `a < b` by divide and conquer (`O(log w)` depth):
/// `lt = lt_hi | (eq_hi & lt_lo)`, `eq = eq_hi & eq_lo`.
fn less_than(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    fn rec(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> (AigLit, AigLit) {
        if a.len() == 1 {
            let lt = aig.and(a[0].not(), b[0]);
            let eq = aig.xnor(a[0], b[0]);
            return (lt, eq);
        }
        let mid = a.len() / 2;
        let (lt_lo, eq_lo) = rec(aig, &a[..mid], &b[..mid]);
        let (lt_hi, eq_hi) = rec(aig, &a[mid..], &b[mid..]);
        let through = aig.and(eq_hi, lt_lo);
        let lt = aig.or(lt_hi, through);
        let eq = aig.and(eq_hi, eq_lo);
        (lt, eq)
    }
    rec(aig, a, b).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::{interp, BitVecValue, Graph};
    use std::collections::HashMap as Map;

    /// Evaluates the lowered AIG on the same inputs as the interpreter and
    /// compares every output bit.
    fn check_equivalence(graph: &Graph, cases: &[Vec<(&str, u64)>]) {
        let lowered = lower_graph(graph);
        for case in cases {
            let mut inputs: Map<String, BitVecValue> = Map::new();
            for &(name, val) in case {
                let id = graph
                    .params()
                    .iter()
                    .copied()
                    .find(|&p| graph.node(p).name.as_deref() == Some(name))
                    .expect("param exists");
                inputs.insert(name.to_string(), BitVecValue::from_u64(val, graph.node(id).width));
            }
            let values = interp::evaluate(graph, &inputs).expect("interp");
            let aig_inputs: Vec<bool> =
                lowered.input_map.iter().map(|&(id, bit)| values[id.index()].bit(bit)).collect();
            let aig_out = lowered.aig.eval(&aig_inputs);
            for (pos, &(id, bit)) in lowered.output_map.iter().enumerate() {
                assert_eq!(
                    aig_out[pos],
                    values[id.index()].bit(bit),
                    "mismatch at {id:?} bit {bit} for case {case:?}"
                );
            }
        }
    }

    fn binop_graph(kind: OpKind, w: u32) -> Graph {
        let mut g = Graph::new("t");
        let a = g.param("a", w);
        let b = g.param("b", w);
        let r = g.binary(kind, a, b).unwrap();
        g.set_output(r);
        g
    }

    #[test]
    fn adder_matches_interpreter() {
        let g = binop_graph(OpKind::Add, 8);
        check_equivalence(
            &g,
            &[
                vec![("a", 0), ("b", 0)],
                vec![("a", 255), ("b", 1)],
                vec![("a", 100), ("b", 155)],
                vec![("a", 77), ("b", 33)],
            ],
        );
    }

    #[test]
    fn subtractor_and_negate() {
        let g = binop_graph(OpKind::Sub, 8);
        check_equivalence(&g, &[vec![("a", 5), ("b", 7)], vec![("a", 200), ("b", 13)]]);

        let mut g = Graph::new("neg");
        let a = g.param("a", 8);
        let n = g.unary(OpKind::Neg, a).unwrap();
        g.set_output(n);
        check_equivalence(&g, &[vec![("a", 0)], vec![("a", 1)], vec![("a", 128)]]);
    }

    #[test]
    fn multiplier_matches_interpreter() {
        let g = binop_graph(OpKind::Mul, 8);
        check_equivalence(
            &g,
            &[
                vec![("a", 3), ("b", 7)],
                vec![("a", 255), ("b", 255)],
                vec![("a", 16), ("b", 16)],
                vec![("a", 0), ("b", 99)],
            ],
        );
    }

    #[test]
    fn logic_ops_match() {
        for kind in [OpKind::And, OpKind::Or, OpKind::Xor] {
            let g = binop_graph(kind.clone(), 6);
            check_equivalence(&g, &[vec![("a", 0b101010), ("b", 0b011001)]]);
        }
    }

    #[test]
    fn shifts_match() {
        for kind in [OpKind::Shll, OpKind::Shrl, OpKind::Shra] {
            let mut g = Graph::new("t");
            let a = g.param("a", 16);
            let s = g.param("s", 5); // can exceed width
            let r = g.binary(kind.clone(), a, s).unwrap();
            g.set_output(r);
            for amt in [0u64, 1, 7, 15, 16, 31] {
                check_equivalence(&g, &[vec![("a", 0x8421), ("s", amt)]]);
            }
        }
    }

    #[test]
    fn comparisons_match() {
        for kind in [OpKind::Eq, OpKind::Ne, OpKind::Ult, OpKind::Ule, OpKind::Ugt, OpKind::Uge] {
            let g = binop_graph(kind.clone(), 5);
            check_equivalence(
                &g,
                &[vec![("a", 3), ("b", 17)], vec![("a", 17), ("b", 3)], vec![("a", 9), ("b", 9)]],
            );
        }
    }

    #[test]
    fn select_and_wiring_match() {
        let mut g = Graph::new("t");
        let c = g.param("c", 1);
        let a = g.param("a", 4);
        let b = g.param("b", 4);
        let s = g.select(c, a, b).unwrap();
        let cat = g.add_node(OpKind::Concat, vec![s, a]).unwrap();
        let sl = g.unary(OpKind::BitSlice { start: 2, width: 4 }, cat).unwrap();
        let zx = g.unary(OpKind::ZeroExt { new_width: 8 }, sl).unwrap();
        let sx = g.unary(OpKind::SignExt { new_width: 8 }, sl).unwrap();
        let r = g.binary(OpKind::Xor, zx, sx).unwrap();
        g.set_output(r);
        check_equivalence(
            &g,
            &[
                vec![("c", 0), ("a", 0b1010), ("b", 0b0101)],
                vec![("c", 1), ("a", 0b1111), ("b", 0b0000)],
            ],
        );
    }

    #[test]
    fn reductions_match() {
        for kind in [OpKind::ReduceXor, OpKind::ReduceOr, OpKind::ReduceAnd] {
            let mut g = Graph::new("t");
            let a = g.param("a", 7);
            let r = g.unary(kind.clone(), a).unwrap();
            g.set_output(r);
            check_equivalence(&g, &[vec![("a", 0)], vec![("a", 0x7f)], vec![("a", 0b0101100)]]);
        }
    }

    #[test]
    fn literal_lowers_to_constants() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let k = g.literal_u64(0xa5, 8);
        let r = g.binary(OpKind::Xor, a, k).unwrap();
        g.set_output(r);
        check_equivalence(&g, &[vec![("a", 0x0f)], vec![("a", 0xff)]]);
    }

    #[test]
    fn subgraph_inputs_are_boundary_bits() {
        // x = a + b; y = x * c. Lower only {y}: inputs must be bits of x and c.
        let mut g = Graph::new("t");
        let a = g.param("a", 4);
        let b = g.param("b", 4);
        let c = g.param("c", 4);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        let y = g.binary(OpKind::Mul, x, c).unwrap();
        g.set_output(y);
        let lowered = lower_subgraph(&g, &[y]);
        assert_eq!(lowered.aig.num_inputs(), 8); // 4 bits of x, 4 of c
        let input_nodes: std::collections::HashSet<NodeId> =
            lowered.input_map.iter().map(|&(id, _)| id).collect();
        assert!(input_nodes.contains(&x));
        assert!(input_nodes.contains(&c));
        assert!(!input_nodes.contains(&a));
        assert_eq!(lowered.output_map.len(), 4); // y's bits
    }

    #[test]
    fn subgraph_outputs_include_escaping_values() {
        // x feeds both y (in set) and z (outside) — x's bits must be outputs.
        let mut g = Graph::new("t");
        let a = g.param("a", 4);
        let x = g.unary(OpKind::Not, a).unwrap();
        let y = g.unary(OpKind::Neg, x).unwrap();
        let z = g.unary(OpKind::Not, x).unwrap();
        g.set_output(y);
        g.set_output(z);
        let lowered = lower_subgraph(&g, &[x, y]);
        let out_nodes: std::collections::HashSet<NodeId> =
            lowered.output_map.iter().map(|&(id, _)| id).collect();
        assert!(out_nodes.contains(&x), "x escapes to z");
        assert!(out_nodes.contains(&y), "y is a graph output");
    }

    #[test]
    fn composed_ops_share_and_shorten() {
        // Two chained adders: the combined critical depth must be less than
        // twice a single adder's depth (carry chains do not concatenate).
        let w = 16;
        let single = {
            let g = binop_graph(OpKind::Add, w);
            lower_graph(&g).aig.depth()
        };
        let chained = {
            let mut g = Graph::new("t");
            let a = g.param("a", w);
            let b = g.param("b", w);
            let c = g.param("c", w);
            let x = g.binary(OpKind::Add, a, b).unwrap();
            let y = g.binary(OpKind::Add, x, c).unwrap();
            g.set_output(y);
            lower_graph(&g).aig.depth()
        };
        assert!(
            chained < 2 * single,
            "chained adder depth {chained} should be < 2x single {single}"
        );
    }

    #[test]
    #[should_panic(expected = "empty subgraph")]
    fn empty_subgraph_rejected() {
        let mut g = Graph::new("t");
        let a = g.param("a", 1);
        g.set_output(a);
        let _ = lower_subgraph(&g, &[]);
    }
}
