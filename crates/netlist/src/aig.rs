//! And-inverter graphs (AIGs) with structural hashing.
//!
//! The AIG is the netlist representation of the downstream-tool simulator:
//! HLS operations are bit-blasted into two-input ANDs and complemented edges,
//! optimized by `isdc-synth` passes, then timed by STA. This mirrors the
//! ABC/Yosys internal representation referenced by the paper.

use std::collections::HashMap;
use std::fmt;

/// A literal: a reference to an AIG node with an optional complement.
///
/// Encoded as `node_index << 1 | complement`, the classic AIGER packing.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AigLit(u32);

impl AigLit {
    /// Constant false (the complement of [`AigLit::TRUE`]).
    pub const FALSE: AigLit = AigLit(0);
    /// Constant true.
    pub const TRUE: AigLit = AigLit(1);

    fn new(node: u32, complement: bool) -> Self {
        AigLit(node << 1 | complement as u32)
    }

    /// The index of the referenced node.
    pub fn node(self) -> u32 {
        self.0 >> 1
    }

    /// True if the edge is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The complemented literal.
    ///
    /// Deliberately an inherent method (not `std::ops::Not`): literal
    /// complementation is cheap bit math, and `l.not()` mirrors AIGER
    /// terminology.
    #[allow(clippy::should_implement_trait)]
    #[must_use]
    pub fn not(self) -> Self {
        AigLit(self.0 ^ 1)
    }

    /// True if this is one of the two constant literals.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }

    /// The positive (non-complemented) literal for a node index.
    ///
    /// Intended for passes that rebuild AIGs node by node.
    pub fn positive(node: u32) -> Self {
        AigLit::new(node, false)
    }
}

impl fmt::Debug for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == AigLit::FALSE {
            return f.write_str("const0");
        }
        if *self == AigLit::TRUE {
            return f.write_str("const1");
        }
        write!(f, "{}a{}", if self.is_complemented() { "!" } else { "" }, self.node())
    }
}

/// One AIG node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AigNode {
    /// The reserved constant-false node (always index 0).
    Const,
    /// A primary input; the payload is the input ordinal.
    Input(u32),
    /// Two-input AND of the operand literals.
    And(AigLit, AigLit),
}

/// An and-inverter graph with structural hashing and constant folding.
///
/// Every [`Aig::and`] call canonicalizes operand order, applies the local
/// simplification rules (`x&0`, `x&1`, `x&x`, `x&!x`) and deduplicates
/// against previously built nodes, so equivalent two-level structures are
/// shared automatically — the baseline optimization any logic synthesizer
/// performs.
///
/// # Examples
///
/// ```
/// use isdc_netlist::{Aig, AigLit};
///
/// let mut aig = Aig::new();
/// let a = aig.input();
/// let b = aig.input();
/// let x = aig.xor(a, b);
/// aig.push_output(x);
/// assert_eq!(aig.eval(&[true, false])[0], true);
/// assert_eq!(aig.eval(&[true, true])[0], false);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Aig {
    nodes: Vec<AigNode>,
    inputs: Vec<u32>,
    outputs: Vec<AigLit>,
    strash: HashMap<(AigLit, AigLit), u32>,
}

impl Aig {
    /// Creates an empty AIG (containing only the constant node).
    pub fn new() -> Self {
        Self {
            nodes: vec![AigNode::Const],
            inputs: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Adds a primary input and returns its (positive) literal.
    pub fn input(&mut self) -> AigLit {
        let ordinal = self.inputs.len() as u32;
        let idx = self.nodes.len() as u32;
        self.nodes.push(AigNode::Input(ordinal));
        self.inputs.push(idx);
        AigLit::new(idx, false)
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Registers an output literal.
    pub fn push_output(&mut self, lit: AigLit) {
        self.outputs.push(lit);
    }

    /// The output literals in registration order.
    pub fn outputs(&self) -> &[AigLit] {
        &self.outputs
    }

    /// Replaces output `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn set_output(&mut self, i: usize, lit: AigLit) {
        self.outputs[i] = lit;
    }

    /// All nodes (index 0 is the constant node).
    pub fn nodes(&self) -> &[AigNode] {
        &self.nodes
    }

    /// Number of AND nodes (the standard AIG size metric).
    pub fn num_ands(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, AigNode::And(..))).count()
    }

    /// Builds `a & b` with constant folding, canonicalization and structural
    /// hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant / trivial folding.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == b.not() {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&idx) = self.strash.get(&(a, b)) {
            return AigLit::new(idx, false);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), idx);
        AigLit::new(idx, false)
    }

    /// Builds `a | b` (De Morgan on [`Aig::and`]).
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.and(a.not(), b.not()).not()
    }

    /// Builds `a ^ b` (three ANDs).
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let t1 = self.and(a, b.not());
        let t2 = self.and(a.not(), b);
        self.or(t1, t2)
    }

    /// Builds `a ~^ b`.
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        self.xor(a, b).not()
    }

    /// Builds `if s { t } else { e }`.
    pub fn mux(&mut self, s: AigLit, t: AigLit, e: AigLit) -> AigLit {
        if t == e {
            return t;
        }
        let on_true = self.and(s, t);
        let on_false = self.and(s.not(), e);
        self.or(on_true, on_false)
    }

    /// AND-reduces a slice of literals with a balanced tree.
    pub fn and_tree(&mut self, lits: &[AigLit]) -> AigLit {
        self.tree(lits, AigLit::TRUE, Self::and)
    }

    /// OR-reduces a slice of literals with a balanced tree.
    pub fn or_tree(&mut self, lits: &[AigLit]) -> AigLit {
        self.tree(lits, AigLit::FALSE, Self::or)
    }

    /// XOR-reduces a slice of literals with a balanced tree.
    pub fn xor_tree(&mut self, lits: &[AigLit]) -> AigLit {
        self.tree(lits, AigLit::FALSE, Self::xor)
    }

    fn tree(
        &mut self,
        lits: &[AigLit],
        empty: AigLit,
        mut combine: impl FnMut(&mut Self, AigLit, AigLit) -> AigLit,
    ) -> AigLit {
        match lits.len() {
            0 => empty,
            1 => lits[0],
            _ => {
                let mut layer = lits.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    for pair in layer.chunks(2) {
                        next.push(if pair.len() == 2 {
                            combine(self, pair[0], pair[1])
                        } else {
                            pair[0]
                        });
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Evaluates all outputs on concrete input bits (ordered by input
    /// creation order).
    ///
    /// # Panics
    ///
    /// Panics if `input_bits.len()` differs from the number of inputs.
    pub fn eval(&self, input_bits: &[bool]) -> Vec<bool> {
        assert_eq!(
            input_bits.len(),
            self.inputs.len(),
            "expected {} input bits, got {}",
            self.inputs.len(),
            input_bits.len()
        );
        let mut values = vec![false; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match node {
                AigNode::Const => false,
                AigNode::Input(ord) => input_bits[*ord as usize],
                AigNode::And(a, b) => {
                    let va = values[a.node() as usize] ^ a.is_complemented();
                    let vb = values[b.node() as usize] ^ b.is_complemented();
                    va && vb
                }
            };
        }
        self.outputs.iter().map(|lit| values[lit.node() as usize] ^ lit.is_complemented()).collect()
    }

    /// Per-node AND-depth: constants and inputs are depth 0, an AND node is
    /// one more than its deepest operand.
    pub fn depths(&self) -> Vec<u32> {
        let mut depths = vec![0u32; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = node {
                depths[i] = 1 + depths[a.node() as usize].max(depths[b.node() as usize]);
            }
        }
        depths
    }

    /// The maximum AND-depth over all outputs — the paper's Fig. 8 metric.
    pub fn depth(&self) -> u32 {
        let depths = self.depths();
        self.outputs.iter().map(|lit| depths[lit.node() as usize]).max().unwrap_or(0)
    }

    /// Per-node fanout counts (uses by AND nodes plus output uses).
    pub fn fanouts(&self) -> Vec<u32> {
        let mut fanout = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let AigNode::And(a, b) = node {
                fanout[a.node() as usize] += 1;
                fanout[b.node() as usize] += 1;
            }
        }
        for lit in &self.outputs {
            fanout[lit.node() as usize] += 1;
        }
        fanout
    }

    /// Rebuilds the AIG keeping only nodes reachable from the outputs,
    /// returning the cleaned copy. Input ordinals are preserved (dangling
    /// inputs are kept so input ordering stays stable).
    pub fn sweep(&self) -> Aig {
        let mut out = Aig::new();
        // Recreate all inputs in order.
        let mut map: Vec<Option<AigLit>> = vec![None; self.nodes.len()];
        map[0] = Some(AigLit::FALSE);
        for &idx in &self.inputs {
            map[idx as usize] = Some(out.input());
        }
        let mut reachable = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = self.outputs.iter().map(|l| l.node()).collect();
        while let Some(n) = stack.pop() {
            if reachable[n as usize] {
                continue;
            }
            reachable[n as usize] = true;
            if let AigNode::And(a, b) = self.nodes[n as usize] {
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if !reachable[i] || map[i].is_some() {
                continue;
            }
            if let AigNode::And(a, b) = node {
                let la = map[a.node() as usize].expect("topological order") ^ a.is_complemented();
                let lb = map[b.node() as usize].expect("topological order") ^ b.is_complemented();
                map[i] = Some(out.and(la, lb));
            }
        }
        for lit in &self.outputs {
            let l = map[lit.node() as usize].expect("output resolved") ^ lit.is_complemented();
            out.push_output(l);
        }
        out
    }
}

impl std::ops::BitXor<bool> for AigLit {
    type Output = AigLit;

    fn bitxor(self, complement: bool) -> AigLit {
        if complement {
            self.not()
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding_rules() {
        let mut aig = Aig::new();
        let a = aig.input();
        assert_eq!(aig.and(a, AigLit::FALSE), AigLit::FALSE);
        assert_eq!(aig.and(a, AigLit::TRUE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, a.not()), AigLit::FALSE);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn structural_hashing_shares_nodes() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        let y = aig.and(b, a); // commuted — must hash to the same node
        assert_eq!(x, y);
        assert_eq!(aig.num_ands(), 1);
    }

    #[test]
    fn eval_basic_gates() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let and = aig.and(a, b);
        let or = aig.or(a, b);
        let xor = aig.xor(a, b);
        aig.push_output(and);
        aig.push_output(or);
        aig.push_output(xor);
        for (x, y) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = aig.eval(&[x, y]);
            assert_eq!(out, vec![x && y, x || y, x ^ y], "inputs {x} {y}");
        }
    }

    #[test]
    fn mux_truth_table() {
        let mut aig = Aig::new();
        let s = aig.input();
        let t = aig.input();
        let e = aig.input();
        let m = aig.mux(s, t, e);
        aig.push_output(m);
        for s_v in [false, true] {
            for t_v in [false, true] {
                for e_v in [false, true] {
                    let out = aig.eval(&[s_v, t_v, e_v]);
                    assert_eq!(out[0], if s_v { t_v } else { e_v });
                }
            }
        }
    }

    #[test]
    fn mux_same_arms_collapses() {
        let mut aig = Aig::new();
        let s = aig.input();
        let t = aig.input();
        assert_eq!(aig.mux(s, t, t), t);
        assert_eq!(aig.num_ands(), 0);
    }

    #[test]
    fn balanced_trees_have_log_depth() {
        let mut aig = Aig::new();
        let inputs: Vec<AigLit> = (0..16).map(|_| aig.input()).collect();
        let root = aig.and_tree(&inputs);
        aig.push_output(root);
        assert_eq!(aig.depth(), 4); // log2(16)
        let all_true = vec![true; 16];
        assert!(aig.eval(&all_true)[0]);
        let mut one_false = all_true.clone();
        one_false[7] = false;
        assert!(!aig.eval(&one_false)[0]);
    }

    #[test]
    fn xor_tree_parity() {
        let mut aig = Aig::new();
        let inputs: Vec<AigLit> = (0..8).map(|_| aig.input()).collect();
        let root = aig.xor_tree(&inputs);
        aig.push_output(root);
        let bits = [true, false, true, true, false, false, true, false];
        let parity = bits.iter().filter(|&&b| b).count() % 2 == 1;
        assert_eq!(aig.eval(&bits)[0], parity);
    }

    #[test]
    fn empty_trees_yield_identity() {
        let mut aig = Aig::new();
        assert_eq!(aig.and_tree(&[]), AigLit::TRUE);
        assert_eq!(aig.or_tree(&[]), AigLit::FALSE);
        assert_eq!(aig.xor_tree(&[]), AigLit::FALSE);
    }

    #[test]
    fn depth_and_fanout() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        let y = aig.and(x, a); // a used twice
        aig.push_output(y);
        assert_eq!(aig.depth(), 2);
        let fo = aig.fanouts();
        assert_eq!(fo[a.node() as usize], 2);
        assert_eq!(fo[x.node() as usize], 1);
        assert_eq!(fo[y.node() as usize], 1);
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let live = aig.and(a, b);
        let _dead = aig.xor(a, b); // three ANDs, never used
        aig.push_output(live);
        assert!(aig.num_ands() > 1);
        let swept = aig.sweep();
        assert_eq!(swept.num_ands(), 1);
        assert_eq!(swept.num_inputs(), 2);
        for (x, y) in [(false, true), (true, true)] {
            assert_eq!(swept.eval(&[x, y]), aig.eval(&[x, y]));
        }
    }

    #[test]
    fn sweep_preserves_complemented_outputs() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        aig.push_output(x.not());
        let swept = aig.sweep();
        assert_eq!(swept.eval(&[true, true]), vec![false]);
        assert_eq!(swept.eval(&[false, true]), vec![true]);
    }

    #[test]
    fn lit_encoding() {
        let l = AigLit::new(5, true);
        assert_eq!(l.node(), 5);
        assert!(l.is_complemented());
        assert_eq!(l.not().not(), l);
        assert_eq!(format!("{:?}", AigLit::TRUE), "const1");
    }
}
