//! # isdc-techlib — synthetic technology library
//!
//! A SKY130-flavoured standard-cell library used by the logic-synthesis
//! simulator (`isdc-synth`) for gate-level timing. The paper characterizes op
//! delays and evaluates subgraph feedback with Yosys + OpenSTA against the
//! open-source SKY130 PDK; this crate plays the PDK role with a linear delay
//! model:
//!
//! ```text
//! delay(gate, fanout) = intrinsic(gate) + load_slope(gate) * (fanout - 1)
//! ```
//!
//! Absolute numbers are *inspired by* SKY130 high-density typical-corner
//! datasheet values (tens of picoseconds per stage); they are deliberately
//! simple so experiments are deterministic and portable.
//!
//! # Examples
//!
//! ```
//! use isdc_techlib::{TechLibrary, GateKind};
//!
//! let lib = TechLibrary::sky130();
//! let d1 = lib.gate_delay(GateKind::Nand2, 1);
//! let d4 = lib.gate_delay(GateKind::Nand2, 4);
//! assert!(d4 > d1, "higher fanout means more delay");
//! ```

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::fmt;

/// Delay in picoseconds.
pub type Picos = f64;

/// The combinational and sequential cells the mapper may use.
///
/// The AIG-based flow maps onto `{Nand2, Inv}` plus registers, but richer
/// cells are characterized so alternative mappers and the op-delay
/// pre-characterization can use them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Inverter.
    Inv,
    /// Non-inverting buffer.
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2-to-1 multiplexer.
    Mux2,
}

impl GateKind {
    /// Every combinational gate kind.
    pub const ALL: [GateKind; 9] = [
        GateKind::Inv,
        GateKind::Buf,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Xor2,
        GateKind::Xnor2,
        GateKind::Mux2,
    ];
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Inv => "inv",
            GateKind::Buf => "buf",
            GateKind::Nand2 => "nand2",
            GateKind::Nor2 => "nor2",
            GateKind::And2 => "and2",
            GateKind::Or2 => "or2",
            GateKind::Xor2 => "xor2",
            GateKind::Xnor2 => "xnor2",
            GateKind::Mux2 => "mux2",
        };
        f.write_str(s)
    }
}

/// Timing and area data for one cell.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellTiming {
    /// Fixed propagation delay in picoseconds at fanout 1.
    pub intrinsic_ps: Picos,
    /// Additional delay per extra fanout, in picoseconds.
    pub load_slope_ps: Picos,
    /// Relative area in library units.
    pub area: f64,
}

/// Sequential (register) characteristics.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegisterTiming {
    /// Setup time in picoseconds.
    pub setup_ps: Picos,
    /// Clock-to-Q delay in picoseconds.
    pub clk_to_q_ps: Picos,
    /// Area of a 1-bit register in library units.
    pub area_per_bit: f64,
}

/// A complete technology library: combinational cells plus one register cell.
///
/// Constructed via [`TechLibrary::sky130`] (the default, SKY130-flavoured
/// numbers) or [`TechLibrary::uniform`] (every gate identical — useful for
/// tests where only structure should matter).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TechLibrary {
    name: String,
    cells: Vec<(GateKind, CellTiming)>,
    register: RegisterTiming,
}

impl TechLibrary {
    /// The SKY130-flavoured default library.
    ///
    /// Relative gate speeds follow the usual CMOS ordering: NAND/NOR fastest,
    /// XOR/XNOR and MUX roughly two simple stages, inverter cheapest.
    pub fn sky130() -> Self {
        let cell = |intrinsic_ps: f64, load_slope_ps: f64, area: f64| CellTiming {
            intrinsic_ps,
            load_slope_ps,
            area,
        };
        Self {
            name: "sky130-like".to_string(),
            cells: vec![
                (GateKind::Inv, cell(22.0, 6.0, 1.0)),
                (GateKind::Buf, cell(38.0, 5.0, 2.0)),
                (GateKind::Nand2, cell(42.0, 8.0, 2.0)),
                (GateKind::Nor2, cell(48.0, 9.0, 2.0)),
                (GateKind::And2, cell(65.0, 8.0, 3.0)),
                (GateKind::Or2, cell(70.0, 8.0, 3.0)),
                (GateKind::Xor2, cell(95.0, 10.0, 4.0)),
                (GateKind::Xnor2, cell(98.0, 10.0, 4.0)),
                (GateKind::Mux2, cell(90.0, 9.0, 4.0)),
            ],
            register: RegisterTiming { setup_ps: 120.0, clk_to_q_ps: 320.0, area_per_bit: 8.0 },
        }
    }

    /// A library in which every combinational cell has identical timing.
    ///
    /// With a uniform library, STA delay is proportional to logic depth,
    /// which makes structural tests deterministic and easy to reason about.
    pub fn uniform(gate_delay_ps: Picos) -> Self {
        let cell = CellTiming { intrinsic_ps: gate_delay_ps, load_slope_ps: 0.0, area: 1.0 };
        Self {
            name: format!("uniform-{gate_delay_ps}ps"),
            cells: GateKind::ALL.iter().map(|&k| (k, cell)).collect(),
            register: RegisterTiming { setup_ps: 0.0, clk_to_q_ps: 0.0, area_per_bit: 1.0 },
        }
    }

    /// The library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Timing data for a gate kind.
    ///
    /// # Panics
    ///
    /// Panics if the library was built without the given kind (cannot happen
    /// for the provided constructors).
    pub fn cell(&self, kind: GateKind) -> CellTiming {
        self.cells
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, t)| *t)
            .unwrap_or_else(|| panic!("library `{}` has no cell {kind}", self.name))
    }

    /// Propagation delay of `kind` driving `fanout` sinks, in picoseconds.
    ///
    /// Fanout 0 (dangling output) is treated as fanout 1. The load model is
    /// linear up to [`Self::MAX_DIRECT_FANOUT`] sinks; beyond that, the
    /// model assumes the synthesizer inserts a buffer tree (as real flows
    /// do), so the penalty grows logarithmically: one buffer level per
    /// doubling, each costing the buffer cell's intrinsic delay plus a full
    /// direct load.
    pub fn gate_delay(&self, kind: GateKind, fanout: usize) -> Picos {
        let t = self.cell(kind);
        let f = fanout.max(1);
        let direct = f.min(Self::MAX_DIRECT_FANOUT).saturating_sub(1) as f64;
        let mut delay = t.intrinsic_ps + t.load_slope_ps * direct;
        if f > Self::MAX_DIRECT_FANOUT {
            let buf = self.cell(GateKind::Buf);
            let levels = ((f as f64) / Self::MAX_DIRECT_FANOUT as f64).log2().ceil();
            delay += levels
                * (buf.intrinsic_ps + buf.load_slope_ps * (Self::MAX_DIRECT_FANOUT - 1) as f64);
        }
        delay
    }

    /// Sinks a cell drives directly before the model assumes buffering.
    pub const MAX_DIRECT_FANOUT: usize = 8;

    /// The register cell characteristics.
    pub fn register(&self) -> RegisterTiming {
        self.register
    }

    /// The clock-period budget available for combinational logic, i.e.
    /// `t_clk - setup - clk_to_q`.
    ///
    /// # Panics
    ///
    /// Panics if the sequential overhead exceeds the clock period.
    pub fn combinational_budget(&self, clock_period_ps: Picos) -> Picos {
        let overhead = self.register.setup_ps + self.register.clk_to_q_ps;
        assert!(
            clock_period_ps > overhead,
            "clock period {clock_period_ps}ps does not cover register overhead {overhead}ps"
        );
        clock_period_ps - overhead
    }
}

/// Process/voltage/temperature corner selector for [`TechLibrary::sky130_corner`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Corner {
    /// Fast-fast, high voltage, low temperature: ~20% faster than typical.
    Fast,
    /// The typical corner ([`TechLibrary::sky130`]).
    Typical,
    /// Slow-slow, low voltage, high temperature: ~35% slower than typical.
    Slow,
}

impl Corner {
    /// The delay derating factor relative to the typical corner.
    pub fn derating(self) -> f64 {
        match self {
            Corner::Fast => 0.8,
            Corner::Typical => 1.0,
            Corner::Slow => 1.35,
        }
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Corner::Fast => "fast",
            Corner::Typical => "typical",
            Corner::Slow => "slow",
        })
    }
}

impl TechLibrary {
    /// The SKY130-flavoured library derated to a PVT corner.
    ///
    /// Signoff flows time against the slow corner; optimistic exploration
    /// can use the fast one. Areas are corner-independent.
    pub fn sky130_corner(corner: Corner) -> Self {
        let mut lib = Self::sky130();
        let k = corner.derating();
        lib.name = format!("sky130-like-{corner}");
        for (_, timing) in &mut lib.cells {
            timing.intrinsic_ps *= k;
            timing.load_slope_ps *= k;
        }
        lib.register.setup_ps *= k;
        lib.register.clk_to_q_ps *= k;
        lib
    }
}

impl Default for TechLibrary {
    fn default() -> Self {
        Self::sky130()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sky130_has_all_cells() {
        let lib = TechLibrary::sky130();
        for kind in GateKind::ALL {
            let t = lib.cell(kind);
            assert!(t.intrinsic_ps > 0.0, "{kind} must have positive delay");
            assert!(t.area > 0.0);
        }
    }

    #[test]
    fn relative_speed_ordering() {
        let lib = TechLibrary::sky130();
        // Inverter is the fastest cell; XOR slower than NAND; register
        // overhead dominates single gates.
        assert!(lib.cell(GateKind::Inv).intrinsic_ps < lib.cell(GateKind::Nand2).intrinsic_ps);
        assert!(lib.cell(GateKind::Nand2).intrinsic_ps < lib.cell(GateKind::Xor2).intrinsic_ps);
        assert!(lib.register().clk_to_q_ps > lib.cell(GateKind::Xor2).intrinsic_ps);
    }

    #[test]
    fn fanout_increases_delay_linearly() {
        let lib = TechLibrary::sky130();
        let d1 = lib.gate_delay(GateKind::Nand2, 1);
        let d2 = lib.gate_delay(GateKind::Nand2, 2);
        let d3 = lib.gate_delay(GateKind::Nand2, 3);
        assert!((d2 - d1 - (d3 - d2)).abs() < 1e-9);
        assert!(d2 > d1);
    }

    #[test]
    fn fanout_zero_equals_fanout_one() {
        let lib = TechLibrary::sky130();
        assert_eq!(lib.gate_delay(GateKind::Inv, 0), lib.gate_delay(GateKind::Inv, 1));
    }

    #[test]
    fn huge_fanout_grows_logarithmically() {
        let lib = TechLibrary::sky130();
        let d8 = lib.gate_delay(GateKind::Nand2, 8);
        let d16 = lib.gate_delay(GateKind::Nand2, 16);
        let d256 = lib.gate_delay(GateKind::Nand2, 256);
        assert!(d16 > d8, "buffer level adds delay");
        // 256 sinks = 5 buffer levels, not 255 direct loads.
        let unbuffered = lib.cell(GateKind::Nand2).intrinsic_ps
            + lib.cell(GateKind::Nand2).load_slope_ps * 255.0;
        assert!(d256 < unbuffered / 2.0, "buffered {d256} vs unbuffered {unbuffered}");
        // Doubling fanout past the cap adds exactly one buffer level.
        let level = lib.gate_delay(GateKind::Nand2, 32) - lib.gate_delay(GateKind::Nand2, 16);
        assert!(level > 0.0);
        assert!(
            (lib.gate_delay(GateKind::Nand2, 64) - lib.gate_delay(GateKind::Nand2, 32) - level)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn uniform_library_is_flat() {
        let lib = TechLibrary::uniform(10.0);
        for kind in GateKind::ALL {
            assert_eq!(lib.gate_delay(kind, 5), 10.0);
        }
        assert_eq!(lib.register().setup_ps, 0.0);
    }

    #[test]
    fn combinational_budget() {
        let lib = TechLibrary::sky130();
        let budget = lib.combinational_budget(2500.0);
        assert!((budget - (2500.0 - 120.0 - 320.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "does not cover register overhead")]
    fn budget_rejects_tiny_period() {
        TechLibrary::sky130().combinational_budget(100.0);
    }

    #[test]
    fn default_is_sky130() {
        assert_eq!(TechLibrary::default(), TechLibrary::sky130());
    }

    #[test]
    fn corners_scale_delays_not_area() {
        let typical = TechLibrary::sky130();
        let slow = TechLibrary::sky130_corner(Corner::Slow);
        let fast = TechLibrary::sky130_corner(Corner::Fast);
        for kind in GateKind::ALL {
            let t = typical.gate_delay(kind, 2);
            assert!(slow.gate_delay(kind, 2) > t, "{kind} slow must be slower");
            assert!(fast.gate_delay(kind, 2) < t, "{kind} fast must be faster");
            assert_eq!(slow.cell(kind).area, typical.cell(kind).area);
        }
        assert!(slow.register().setup_ps > typical.register().setup_ps);
    }

    #[test]
    fn typical_corner_is_the_default_library_timing() {
        let typical = TechLibrary::sky130_corner(Corner::Typical);
        for kind in GateKind::ALL {
            assert_eq!(typical.gate_delay(kind, 3), TechLibrary::sky130().gate_delay(kind, 3));
        }
        assert_eq!(Corner::Slow.to_string(), "slow");
    }
}
