//! The 17 evaluation benchmarks (paper Table I).
//!
//! The paper's benchmarks are XLS designs, several of them proprietary
//! datapaths from industrial SoCs (an ML processor, a video processor).
//! These generators synthesize datapaths of the same *kind* and comparable
//! op mix, so the relative SDC-vs-ISDC behaviour is preserved even though
//! absolute register counts differ from the paper's table.
//!
//! Width discipline: benchmarks with a 2500ps clock use operations that
//! individually fit 2500ps under the SKY130-flavoured library (adds/muls up
//! to 16 bits); 32-bit arithmetic appears only in 5000ps benchmarks,
//! mirroring the paper's rule of doubling the target period when an op
//! exceeds it.

use isdc_ir::{Graph, NodeId, OpKind};

/// Helper: rotate right by a constant (pure wiring).
fn ror(g: &mut Graph, x: NodeId, k: u32) -> NodeId {
    let w = g.node(x).width;
    let k = k % w;
    if k == 0 {
        return x;
    }
    let low = g.unary(OpKind::BitSlice { start: 0, width: k }, x).expect("slice");
    let high = g.unary(OpKind::BitSlice { start: k, width: w - k }, x).expect("slice");
    g.add_node(OpKind::Concat, vec![low, high]).expect("concat")
}

/// Helper: logical shift right by a constant (pure wiring).
fn shr_const(g: &mut Graph, x: NodeId, k: u32) -> NodeId {
    let w = g.node(x).width;
    if k == 0 {
        return x;
    }
    if k >= w {
        return g.literal_u64(0, w);
    }
    let high = g.unary(OpKind::BitSlice { start: k, width: w - k }, x).expect("slice");
    g.unary(OpKind::ZeroExt { new_width: w }, high).expect("ext")
}

/// Helper: shift left by a constant (pure wiring).
fn shl_const(g: &mut Graph, x: NodeId, k: u32) -> NodeId {
    let w = g.node(x).width;
    if k == 0 {
        return x;
    }
    if k >= w {
        return g.literal_u64(0, w);
    }
    let low = g.unary(OpKind::BitSlice { start: 0, width: w - k }, x).expect("slice");
    let zeros = g.literal_u64(0, k);
    g.add_node(OpKind::Concat, vec![low, zeros]).expect("concat")
}

/// Helper: `max(x, y)` via compare-select.
fn umax(g: &mut Graph, x: NodeId, y: NodeId) -> NodeId {
    let lt = g.binary(OpKind::Ult, x, y).expect("ult");
    g.select(lt, y, x).expect("sel")
}

/// Helper: unsigned saturating clamp to `limit` (a literal).
fn clamp(g: &mut Graph, x: NodeId, limit: u64) -> NodeId {
    let w = g.node(x).width;
    let lim = g.literal_u64(limit, w);
    let over = g.binary(OpKind::Ugt, x, lim).expect("ugt");
    g.select(over, lim, x).expect("sel")
}

/// `crc32`: bitwise CRC-32 over 8 unrolled data bytes (2500ps class).
///
/// Each bit round is `state = (state >> 1) ^ (poly & -(state[0] ^ bit))` —
/// cheap XOR/select logic whose long sequential chain pipelines into a few
/// stages.
pub fn crc32() -> Graph {
    let mut g = Graph::new("crc32");
    let mut state = g.param("state_in", 32);
    let data = g.param("data", 64);
    let poly = g.literal_u64(0xEDB8_8320, 32);
    let zero = g.literal_u64(0, 32);
    for i in 0..64u32 {
        let dbit = g.unary(OpKind::BitSlice { start: i, width: 1 }, data).expect("bit");
        let sbit = g.unary(OpKind::BitSlice { start: 0, width: 1 }, state).expect("bit");
        let x = g.binary(OpKind::Xor, dbit, sbit).expect("xor");
        let mask = g.select(x, poly, zero).expect("sel");
        let shifted = shr_const(&mut g, state, 1);
        state = g.binary(OpKind::Xor, shifted, mask).expect("xor");
    }
    g.set_name(state, "crc_out");
    g.set_output(state);
    g
}

/// `rrot`: data-dependent rotates with XOR mixing (2500ps class).
pub fn rrot() -> Graph {
    let mut g = Graph::new("rrot");
    let x = g.param("x", 32);
    let y = g.param("y", 32);
    let amt = g.param("amt", 5);
    let mut acc = x;
    for round in 0..3u32 {
        let amt_w = g.unary(OpKind::ZeroExt { new_width: 6 }, amt).expect("ext");
        let right = g.binary(OpKind::Shrl, acc, amt_w).expect("shr");
        let thirty_two = g.literal_u64(32, 6);
        let inv = g.binary(OpKind::Sub, thirty_two, amt_w).expect("sub");
        let left = g.binary(OpKind::Shll, acc, inv).expect("shl");
        let rot = g.binary(OpKind::Or, right, left).expect("or");
        let mixed = g.binary(OpKind::Xor, rot, y).expect("xor");
        acc = ror(&mut g, mixed, 7 + round);
    }
    g.set_name(acc, "out");
    g.set_output(acc);
    g
}

/// `binary_divide`: unrolled 8-bit restoring division (2500ps class).
pub fn binary_divide() -> Graph {
    let mut g = Graph::new("binary_divide");
    let dividend = g.param("dividend", 8);
    let divisor = g.param("divisor", 8);
    let mut rem = g.literal_u64(0, 8);
    let mut quotient_bits: Vec<NodeId> = Vec::new();
    for i in (0..8u32).rev() {
        let shifted = shl_const(&mut g, rem, 1);
        let bit = g.unary(OpKind::BitSlice { start: i, width: 1 }, dividend).expect("bit");
        let bit8 = g.unary(OpKind::ZeroExt { new_width: 8 }, bit).expect("ext");
        let trial = g.binary(OpKind::Or, shifted, bit8).expect("or");
        let diff = g.binary(OpKind::Sub, trial, divisor).expect("sub");
        let ge = g.binary(OpKind::Uge, trial, divisor).expect("uge");
        rem = g.select(ge, diff, trial).expect("sel");
        quotient_bits.push(ge);
    }
    // quotient_bits[0] is the MSB; Concat takes MSB first.
    let quotient = g.add_node(OpKind::Concat, quotient_bits).expect("concat");
    g.set_name(quotient, "quotient");
    g.set_name(rem, "remainder");
    g.set_output(quotient);
    g.set_output(rem);
    g
}

/// `hsv2rgb`: HSV to RGB conversion datapath (5000ps class).
pub fn hsv2rgb() -> Graph {
    let mut g = Graph::new("hsv2rgb");
    let h = g.param("h", 16);
    let s = g.param("s", 16);
    let v = g.param("v", 16);
    let max16 = g.literal_u64(0xff, 16);
    // Chroma-style intermediates: p = v * (255 - s) >> 8, and the ramp
    // values q/t from the hue remainder.
    let inv_s = g.binary(OpKind::Sub, max16, s).expect("sub");
    let vp = g.binary(OpKind::Mul, v, inv_s).expect("mul");
    let p = shr_const(&mut g, vp, 8);
    let region_div = g.literal_u64(43, 16);
    // Approximate h / 43 via multiply by 1528 >> 16 (fixed-point reciprocal).
    let recip = g.literal_u64(1528, 16);
    let hr = g.binary(OpKind::Mul, h, recip).expect("mul");
    let region = shr_const(&mut g, hr, 8);
    let region_base = g.binary(OpKind::Mul, region, region_div).expect("mul");
    let rem = g.binary(OpKind::Sub, h, region_base).expect("sub");
    let six = g.literal_u64(6, 16);
    let rem6 = g.binary(OpKind::Mul, rem, six).expect("mul");
    let inv_rem = g.binary(OpKind::Sub, max16, rem6).expect("sub");
    let sq = g.binary(OpKind::Mul, s, rem6).expect("mul");
    let sq8 = shr_const(&mut g, sq, 8);
    let q_factor = g.binary(OpKind::Sub, max16, sq8).expect("sub");
    let vq = g.binary(OpKind::Mul, v, q_factor).expect("mul");
    let q = shr_const(&mut g, vq, 8);
    let st = g.binary(OpKind::Mul, s, inv_rem).expect("mul");
    let st8 = shr_const(&mut g, st, 8);
    let t_factor = g.binary(OpKind::Sub, max16, st8).expect("sub");
    let vt = g.binary(OpKind::Mul, v, t_factor).expect("mul");
    let t = shr_const(&mut g, vt, 8);
    // Region select chains for the three channels.
    let zero = g.literal_u64(0, 16);
    let r0 = g.binary(OpKind::Eq, region, zero).expect("eq");
    let one = g.literal_u64(1, 16);
    let r1 = g.binary(OpKind::Eq, region, one).expect("eq");
    let two = g.literal_u64(2, 16);
    let r2 = g.binary(OpKind::Eq, region, two).expect("eq");
    let r_a = g.select(r0, v, q).expect("sel");
    let r_b = g.select(r1, q, r_a).expect("sel");
    let red = g.select(r2, p, r_b).expect("sel");
    let g_a = g.select(r0, t, v).expect("sel");
    let g_b = g.select(r2, v, g_a).expect("sel");
    let green = g.select(r1, v, g_b).expect("sel");
    let b_a = g.select(r0, p, t).expect("sel");
    let b_b = g.select(r1, p, b_a).expect("sel");
    let blue = g.select(r2, t, b_b).expect("sel");
    let red = clamp(&mut g, red, 0xff);
    let green = clamp(&mut g, green, 0xff);
    let blue = clamp(&mut g, blue, 0xff);
    g.set_name(red, "r");
    g.set_name(green, "g_out");
    g.set_name(blue, "b");
    g.set_output(red);
    g.set_output(green);
    g.set_output(blue);
    g
}

/// `ml_core_datapath1`: the small MAC-with-clamp datapath (2500ps class).
pub fn ml_core_datapath1() -> Graph {
    let mut g = Graph::new("ml_core_datapath1");
    let a = g.param("a", 12);
    let b = g.param("b", 12);
    let c = g.param("c", 12);
    let m = g.binary(OpKind::Mul, a, b).expect("mul");
    let s = g.binary(OpKind::Add, m, c).expect("add");
    let r = shr_const(&mut g, s, 2);
    let out = clamp(&mut g, r, 0x3ff);
    g.set_name(out, "out");
    g.set_output(out);
    g
}

/// `ml_core_datapath2`: an 8-deep accumulating MAC chain with parallel
/// checksum and running-max branches — the mid-size design used for the
/// Fig. 5 / Fig. 6 ablations (2500ps class).
///
/// The side branches matter for the ablations: they give every pipeline
/// stage several competing register producers with different widths and
/// fanouts (the paper's Fig. 3 scenario), so delay-driven and fanout-driven
/// scoring genuinely rank candidates differently.
pub fn ml_core_datapath2() -> Graph {
    let mut g = Graph::new("ml_core_datapath2");
    let mut acc = g.param("acc_in", 16);
    let mut checksum = g.param("csum_in", 16);
    let mut running_max = g.param("max_in", 8);
    for i in 0..8 {
        let a = g.param(format!("a{i}"), 8);
        let w = g.param(format!("w{i}"), 8);
        let prod = g.binary(OpKind::Mul, a, w).expect("mul");
        let prod16 = g.unary(OpKind::ZeroExt { new_width: 16 }, prod).expect("ext");
        acc = g.binary(OpKind::Add, acc, prod16).expect("add");
        // Low-cost side branches consuming the same product: a wide xor
        // checksum (single consumer) and a narrow running max (re-read by
        // the fold below, i.e. multiple consumers).
        checksum = g.binary(OpKind::Xor, checksum, prod16).expect("xor");
        running_max = umax(&mut g, running_max, prod);
        if i % 3 == 2 {
            // Periodically fold the stats back into the accumulator so the
            // branches interleave with the critical MAC chain.
            let max16 = g.unary(OpKind::ZeroExt { new_width: 16 }, running_max).expect("ext");
            let folded = shr_const(&mut g, max16, 2);
            acc = g.binary(OpKind::Add, acc, folded).expect("add");
        }
    }
    let blend = g.binary(OpKind::Xor, acc, checksum).expect("xor");
    let max16 = g.unary(OpKind::ZeroExt { new_width: 16 }, running_max).expect("ext");
    let biased = g.binary(OpKind::Add, blend, max16).expect("add");
    let out = clamp(&mut g, biased, 0x7fff);
    g.set_name(out, "acc_out");
    g.set_output(out);
    g
}

/// One ML-core datapath0 opcode: `relu(a0*b0 + a1*b1)` (5000ps class).
pub fn ml_core_datapath0_opcode0() -> Graph {
    let mut g = Graph::new("ml_core_datapath0_opcode0");
    let a0 = g.param("a0", 16);
    let b0 = g.param("b0", 16);
    let a1 = g.param("a1", 16);
    let b1 = g.param("b1", 16);
    let m0 = g.binary(OpKind::Mul, a0, b0).expect("mul");
    let m1 = g.binary(OpKind::Mul, a1, b1).expect("mul");
    let sum = g.binary(OpKind::Add, m0, m1).expect("add");
    let sign = g.unary(OpKind::BitSlice { start: 15, width: 1 }, sum).expect("bit");
    let zero = g.literal_u64(0, 16);
    let out = g.select(sign, zero, sum).expect("sel");
    g.set_name(out, "relu_out");
    g.set_output(out);
    g
}

/// Opcode 1: dot-4 with rounding shift and saturation (5000ps class).
pub fn ml_core_datapath0_opcode1() -> Graph {
    let mut g = Graph::new("ml_core_datapath0_opcode1");
    let mut terms = Vec::new();
    for i in 0..4 {
        let a = g.param(format!("a{i}"), 16);
        let b = g.param(format!("b{i}"), 16);
        let m = g.binary(OpKind::Mul, a, b).expect("mul");
        terms.push(m);
    }
    let s01 = g.binary(OpKind::Add, terms[0], terms[1]).expect("add");
    let s23 = g.binary(OpKind::Add, terms[2], terms[3]).expect("add");
    let sum = g.binary(OpKind::Add, s01, s23).expect("add");
    let half = g.literal_u64(1 << 3, 16);
    let rounded = g.binary(OpKind::Add, sum, half).expect("add");
    let shifted = shr_const(&mut g, rounded, 4);
    let out = clamp(&mut g, shifted, 0xfff);
    g.set_name(out, "out");
    g.set_output(out);
    g
}

/// Opcode 2: dot-8 with a min/max reduction — the largest opcode
/// (5000ps class).
pub fn ml_core_datapath0_opcode2() -> Graph {
    let mut g = Graph::new("ml_core_datapath0_opcode2");
    let mut products = Vec::new();
    for i in 0..8 {
        let a = g.param(format!("a{i}"), 16);
        let b = g.param(format!("b{i}"), 16);
        products.push(g.binary(OpKind::Mul, a, b).expect("mul"));
    }
    // Adder tree.
    let mut layer = products.clone();
    while layer.len() > 1 {
        let mut next = Vec::new();
        for pair in layer.chunks(2) {
            next.push(if pair.len() == 2 {
                g.binary(OpKind::Add, pair[0], pair[1]).expect("add")
            } else {
                pair[0]
            });
        }
        layer = next;
    }
    let sum = layer[0];
    // Running max of the products, then blended with the sum.
    let mut best = products[0];
    for &p in &products[1..] {
        best = umax(&mut g, best, p);
    }
    let blend = g.binary(OpKind::Add, sum, best).expect("add");
    let out = clamp(&mut g, blend, 0x7fff);
    g.set_name(out, "out");
    g.set_output(out);
    g
}

/// Opcode 3: multiply-shift-round with saturation (5000ps class).
pub fn ml_core_datapath0_opcode3() -> Graph {
    let mut g = Graph::new("ml_core_datapath0_opcode3");
    let a = g.param("a", 16);
    let b = g.param("b", 16);
    let bias = g.param("bias", 16);
    let shift = g.param("shift", 4);
    let m = g.binary(OpKind::Mul, a, b).expect("mul");
    let biased = g.binary(OpKind::Add, m, bias).expect("add");
    let shift16 = g.unary(OpKind::ZeroExt { new_width: 16 }, shift).expect("ext");
    let shifted = g.binary(OpKind::Shrl, biased, shift16).expect("shr");
    let rounded = g.binary(OpKind::Add, shifted, bias).expect("add");
    let out = clamp(&mut g, rounded, 0x3fff);
    g.set_name(out, "out");
    g.set_output(out);
    g
}

/// Opcode 4: 8-way max-pool with bias (5000ps class).
pub fn ml_core_datapath0_opcode4() -> Graph {
    let mut g = Graph::new("ml_core_datapath0_opcode4");
    let inputs: Vec<NodeId> = (0..8).map(|i| g.param(format!("x{i}"), 16)).collect();
    let bias = g.param("bias", 16);
    let mut best = inputs[0];
    for &x in &inputs[1..] {
        best = umax(&mut g, best, x);
    }
    let out = g.binary(OpKind::Add, best, bias).expect("add");
    g.set_name(out, "out");
    g.set_output(out);
    g
}

/// All five opcodes computed on shared operands, selected by a 3-bit opcode
/// (5000ps class). The multiplexing mirrors the paper's
/// "ML-core datapath0 (all opcodes)" row.
pub fn ml_core_datapath0_all() -> Graph {
    let mut g = Graph::new("ml_core_datapath0_all");
    let opcode = g.param("opcode", 3);
    let a: Vec<NodeId> = (0..8).map(|i| g.param(format!("a{i}"), 16)).collect();
    let b: Vec<NodeId> = (0..8).map(|i| g.param(format!("b{i}"), 16)).collect();
    let bias = g.param("bias", 16);

    // Opcode 0: relu(dot2).
    let m0 = g.binary(OpKind::Mul, a[0], b[0]).expect("mul");
    let m1 = g.binary(OpKind::Mul, a[1], b[1]).expect("mul");
    let d2 = g.binary(OpKind::Add, m0, m1).expect("add");
    let sign = g.unary(OpKind::BitSlice { start: 15, width: 1 }, d2).expect("bit");
    let zero16 = g.literal_u64(0, 16);
    let r0 = g.select(sign, zero16, d2).expect("sel");

    // Opcode 1: dot4 >> 4.
    let m2 = g.binary(OpKind::Mul, a[2], b[2]).expect("mul");
    let m3 = g.binary(OpKind::Mul, a[3], b[3]).expect("mul");
    let s01 = g.binary(OpKind::Add, m0, m1).expect("add");
    let s23 = g.binary(OpKind::Add, m2, m3).expect("add");
    let d4 = g.binary(OpKind::Add, s01, s23).expect("add");
    let r1 = shr_const(&mut g, d4, 4);

    // Opcode 2: dot4 + max(products).
    let mut best = m0;
    for &m in &[m1, m2, m3] {
        best = umax(&mut g, best, m);
    }
    let r2 = g.binary(OpKind::Add, d4, best).expect("add");

    // Opcode 3: (a4*b4 + bias) >> 2, clamped.
    let m4 = g.binary(OpKind::Mul, a[4], b[4]).expect("mul");
    let biased = g.binary(OpKind::Add, m4, bias).expect("add");
    let sh = shr_const(&mut g, biased, 2);
    let r3 = clamp(&mut g, sh, 0x3fff);

    // Opcode 4: max-pool(a) + bias.
    let mut pool = a[0];
    for &x in &a[1..] {
        pool = umax(&mut g, pool, x);
    }
    let r4 = g.binary(OpKind::Add, pool, bias).expect("add");

    // Opcode select chain.
    let op0 = g.literal_u64(0, 3);
    let e0 = g.binary(OpKind::Eq, opcode, op0).expect("eq");
    let op1 = g.literal_u64(1, 3);
    let e1 = g.binary(OpKind::Eq, opcode, op1).expect("eq");
    let op2 = g.literal_u64(2, 3);
    let e2 = g.binary(OpKind::Eq, opcode, op2).expect("eq");
    let op3 = g.literal_u64(3, 3);
    let e3 = g.binary(OpKind::Eq, opcode, op3).expect("eq");
    let s = g.select(e3, r3, r4).expect("sel");
    let s = g.select(e2, r2, s).expect("sel");
    let s = g.select(e1, r1, s).expect("sel");
    let out = g.select(e0, r0, s).expect("sel");
    g.set_name(out, "result");
    g.set_output(out);
    g
}

/// `video_core_datapath`: two chained color-space transforms plus a 3-tap
/// filter (2500ps class).
pub fn video_core_datapath() -> Graph {
    let mut g = Graph::new("video_core_datapath");
    let r = g.param("r", 12);
    let gr = g.param("g", 12);
    let b = g.param("b", 12);
    let transform = |g: &mut Graph, x: NodeId, y: NodeId, z: NodeId, c: [u64; 3], shift: u32| {
        let cx = g.literal_u64(c[0], 12);
        let cy = g.literal_u64(c[1], 12);
        let cz = g.literal_u64(c[2], 12);
        let mx = g.binary(OpKind::Mul, x, cx).expect("mul");
        let my = g.binary(OpKind::Mul, y, cy).expect("mul");
        let mz = g.binary(OpKind::Mul, z, cz).expect("mul");
        let s1 = g.binary(OpKind::Add, mx, my).expect("add");
        let s2 = g.binary(OpKind::Add, s1, mz).expect("add");
        shr_const(g, s2, shift)
    };
    // RGB -> YCbCr-like.
    let y = transform(&mut g, r, gr, b, [66, 129, 25], 8);
    let cb = transform(&mut g, r, gr, b, [38, 74, 112], 8);
    let cr = transform(&mut g, r, gr, b, [112, 94, 18], 8);
    // Second-stage transform back (round trip) to deepen the datapath.
    let y2 = transform(&mut g, y, cb, cr, [76, 84, 29], 8);
    let cb2 = transform(&mut g, y, cb, cr, [37, 111, 51], 8);
    let cr2 = transform(&mut g, y, cb, cr, [103, 27, 91], 8);
    // 3-tap filter on the luma.
    let t0 = shl_const(&mut g, y2, 1);
    let sum = g.binary(OpKind::Add, t0, cb2).expect("add");
    let sum2 = g.binary(OpKind::Add, sum, cr2).expect("add");
    let filtered = shr_const(&mut g, sum2, 2);
    let out_y = clamp(&mut g, filtered, 0xff);
    let out_cb = clamp(&mut g, cb2, 0xff);
    let out_cr = clamp(&mut g, cr2, 0xff);
    g.set_name(out_y, "y_out");
    g.set_name(out_cb, "cb_out");
    g.set_name(out_cr, "cr_out");
    g.set_output(out_y);
    g.set_output(out_cb);
    g.set_output(out_cr);
    g
}

/// `internal_datapath`: a long mixed add/xor/rotate/select chain (2500ps
/// class) standing in for the paper's deepest proprietary design.
pub fn internal_datapath() -> Graph {
    let mut g = Graph::new("internal_datapath");
    let mut acc = g.param("seed", 10);
    let key = g.param("key", 10);
    let sel_bits = g.param("sel", 16);
    for round in 0..16u32 {
        // ARX-style round: every arm is a bijection of `acc`, so the digest
        // stays seed-sensitive across all 16 rounds (a lossy mixer would
        // collapse to a seed-independent attractor).
        let k = ror(&mut g, key, round);
        let k2 = ror(&mut g, key, round + 5);
        let added = g.binary(OpKind::Add, acc, k).expect("add");
        let rotated = ror(&mut g, added, 3);
        let mixed = g.binary(OpKind::Xor, rotated, k2).expect("xor");
        let bit = g.unary(OpKind::BitSlice { start: round % 16, width: 1 }, sel_bits).expect("bit");
        acc = g.select(bit, mixed, added).expect("sel");
    }
    g.set_name(acc, "digest");
    g.set_output(acc);
    g
}

/// `sha256`: an 8-round compression loop over 16-bit words (2500ps class).
///
/// The paper's sha256 uses full 32-bit words; 12-bit words keep each
/// individual addition comfortably inside the 2500ps clock under our
/// ripple-carry downstream model (so chained additions can merge, as they
/// can for the paper's stack) while preserving the structure (message
/// schedule, Ch/Maj, Σ rotations, long addition chains).
pub fn sha256() -> Graph {
    const ROUND_CONSTANTS: [u64; 8] =
        [0x428a, 0x7137, 0xb5c0, 0xe9b5, 0x3956, 0x59f1, 0x923f, 0xab1c];
    let mut g = Graph::new("sha256");
    let mut state: Vec<NodeId> = (0..8).map(|i| g.param(format!("h{i}"), 12)).collect();
    let mut w: Vec<NodeId> = (0..8).map(|i| g.param(format!("w{i}"), 12)).collect();
    for round in 0..8usize {
        // Message schedule extension (16-bit variant of sigma0/sigma1).
        if round >= 2 {
            let wm2 = w[round - 2];
            let wm1 = w[round - 1];
            let s0a = ror(&mut g, wm1, 7);
            let s0b = ror(&mut g, wm1, 3);
            let s0 = g.binary(OpKind::Xor, s0a, s0b).expect("xor");
            let s1a = ror(&mut g, wm2, 11);
            let s1b = ror(&mut g, wm2, 5);
            let s1 = g.binary(OpKind::Xor, s1a, s1b).expect("xor");
            let t = g.binary(OpKind::Add, w[round], s0).expect("add");
            let wn = g.binary(OpKind::Add, t, s1).expect("add");
            w[round] = wn;
        }
        let [a, b, c, d, e, f, hh, h] =
            [state[0], state[1], state[2], state[3], state[4], state[5], state[6], state[7]];
        // Sigma1(e), Ch(e, f, g).
        let e1 = ror(&mut g, e, 6);
        let e2 = ror(&mut g, e, 11);
        let e3 = ror(&mut g, e, 3);
        let x1 = g.binary(OpKind::Xor, e1, e2).expect("xor");
        let big_sigma1 = g.binary(OpKind::Xor, x1, e3).expect("xor");
        let ef = g.binary(OpKind::And, e, f).expect("and");
        let ne = g.unary(OpKind::Not, e).expect("not");
        let ng = g.binary(OpKind::And, ne, hh).expect("and");
        let ch = g.binary(OpKind::Xor, ef, ng).expect("xor");
        // t1 = h + Sigma1 + ch + K + W.
        let k = g.literal_u64(ROUND_CONSTANTS[round], 12);
        let t1a = g.binary(OpKind::Add, h, big_sigma1).expect("add");
        let t1b = g.binary(OpKind::Add, t1a, ch).expect("add");
        let t1c = g.binary(OpKind::Add, t1b, k).expect("add");
        let t1 = g.binary(OpKind::Add, t1c, w[round]).expect("add");
        // Sigma0(a), Maj(a, b, c).
        let a1 = ror(&mut g, a, 2);
        let a2 = ror(&mut g, a, 13);
        let a3 = ror(&mut g, a, 7);
        let y1 = g.binary(OpKind::Xor, a1, a2).expect("xor");
        let big_sigma0 = g.binary(OpKind::Xor, y1, a3).expect("xor");
        let ab = g.binary(OpKind::And, a, b).expect("and");
        let ac = g.binary(OpKind::And, a, c).expect("and");
        let bc = g.binary(OpKind::And, b, c).expect("and");
        let m1 = g.binary(OpKind::Xor, ab, ac).expect("xor");
        let maj = g.binary(OpKind::Xor, m1, bc).expect("xor");
        let t2 = g.binary(OpKind::Add, big_sigma0, maj).expect("add");
        let new_e = g.binary(OpKind::Add, d, t1).expect("add");
        let new_a = g.binary(OpKind::Add, t1, t2).expect("add");
        state = vec![new_a, a, b, c, new_e, e, f, hh];
    }
    // Final feed-forward additions.
    for (i, &s) in state.clone().iter().enumerate() {
        let init = g.params()[i];
        let fed = g.binary(OpKind::Add, s, init).expect("add");
        g.set_name(fed, format!("out{i}"));
        g.set_output(fed);
    }
    g
}

/// `fpexp_32`: fixed-point exponential via range reduction and a 6-term
/// Horner polynomial (5000ps class).
pub fn fpexp_32() -> Graph {
    // Q8.8 coefficients of exp(x) ~ sum x^k / k!.
    const COEFFS: [u64; 6] = [256, 256, 128, 43, 11, 2];
    let mut g = Graph::new("fpexp_32");
    let x = g.param("x", 16);
    // Range-reduce: split integer/fraction, polynomial on the fraction.
    let frac = g.unary(OpKind::BitSlice { start: 0, width: 8 }, x).expect("slice");
    let frac16 = g.unary(OpKind::ZeroExt { new_width: 16 }, frac).expect("ext");
    let mut acc = g.literal_u64(COEFFS[5], 16);
    for &c in COEFFS[..5].iter().rev() {
        let prod = g.binary(OpKind::Mul, acc, frac16).expect("mul");
        let scaled = shr_const(&mut g, prod, 8);
        let coeff = g.literal_u64(c, 16);
        acc = g.binary(OpKind::Add, scaled, coeff).expect("add");
    }
    // Scale by 2^int(x) with a dynamic shift.
    let int_part = g.unary(OpKind::BitSlice { start: 8, width: 4 }, x).expect("slice");
    let int16 = g.unary(OpKind::ZeroExt { new_width: 16 }, int_part).expect("ext");
    let out = g.binary(OpKind::Shll, acc, int16).expect("shl");
    g.set_name(out, "exp_out");
    g.set_output(out);
    g
}

/// `float32_fast_rsqrt`: the fast inverse square root (magic constant plus
/// one Newton iteration) in fixed point (5000ps class).
pub fn float32_fast_rsqrt() -> Graph {
    let mut g = Graph::new("float32_fast_rsqrt");
    let x = g.param("x", 32);
    let magic = g.literal_u64(0x5f37_59df, 32);
    let half = shr_const(&mut g, x, 1);
    let y0 = g.binary(OpKind::Sub, magic, half).expect("sub");
    // One Newton step: y = y0 * (3/2 - (x/2) * y0 * y0), in Q16 arithmetic.
    let y0sq = g.binary(OpKind::Mul, y0, y0).expect("mul");
    let y0sq_s = shr_const(&mut g, y0sq, 16);
    let xh = shr_const(&mut g, x, 1);
    let xyy = g.binary(OpKind::Mul, xh, y0sq_s).expect("mul");
    let xyy_s = shr_const(&mut g, xyy, 16);
    let three_half = g.literal_u64(3 << 15, 32);
    let delta = g.binary(OpKind::Sub, three_half, xyy_s).expect("sub");
    let y1 = g.binary(OpKind::Mul, y0, delta).expect("mul");
    let out = shr_const(&mut g, y1, 16);
    g.set_name(out, "rsqrt_out");
    g.set_output(out);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::{interp, BitVecValue};
    use std::collections::HashMap;

    #[test]
    fn all_designs_validate() {
        for build in [
            crc32,
            rrot,
            binary_divide,
            hsv2rgb,
            ml_core_datapath1,
            ml_core_datapath2,
            ml_core_datapath0_opcode0,
            ml_core_datapath0_opcode1,
            ml_core_datapath0_opcode2,
            ml_core_datapath0_opcode3,
            ml_core_datapath0_opcode4,
            ml_core_datapath0_all,
            video_core_datapath,
            internal_datapath,
            sha256,
            fpexp_32,
            float32_fast_rsqrt,
        ] {
            let g = build();
            g.validate().unwrap_or_else(|e| panic!("{}: {e}", g.name()));
            assert!(!g.outputs().is_empty(), "{} has outputs", g.name());
        }
    }

    fn eval_u64(g: &Graph, inputs: &[(&str, u64)]) -> Vec<u64> {
        let map: HashMap<String, BitVecValue> = inputs
            .iter()
            .map(|&(name, v)| {
                let id = g
                    .params()
                    .iter()
                    .copied()
                    .find(|&p| g.node(p).name.as_deref() == Some(name))
                    .unwrap_or_else(|| panic!("param {name}"));
                (name.to_string(), BitVecValue::from_u64(v, g.node(id).width))
            })
            .collect();
        interp::evaluate_outputs(g, &map)
            .expect("evaluation succeeds")
            .iter()
            .map(|v| v.to_u64())
            .collect()
    }

    #[test]
    fn binary_divide_computes_division() {
        let g = binary_divide();
        for (dividend, divisor) in [(100u64, 7u64), (255, 16), (9, 3), (5, 9)] {
            let out = eval_u64(&g, &[("dividend", dividend), ("divisor", divisor)]);
            assert_eq!(out[0], dividend / divisor, "{dividend}/{divisor}");
            assert_eq!(out[1], dividend % divisor, "{dividend}%{divisor}");
        }
    }

    #[test]
    fn crc32_matches_reference() {
        // Reference bitwise CRC-32 update over 64 data bits.
        fn reference(mut state: u32, data: u64) -> u32 {
            for i in 0..64 {
                let bit = ((data >> i) & 1) as u32;
                let x = (state ^ bit) & 1;
                state >>= 1;
                if x == 1 {
                    state ^= 0xEDB8_8320;
                }
            }
            state
        }
        let g = crc32();
        for (state, data) in [(0xffff_ffffu64, 0x1234_5678_9abc_def0u64), (0, u64::MAX)] {
            let out = eval_u64(&g, &[("state_in", state), ("data", data)]);
            assert_eq!(out[0], reference(state as u32, data) as u64);
        }
    }

    #[test]
    fn rrot_rotates() {
        // With amt = 0 the dynamic rotate is identity, so the result only
        // applies the fixed mixing; check it differs from input and is
        // deterministic.
        let g = rrot();
        let a = eval_u64(&g, &[("x", 0xdead_beef), ("y", 0), ("amt", 0)]);
        let b = eval_u64(&g, &[("x", 0xdead_beef), ("y", 0), ("amt", 0)]);
        assert_eq!(a, b);
        let c = eval_u64(&g, &[("x", 0xdead_beef), ("y", 1), ("amt", 3)]);
        assert_ne!(a, c);
    }

    #[test]
    fn relu_opcode_clamps_negative() {
        let g = ml_core_datapath0_opcode0();
        // 0x100 * 0x100 = 0x10000 -> truncated to 0 (16 bits), positive.
        let out = eval_u64(&g, &[("a0", 3), ("b0", 5), ("a1", 2), ("b1", 4)]);
        assert_eq!(out[0], 23);
        // Force a negative (MSB set) sum: 0x8000 has the sign bit.
        let out = eval_u64(&g, &[("a0", 0x8000 >> 1), ("b0", 2), ("a1", 0), ("b1", 0)]);
        assert_eq!(out[0], 0, "relu clamps MSB-set sums to zero");
    }

    #[test]
    fn maxpool_opcode_takes_maximum() {
        let g = ml_core_datapath0_opcode4();
        let mut inputs: Vec<(&str, u64)> = vec![
            ("x0", 5),
            ("x1", 99),
            ("x2", 3),
            ("x3", 0),
            ("x4", 98),
            ("x5", 1),
            ("x6", 50),
            ("x7", 2),
        ];
        inputs.push(("bias", 100));
        let out = eval_u64(&g, &inputs);
        assert_eq!(out[0], 199);
    }

    #[test]
    fn dispatch_selects_opcode() {
        let g = ml_core_datapath0_all();
        let mut base: Vec<(&str, u64)> = Vec::new();
        for i in 0..8 {
            base.push((Box::leak(format!("a{i}").into_boxed_str()), (i + 1) as u64));
            base.push((Box::leak(format!("b{i}").into_boxed_str()), 2));
        }
        base.push(("bias", 10));
        // opcode 0: relu(a0*b0 + a1*b1) = 1*2 + 2*2 = 6.
        let mut in0 = base.clone();
        in0.push(("opcode", 0));
        assert_eq!(eval_u64(&g, &in0)[0], 6);
        // opcode 4: max(a) + bias = 8 + 10 = 18.
        let mut in4 = base.clone();
        in4.push(("opcode", 4));
        assert_eq!(eval_u64(&g, &in4)[0], 18);
    }

    #[test]
    fn sha256_is_input_sensitive() {
        let g = sha256();
        let mk = |seed: u64| -> Vec<u64> {
            let mut inputs: Vec<(String, u64)> = Vec::new();
            for i in 0..8 {
                inputs.push((format!("h{i}"), seed + i));
                inputs.push((format!("w{i}"), seed * 3 + i));
            }
            let named: Vec<(&str, u64)> = inputs.iter().map(|(n, v)| (n.as_str(), *v)).collect();
            eval_u64(&g, &named)
        };
        assert_ne!(mk(1), mk(2));
        assert_eq!(mk(7), mk(7));
    }

    #[test]
    fn designs_have_reasonable_sizes() {
        assert!(crc32().len() > 300, "crc32 unrolls 64 rounds");
        assert!(sha256().len() > 250, "sha256 has 8 full rounds");
        assert!(ml_core_datapath1().len() < 30, "datapath1 is the small one");
    }
}
