//! Random DAG and design-point generators.
//!
//! [`random_dag`] builds arbitrary valid dataflow graphs for property tests
//! and fuzzing. [`design_points`] generates the family of design variants
//! behind the paper's Fig. 1 / Fig. 8 scatter plots (the authors profile
//! 6912 design points of one HLS design; we parameterize a mixed datapath
//! over width, depth and operator mix).

use isdc_ir::{Graph, NodeId, OpKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_dag`].
#[derive(Clone, Debug, PartialEq)]
pub struct RandomDagConfig {
    /// Number of operation nodes (excluding parameters).
    pub num_ops: usize,
    /// Number of parameters.
    pub num_params: usize,
    /// Candidate bit widths.
    pub widths: Vec<u32>,
    /// Include multiplications (deep logic) in the mix.
    pub with_muls: bool,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        Self { num_ops: 40, num_params: 4, widths: vec![8, 12, 16], with_muls: true }
    }
}

/// Generates a random, structurally valid dataflow graph.
///
/// Every graph validates, has at least one output, and uses only
/// width-preserving op combinations (operands are zero-extended or sliced to
/// a common width as needed).
pub fn random_dag(config: &RandomDagConfig, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(format!("random_{seed}"));
    let mut pool: Vec<NodeId> = (0..config.num_params)
        .map(|i| {
            let w = config.widths[rng.gen_range(0..config.widths.len())];
            g.param(format!("p{i}"), w)
        })
        .collect();
    for _ in 0..config.num_ops {
        let a = pool[rng.gen_range(0..pool.len())];
        let b = pool[rng.gen_range(0..pool.len())];
        let w = g.node(a).width;
        // Coerce b to a's width.
        let bw = g.node(b).width;
        let b = if bw == w {
            b
        } else if bw < w {
            g.unary(OpKind::ZeroExt { new_width: w }, b).expect("ext")
        } else {
            g.unary(OpKind::BitSlice { start: 0, width: w }, b).expect("slice")
        };
        let choice = rng.gen_range(0..if config.with_muls { 7 } else { 6 });
        let node = match choice {
            0 => g.binary(OpKind::Add, a, b).expect("add"),
            1 => g.binary(OpKind::Sub, a, b).expect("sub"),
            2 => g.binary(OpKind::Xor, a, b).expect("xor"),
            3 => g.binary(OpKind::And, a, b).expect("and"),
            4 => g.binary(OpKind::Or, a, b).expect("or"),
            5 => {
                let c = g.binary(OpKind::Ult, a, b).expect("ult");
                g.select(c, a, b).expect("sel")
            }
            _ => g.binary(OpKind::Mul, a, b).expect("mul"),
        };
        pool.push(node);
    }
    // Outputs: every value with no users.
    let sinks: Vec<NodeId> = g.node_ids().filter(|&id| g.users(id).is_empty()).collect();
    for s in sinks {
        g.set_output(s);
    }
    g
}

/// One Fig. 1 / Fig. 8 design point: a generated datapath variant.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// The graph.
    pub graph: Graph,
    /// The generator seed (for reproducibility).
    pub seed: u64,
}

/// Generates `count` design points: variants of a mixed arithmetic datapath
/// over width, chain depth and operator mix — the population whose
/// estimated-vs-measured delay scatter reproduces Fig. 1 and Fig. 8.
pub fn design_points(count: usize) -> Vec<DesignPoint> {
    (0..count as u64)
        .map(|seed| {
            let widths = match seed % 3 {
                0 => vec![8],
                1 => vec![8, 16],
                _ => vec![12, 16],
            };
            let config = RandomDagConfig {
                num_ops: 6 + (seed % 17) as usize,
                num_params: 3 + (seed % 3) as usize,
                widths,
                with_muls: seed % 4 != 0,
            };
            DesignPoint { graph: random_dag(&config, seed), seed }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_dags_validate() {
        for seed in 0..30 {
            let g = random_dag(&RandomDagConfig::default(), seed);
            g.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!g.outputs().is_empty());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let config = RandomDagConfig::default();
        assert_eq!(random_dag(&config, 7), random_dag(&config, 7));
    }

    #[test]
    fn different_seeds_differ() {
        let config = RandomDagConfig::default();
        assert_ne!(random_dag(&config, 1), random_dag(&config, 2));
    }

    #[test]
    fn mul_free_config_has_no_muls() {
        let config = RandomDagConfig { with_muls: false, ..Default::default() };
        let g = random_dag(&config, 3);
        assert_eq!(g.op_histogram().get("mul"), None);
    }

    #[test]
    fn design_points_cover_requested_count() {
        let points = design_points(25);
        assert_eq!(points.len(), 25);
        for p in &points {
            p.graph.validate().expect("valid");
        }
    }
}
