//! # isdc-benchsuite — the evaluation workloads
//!
//! The 17 benchmarks of the paper's Table I (as faithful synthetic
//! equivalents — see the crate-level notes in [`designs`]), plus random DAG
//! and design-point generators for property tests and the Fig. 1 / Fig. 8
//! sweeps.
//!
//! # Examples
//!
//! ```
//! let suite = isdc_benchsuite::suite();
//! assert_eq!(suite.len(), 17);
//! let crc = suite.iter().find(|b| b.name == "crc32").unwrap();
//! assert_eq!(crc.clock_period_ps, 2500.0);
//! crc.graph.validate().unwrap();
//! ```

#![warn(missing_docs)]

pub mod designs;
mod random;

pub use random::{design_points, random_dag, DesignPoint, RandomDagConfig};

use isdc_ir::Graph;

/// One Table I benchmark: a design plus its target clock period.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// The benchmark name, matching the paper's row label.
    pub name: &'static str,
    /// The dataflow graph to schedule.
    pub graph: Graph,
    /// Target clock period in picoseconds (2500 by default; 5000 when an
    /// operation's individual delay exceeds 2500 — the paper's rule).
    pub clock_period_ps: f64,
}

/// The full 17-benchmark suite in the paper's Table I order.
pub fn suite() -> Vec<Benchmark> {
    let bench = |name: &'static str, graph: Graph, clock_period_ps: f64| Benchmark {
        name,
        graph,
        clock_period_ps,
    };
    vec![
        bench("ml_core_datapath1", designs::ml_core_datapath1(), 2500.0),
        bench("ml_core_datapath0_opcode4", designs::ml_core_datapath0_opcode4(), 5000.0),
        bench("rrot", designs::rrot(), 2500.0),
        bench("ml_core_datapath0_opcode3", designs::ml_core_datapath0_opcode3(), 5000.0),
        bench("binary_divide", designs::binary_divide(), 2500.0),
        bench("hsv2rgb", designs::hsv2rgb(), 5000.0),
        bench("ml_core_datapath0_opcode0", designs::ml_core_datapath0_opcode0(), 5000.0),
        bench("crc32", designs::crc32(), 2500.0),
        bench("ml_core_datapath0_opcode1", designs::ml_core_datapath0_opcode1(), 5000.0),
        bench("ml_core_datapath0_opcode2", designs::ml_core_datapath0_opcode2(), 5000.0),
        bench("ml_core_datapath0_all", designs::ml_core_datapath0_all(), 5000.0),
        bench("ml_core_datapath2", designs::ml_core_datapath2(), 2500.0),
        bench("float32_fast_rsqrt", designs::float32_fast_rsqrt(), 5000.0),
        bench("video_core_datapath", designs::video_core_datapath(), 2500.0),
        bench("internal_datapath", designs::internal_datapath(), 2500.0),
        bench("sha256", designs::sha256(), 2500.0),
        bench("fpexp_32", designs::fpexp_32(), 5000.0),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table_one() {
        let suite = suite();
        assert_eq!(suite.len(), 17);
        let names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        assert_eq!(names[0], "ml_core_datapath1");
        assert_eq!(names[15], "sha256");
        for b in &suite {
            b.graph.validate().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(b.clock_period_ps == 2500.0 || b.clock_period_ps == 5000.0);
        }
    }

    #[test]
    fn names_are_unique() {
        let suite = suite();
        let mut names: Vec<&str> = suite.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }
}
