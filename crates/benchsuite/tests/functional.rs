//! Functional checks on the benchmark generators: beyond validating, the
//! datapaths must compute what their names claim, so scheduling results
//! describe meaningful circuits.

use isdc_benchsuite::designs;
use isdc_ir::{interp, BitVecValue, Graph};
use std::collections::HashMap;

fn eval(g: &Graph, inputs: &[(&str, u64)]) -> Vec<u64> {
    let map: HashMap<String, BitVecValue> = inputs
        .iter()
        .map(|&(name, v)| {
            let id = g
                .params()
                .iter()
                .copied()
                .find(|&p| g.node(p).name.as_deref() == Some(name))
                .unwrap_or_else(|| panic!("param {name} in {}", g.name()));
            (name.to_string(), BitVecValue::from_u64(v, g.node(id).width))
        })
        .collect();
    interp::evaluate_outputs(g, &map).expect("evaluates").iter().map(|v| v.to_u64()).collect()
}

#[test]
fn hsv2rgb_grey_axis() {
    // With zero saturation, all ramp factors collapse and R = G = B ~ v.
    let g = designs::hsv2rgb();
    for (h, v) in [(10u64, 100u64), (120, 200), (200, 50)] {
        let out = eval(&g, &[("h", h), ("s", 0), ("v", v)]);
        let spread = out.iter().max().unwrap() - out.iter().min().unwrap();
        assert!(
            spread <= 2,
            "h={h} v={v}: channels {out:?} must agree within rounding on the grey axis"
        );
    }
}

#[test]
fn hsv2rgb_outputs_are_clamped_bytes() {
    let g = designs::hsv2rgb();
    for h in (0..250).step_by(13) {
        let out = eval(&g, &[("h", h), ("s", 255), ("v", 255)]);
        for (i, &c) in out.iter().enumerate() {
            assert!(c <= 0xff, "h={h}: channel {i} = {c} exceeds a byte");
        }
    }
}

#[test]
fn ml_core_datapath1_is_a_clamped_mac() {
    let g = designs::ml_core_datapath1();
    // (a*b + c) >> 2 clamped to 0x3ff, in 12-bit arithmetic.
    for (a, b, c) in [(3u64, 5u64, 7u64), (100, 30, 50), (0, 0, 4095)] {
        let expected = (((a * b + c) & 0xfff) >> 2).min(0x3ff);
        assert_eq!(eval(&g, &[("a", a), ("b", b), ("c", c)])[0], expected);
    }
}

#[test]
fn ml_core_datapath2_accumulates_products() {
    let g = designs::ml_core_datapath2();
    // All-zero weights: products vanish, max stays max_in, checksum stays
    // csum_in; output = clamp((acc_in + max folds) ^ csum ... simplest
    // all-zero case: everything zero.
    let mut inputs: Vec<(String, u64)> =
        vec![("acc_in".into(), 0), ("csum_in".into(), 0), ("max_in".into(), 0)];
    for i in 0..8 {
        inputs.push((format!("a{i}"), 0));
        inputs.push((format!("w{i}"), 0));
    }
    let named: Vec<(&str, u64)> = inputs.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    assert_eq!(eval(&g, &named)[0], 0);

    // One nonzero product must show up in the accumulator.
    let mut one: Vec<(String, u64)> = inputs.clone();
    one[3] = ("a0".into(), 3); // a0
    one[4] = ("w0".into(), 4); // w0
    let named: Vec<(&str, u64)> = one.iter().map(|(n, v)| (n.as_str(), *v)).collect();
    let out = eval(&g, &named)[0];
    assert!(out > 0, "a single 3*4 product must propagate (got {out})");
}

#[test]
fn fpexp_is_monotone_on_fraction() {
    // exp is increasing; the polynomial approximation must be monotone over
    // the fractional range at fixed integer part.
    let g = designs::fpexp_32();
    // Stay below the Q8.8 overflow knee: 16-bit truncation wraps for large
    // fractions, which is a property of the synthetic datapath, not a bug.
    let mut prev = 0u64;
    for frac in (0..=119).step_by(17) {
        let out = eval(&g, &[("x", frac)])[0];
        assert!(out >= prev, "exp approx not monotone at frac={frac}: {out} < {prev}");
        prev = out;
    }
}

#[test]
fn fpexp_scales_by_powers_of_two() {
    // Raising the integer part by 1 doubles the output (left shift), until
    // the 16-bit result saturates by truncation.
    let g = designs::fpexp_32();
    let base = eval(&g, &[("x", 0)])[0];
    let twice = eval(&g, &[("x", 1 << 8)])[0];
    assert_eq!(twice, (base << 1) & 0xffff);
}

#[test]
fn rsqrt_is_deterministic_and_input_sensitive() {
    // The magic-constant iteration is transplanted from float32 bit tricks
    // into plain fixed point, so absolute accuracy is not meaningful — but
    // the datapath must be a deterministic, input-sensitive function with
    // nonzero output on ordinary inputs.
    let g = designs::float32_fast_rsqrt();
    let a = eval(&g, &[("x", 1 << 16)]);
    let b = eval(&g, &[("x", 1 << 18)]);
    let c = eval(&g, &[("x", 1 << 16)]);
    assert_eq!(a, c);
    assert_ne!(a, b);
    assert!(a[0] > 0);
}

#[test]
fn internal_datapath_is_a_permutation_like_mixer() {
    // Different seeds must give different digests; equal inputs equal ones.
    let g = designs::internal_datapath();
    let a = eval(&g, &[("seed", 1), ("key", 99), ("sel", 0xabcd)]);
    let b = eval(&g, &[("seed", 2), ("key", 99), ("sel", 0xabcd)]);
    let c = eval(&g, &[("seed", 1), ("key", 99), ("sel", 0xabcd)]);
    assert_ne!(a, b);
    assert_eq!(a, c);
}

#[test]
fn rrot_amt_zero_differs_from_amt_nonzero() {
    let g = designs::rrot();
    let base = eval(&g, &[("x", 0x1234_5678), ("y", 0x9abc_def0), ("amt", 0)]);
    let rotated = eval(&g, &[("x", 0x1234_5678), ("y", 0x9abc_def0), ("amt", 5)]);
    assert_ne!(base, rotated);
}

#[test]
fn opcode3_saturates() {
    let g = designs::ml_core_datapath0_opcode3();
    // Large product with zero shift: must clamp to 0x3fff.
    let out = eval(&g, &[("a", 0x00ff), ("b", 0x00ff), ("bias", 0), ("shift", 0)]);
    assert!(out[0] <= 0x3fff);
}

#[test]
fn binary_divide_against_exhaustive_reference() {
    let g = designs::binary_divide();
    for dividend in (0..=255).step_by(23) {
        for divisor in (1..=255).step_by(31) {
            let out = eval(&g, &[("dividend", dividend), ("divisor", divisor)]);
            assert_eq!(out[0], dividend / divisor, "{dividend} / {divisor}");
            assert_eq!(out[1], dividend % divisor, "{dividend} % {divisor}");
        }
    }
}
