//! Property-based tests for the difference-constraint solver: feasibility
//! certificates, optimality against brute force, and structural invariants.

use isdc_sdc::{minimize, DifferenceSystem, SolveError, VarId};
use proptest::prelude::*;

/// A random system description: `(num_vars, edges)` where each edge is
/// `(u, v, bound)`.
fn system_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, i64)>)> {
    (2usize..6).prop_flat_map(|n| {
        let edge = (0..n, 0..n, -4i64..5).prop_filter("self loops excluded", |(u, v, _)| u != v);
        (Just(n), prop::collection::vec(edge, 0..10))
    })
}

fn build(n: usize, edges: &[(usize, usize, i64)]) -> DifferenceSystem {
    let mut sys = DifferenceSystem::new(n);
    for &(u, v, b) in edges {
        sys.add_constraint(VarId(u as u32), VarId(v as u32), b);
    }
    sys
}

fn brute_force(sys: &DifferenceSystem, weights: &[i64], lo: i64, hi: i64) -> Option<i64> {
    let n = sys.num_vars();
    let mut best: Option<i64> = None;
    let mut point = vec![lo; n];
    loop {
        if sys.first_violation(&point).is_none() {
            let obj: i64 = weights.iter().zip(&point).map(|(&w, &x)| w * x).sum();
            best = Some(best.map_or(obj, |b: i64| b.min(obj)));
        }
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            point[i] += 1;
            if point[i] <= hi {
                break;
            }
            point[i] = lo;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The feasibility solver either returns a satisfying assignment or an
    /// honest negative-cycle certificate.
    #[test]
    fn feasibility_or_certificate((n, edges) in system_strategy()) {
        let sys = build(n, &edges);
        match sys.solve_feasible() {
            Ok(solution) => {
                prop_assert_eq!(sys.first_violation(&solution), None);
            }
            Err(SolveError::Infeasible { cycle }) => {
                // Certificate: consecutive constraints chain and the bounds
                // sum negative.
                prop_assert!(!cycle.is_empty());
                let cs = sys.constraints();
                let total: i64 = cycle.iter().map(|&i| cs[i].bound).sum();
                prop_assert!(total < 0, "cycle bound sum {} must be negative", total);
                // The reversed walk lists constraints in forward order:
                // each constraint's u meets the next one's v, and the list
                // closes back on itself.
                for w in cycle.windows(2) {
                    prop_assert_eq!(cs[w[0]].u, cs[w[1]].v);
                }
                let first = cs[cycle[0]];
                let last = cs[*cycle.last().unwrap()];
                prop_assert_eq!(first.v, last.u);
            }
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
    }

    /// On solvable instances the LP optimum matches exhaustive enumeration.
    #[test]
    fn optimum_matches_brute_force(
        (n, edges) in system_strategy(),
        raw_weights in prop::collection::vec(-2i64..3, 6),
    ) {
        let sys = build(n, &edges);
        let mut weights: Vec<i64> = raw_weights.into_iter().take(n).collect();
        weights.resize(n, 0);
        let total: i64 = weights.iter().sum();
        weights[0] -= total;
        match minimize(&sys, &weights) {
            Ok(sol) => {
                prop_assert_eq!(sys.first_violation(&sol.assignment), None);
                let brute = brute_force(&sys, &weights, -8, 8)
                    .expect("solver found a solution so brute force must too");
                prop_assert_eq!(sol.objective, brute);
            }
            Err(SolveError::Infeasible { .. }) => {
                prop_assert_eq!(brute_force(&sys, &weights, -8, 8), None);
            }
            Err(SolveError::Unbounded) => {
                // Widening the box must keep improving the optimum.
                let narrow = brute_force(&sys, &weights, -4, 4);
                let wide = brute_force(&sys, &weights, -8, 8);
                if let (Some(a), Some(b)) = (narrow, wide) {
                    prop_assert!(b < a, "claimed unbounded but optimum stable at {}", a);
                }
            }
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
    }

    /// Solutions are translation-invariant: shifting every variable keeps
    /// feasibility.
    #[test]
    fn feasible_solutions_are_translation_invariant(
        (n, edges) in system_strategy(),
        shift in -100i64..100,
    ) {
        let sys = build(n, &edges);
        if let Ok(solution) = sys.solve_feasible() {
            let shifted: Vec<i64> = solution.iter().map(|x| x + shift).collect();
            prop_assert_eq!(sys.first_violation(&shifted), None);
        }
    }

    /// Adding a redundant (implied) constraint never changes the optimum.
    #[test]
    fn implied_constraints_are_free((n, edges) in system_strategy()) {
        let sys = build(n, &edges);
        let mut weights = vec![0i64; n];
        weights[0] = -1;
        weights[n - 1] = 1;
        let base = minimize(&sys, &weights);
        if let Ok(sol) = base {
            // x_u - x_v <= (actual difference + 1) is satisfied by the
            // optimum and cannot cut it off.
            let mut relaxed = build(n, &edges);
            relaxed.add_constraint(
                VarId(0),
                VarId(n as u32 - 1),
                sol.assignment[0] - sol.assignment[n - 1] + 1,
            );
            let again = minimize(&relaxed, &weights).expect("still solvable");
            prop_assert_eq!(again.objective, sol.objective);
        }
    }
}
