//! Property-based tests for the difference-constraint solver: feasibility
//! certificates, optimality against brute force, structural invariants, and
//! the batched-drain bit-identity guarantee.

use isdc_sdc::{minimize, DifferenceSystem, IncrementalSolver, SolveError, VarId};
use proptest::prelude::*;

/// A random system description: `(num_vars, edges)` where each edge is
/// `(u, v, bound)`.
fn system_strategy() -> impl Strategy<Value = (usize, Vec<(usize, usize, i64)>)> {
    (2usize..6).prop_flat_map(|n| {
        let edge = (0..n, 0..n, -4i64..5).prop_filter("self loops excluded", |(u, v, _)| u != v);
        (Just(n), prop::collection::vec(edge, 0..10))
    })
}

fn build(n: usize, edges: &[(usize, usize, i64)]) -> DifferenceSystem {
    let mut sys = DifferenceSystem::new(n);
    for &(u, v, b) in edges {
        sys.add_constraint(VarId(u as u32), VarId(v as u32), b);
    }
    sys
}

fn brute_force(sys: &DifferenceSystem, weights: &[i64], lo: i64, hi: i64) -> Option<i64> {
    let n = sys.num_vars();
    let mut best: Option<i64> = None;
    let mut point = vec![lo; n];
    loop {
        if sys.first_violation(&point).is_none() {
            let obj: i64 = weights.iter().zip(&point).map(|(&w, &x)| w * x).sum();
            best = Some(best.map_or(obj, |b: i64| b.min(obj)));
        }
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            point[i] += 1;
            if point[i] <= hi {
                break;
            }
            point[i] = lo;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The feasibility solver either returns a satisfying assignment or an
    /// honest negative-cycle certificate.
    #[test]
    fn feasibility_or_certificate((n, edges) in system_strategy()) {
        let sys = build(n, &edges);
        match sys.solve_feasible() {
            Ok(solution) => {
                prop_assert_eq!(sys.first_violation(&solution), None);
            }
            Err(SolveError::Infeasible { cycle }) => {
                // Certificate: consecutive constraints chain and the bounds
                // sum negative.
                prop_assert!(!cycle.is_empty());
                let cs = sys.constraints();
                let total: i64 = cycle.iter().map(|&i| cs[i].bound).sum();
                prop_assert!(total < 0, "cycle bound sum {} must be negative", total);
                // The reversed walk lists constraints in forward order:
                // each constraint's u meets the next one's v, and the list
                // closes back on itself.
                for w in cycle.windows(2) {
                    prop_assert_eq!(cs[w[0]].u, cs[w[1]].v);
                }
                let first = cs[cycle[0]];
                let last = cs[*cycle.last().unwrap()];
                prop_assert_eq!(first.v, last.u);
            }
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
    }

    /// On solvable instances the LP optimum matches exhaustive enumeration.
    #[test]
    fn optimum_matches_brute_force(
        (n, edges) in system_strategy(),
        raw_weights in prop::collection::vec(-2i64..3, 6),
    ) {
        let sys = build(n, &edges);
        let mut weights: Vec<i64> = raw_weights.into_iter().take(n).collect();
        weights.resize(n, 0);
        let total: i64 = weights.iter().sum();
        weights[0] -= total;
        match minimize(&sys, &weights) {
            Ok(sol) => {
                prop_assert_eq!(sys.first_violation(&sol.assignment), None);
                let brute = brute_force(&sys, &weights, -8, 8)
                    .expect("solver found a solution so brute force must too");
                prop_assert_eq!(sol.objective, brute);
            }
            Err(SolveError::Infeasible { .. }) => {
                prop_assert_eq!(brute_force(&sys, &weights, -8, 8), None);
            }
            Err(SolveError::Unbounded) => {
                // Widening the box must keep improving the optimum.
                let narrow = brute_force(&sys, &weights, -4, 4);
                let wide = brute_force(&sys, &weights, -8, 8);
                if let (Some(a), Some(b)) = (narrow, wide) {
                    prop_assert!(b < a, "claimed unbounded but optimum stable at {}", a);
                }
            }
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
    }

    /// Solutions are translation-invariant: shifting every variable keeps
    /// feasibility.
    #[test]
    fn feasible_solutions_are_translation_invariant(
        (n, edges) in system_strategy(),
        shift in -100i64..100,
    ) {
        let sys = build(n, &edges);
        if let Ok(solution) = sys.solve_feasible() {
            let shifted: Vec<i64> = solution.iter().map(|x| x + shift).collect();
            prop_assert_eq!(sys.first_violation(&shifted), None);
        }
    }

    /// The batched multi-source drain is bit-identical to the retained
    /// serial reference drain — across the initial solve and arbitrary
    /// mixed relax/tighten bound sequences (relaxations re-drain warm in
    /// both; tightenings force both onto the cold path). Also pinned
    /// against a from-scratch `minimize` at every step.
    #[test]
    fn batched_drain_matches_reference_drain(
        n in 3usize..8,
        hidden in prop::collection::vec(-8i64..8, 8),
        edges in prop::collection::vec((0usize..8, 0usize..8, 0i64..3), 4..24),
        raw_weights in prop::collection::vec(-2i64..3, 8),
        deltas in prop::collection::vec((0usize..24, -2i64..4), 1..12),
    ) {
        // Feasible by construction relative to the hidden point.
        let mut sys = DifferenceSystem::new(n);
        for &(u, v, slack) in &edges {
            let (u, v) = (u % n, v % n);
            if u == v {
                continue;
            }
            sys.add_constraint(
                VarId(u as u32),
                VarId(v as u32),
                hidden[u] - hidden[v] + slack,
            );
        }
        if sys.constraints().is_empty() {
            return; // degenerate draw: nothing to relax or tighten
        }
        let mut weights: Vec<i64> = raw_weights.into_iter().take(n).collect();
        weights.resize(n, 0);
        let total: i64 = weights.iter().sum();
        weights[0] -= total;

        let mut batched = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        let mut serial = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        serial.use_reference_drain(true);
        prop_assert_eq!(batched.solve(), serial.solve(), "initial solves diverged");

        let m = sys.constraints().len();
        for (step, &(ci, delta)) in deltas.iter().enumerate() {
            let ci = ci % m;
            let bound = sys.constraints()[ci].bound + delta;
            batched.update_bound(ci, bound);
            serial.update_bound(ci, bound);
            sys.set_bound(ci, bound);
            let b = batched.solve();
            let s = serial.solve();
            prop_assert_eq!(&b, &s, "step {}: batched vs serial diverged", step);
            prop_assert_eq!(
                b.is_ok(), minimize(&sys, &weights).is_ok(),
                "step {}: solvability changed under the drain", step
            );
            if let Ok(sol) = b {
                prop_assert_eq!(
                    sol, minimize(&sys, &weights).unwrap(),
                    "step {}: incremental diverged from a cold minimize", step
                );
            }
        }
    }

    /// Adding a redundant (implied) constraint never changes the optimum.
    #[test]
    fn implied_constraints_are_free((n, edges) in system_strategy()) {
        let sys = build(n, &edges);
        let mut weights = vec![0i64; n];
        weights[0] = -1;
        weights[n - 1] = 1;
        let base = minimize(&sys, &weights);
        if let Ok(sol) = base {
            // x_u - x_v <= (actual difference + 1) is satisfied by the
            // optimum and cannot cut it off.
            let mut relaxed = build(n, &edges);
            relaxed.add_constraint(
                VarId(0),
                VarId(n as u32 - 1),
                sol.assignment[0] - sol.assignment[n - 1] + 1,
            );
            let again = minimize(&relaxed, &weights).expect("still solvable");
            prop_assert_eq!(again.objective, sol.objective);
        }
    }
}

// Large systems: above the drain's small-system cutoff, so warm re-solves
// actually run the batched multi-source blocking-flow phases (small draws
// route to the single-source finisher). Fewer cases — each one solves a
// few-hundred-constraint LP three ways per step.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Same bit-identity property as `batched_drain_matches_reference_drain`,
    /// on systems large enough (>= 128 vars) to exercise the multi-source
    /// batched phases themselves.
    #[test]
    fn batched_drain_matches_reference_drain_large(
        n in 128usize..150,
        seed in any::<u64>(),
        deltas in prop::collection::vec((0usize..4096, -2i64..4), 1..8),
    ) {
        let mut state = seed;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        // Feasible by construction relative to a hidden point; a dependency
        // chain keeps the weighted endpoints mutually constrained.
        let hidden: Vec<i64> = (0..n).map(|_| rng() % 16).collect();
        let mut sys = DifferenceSystem::new(n);
        for i in 1..n {
            sys.add_constraint(
                VarId(i as u32 - 1),
                VarId(i as u32),
                hidden[i - 1] - hidden[i] + (rng() % 3).abs(),
            );
        }
        for _ in 0..3 * n {
            let u = rng().unsigned_abs() as usize % n;
            let v = rng().unsigned_abs() as usize % n;
            if u == v {
                continue;
            }
            sys.add_constraint(
                VarId(u as u32),
                VarId(v as u32),
                hidden[u] - hidden[v] + (rng() % 3).abs(),
            );
        }
        // Many-sourced balanced objective so warm re-drains expose bulk
        // excess across the whole system.
        let mut weights: Vec<i64> = (0..n).map(|_| rng() % 3).collect();
        let total: i64 = weights.iter().sum();
        weights[0] -= total;

        let mut batched = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        let mut serial = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        serial.use_reference_drain(true);
        prop_assert_eq!(batched.solve(), serial.solve(), "initial solves diverged");

        let m = sys.constraints().len();
        for (step, &(ci, delta)) in deltas.iter().enumerate() {
            let ci = ci % m;
            let bound = sys.constraints()[ci].bound + delta;
            batched.update_bound(ci, bound);
            serial.update_bound(ci, bound);
            sys.set_bound(ci, bound);
            let b = batched.solve();
            let s = serial.solve();
            prop_assert_eq!(&b, &s, "step {}: batched vs serial diverged", step);
            if let Ok(sol) = b {
                prop_assert_eq!(
                    sol, minimize(&sys, &weights).unwrap(),
                    "step {}: incremental diverged from a cold minimize", step
                );
            }
        }
    }
}
