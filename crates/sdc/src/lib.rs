//! # isdc-sdc — system-of-difference-constraints scheduling solver
//!
//! The LP machinery under both the baseline SDC scheduler and ISDC:
//!
//! - [`DifferenceSystem`] — constraints of the form `x_u - x_v <= b`, with
//!   Bellman-Ford feasibility and negative-cycle certificates;
//! - [`minimize`] — exact optimization of a linear objective over such a
//!   system via the min-cost-flow dual (successive shortest paths with
//!   potentials). Solutions are provably optimal and integral, matching the
//!   total-unimodularity guarantee that SDC scheduling relies on (Cong &
//!   Zhang, DAC'06; paper §II). Returned optima are *canonical* — repeated
//!   solves of equivalent systems are bit-identical;
//! - [`IncrementalSolver`] — the same LP solved repeatedly with persisted
//!   min-cost-flow state: bound relaxations (the only deltas the ISDC loop
//!   produces, by Alg. 1's monotonicity) re-solve via warm-started
//!   successive shortest paths, anything else falls back to the cold path.
//!
//! This crate is deliberately independent of the IR: it can schedule
//! anything expressible as difference constraints.
//!
//! # Examples
//!
//! ```
//! use isdc_sdc::{minimize, DifferenceSystem, VarId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two ops, dependency x0 <= x1, timing forces them one cycle apart,
//! // and we minimize the span x1 - x0.
//! let mut sys = DifferenceSystem::new(2);
//! sys.add_constraint(VarId(0), VarId(1), -1); // x0 - x1 <= -1
//! let sol = minimize(&sys, &[-1, 1])?;
//! assert_eq!(sol.objective, 1); // exactly one cycle apart
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod incremental;
mod mcf;
mod system;

pub use incremental::IncrementalSolver;
pub use mcf::{minimize, DrainStats, LpSolution};
pub use system::{Constraint, DifferenceSystem, SolveError, VarId};
