//! Systems of difference constraints and their feasibility.
//!
//! A difference constraint has the form `x_u - x_v <= b` with integer `b`.
//! The constraint matrix of such a system is totally unimodular, so (as the
//! paper's §II recalls, citing Cong & Zhang) feasible systems always admit
//! integral solutions — found here with Bellman-Ford shortest paths from a
//! virtual source.

use std::fmt;

/// A scheduling variable (one per IR operation in SDC scheduling).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable as a dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// One constraint `x_u - x_v <= bound`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Constraint {
    /// The positively-signed variable.
    pub u: VarId,
    /// The negatively-signed variable.
    pub v: VarId,
    /// The integer bound.
    pub bound: i64,
}

/// Errors from solving a difference-constraint system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The constraints contradict each other; the payload is a certificate —
    /// a cycle of constraint indices whose bounds sum to a negative value.
    Infeasible {
        /// Indices into the system's constraint list forming the negative cycle.
        cycle: Vec<usize>,
    },
    /// The optimization objective can be driven to negative infinity.
    Unbounded,
    /// Objective weights do not sum to zero, so the LP dual has no feasible
    /// flow (the objective is unbounded for any feasible system).
    UnbalancedObjective {
        /// The nonzero weight sum.
        weight_sum: i64,
    },
    /// The solve was cancelled by an installed `isdc_cancel` deadline or
    /// token before completing. Partial drain state is discarded by the
    /// caller, so this never poisons warm solver state.
    Cancelled,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible { cycle } => {
                write!(f, "infeasible system (negative cycle through {} constraints)", cycle.len())
            }
            SolveError::Unbounded => f.write_str("objective is unbounded below"),
            SolveError::UnbalancedObjective { weight_sum } => {
                write!(f, "objective weights sum to {weight_sum}, expected 0")
            }
            SolveError::Cancelled => f.write_str("solve cancelled (deadline exceeded)"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A system of difference constraints over `num_vars` variables.
///
/// # Examples
///
/// ```
/// use isdc_sdc::{DifferenceSystem, VarId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sys = DifferenceSystem::new(2);
/// // x0 - x1 <= -1  (x0 at least one cycle before x1)
/// sys.add_constraint(VarId(0), VarId(1), -1);
/// let solution = sys.solve_feasible()?;
/// assert!(solution[0] - solution[1] <= -1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct DifferenceSystem {
    num_vars: usize,
    constraints: Vec<Constraint>,
}

impl DifferenceSystem {
    /// Creates a system over `num_vars` variables and no constraints.
    pub fn new(num_vars: usize) -> Self {
        Self { num_vars, constraints: Vec::new() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds `x_u - x_v <= bound` and returns the constraint index.
    ///
    /// # Panics
    ///
    /// Panics if either variable is out of range.
    pub fn add_constraint(&mut self, u: VarId, v: VarId, bound: i64) -> usize {
        assert!(
            u.index() < self.num_vars && v.index() < self.num_vars,
            "variable out of range (num_vars = {})",
            self.num_vars
        );
        self.constraints.push(Constraint { u, v, bound });
        self.constraints.len() - 1
    }

    /// Replaces the bound of constraint `index`, returning the previous
    /// bound. The constraint's variable pair is immutable — incremental
    /// solvers rely on the arc topology staying fixed.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_bound(&mut self, index: usize, bound: i64) -> i64 {
        let old = self.constraints[index].bound;
        self.constraints[index].bound = bound;
        old
    }

    /// Checks a candidate assignment against every constraint, returning the
    /// index of the first violated constraint, if any.
    pub fn first_violation(&self, assignment: &[i64]) -> Option<usize> {
        self.constraints
            .iter()
            .position(|c| assignment[c.u.index()] - assignment[c.v.index()] > c.bound)
    }

    /// Finds an integral feasible assignment via Bellman-Ford, or a negative
    /// cycle certificate.
    ///
    /// The solution returned is the canonical shortest-path solution: each
    /// variable takes its shortest distance from a virtual source connected
    /// to every variable with weight 0. Solutions are translation-invariant
    /// (adding a constant to every variable preserves feasibility).
    ///
    /// # Errors
    ///
    /// [`SolveError::Infeasible`] when constraints contradict.
    pub fn solve_feasible(&self) -> Result<Vec<i64>, SolveError> {
        // Edge for constraint x_u - x_v <= b: v -> u with weight b
        // (dist[u] <= dist[v] + b).
        let n = self.num_vars;
        let mut dist = vec![0i64; n]; // virtual source: all start at 0
        let mut pred: Vec<Option<usize>> = vec![None; n]; // predecessor constraint
        let mut updated_node: Option<usize> = None;
        for _round in 0..n {
            updated_node = None;
            for (ci, c) in self.constraints.iter().enumerate() {
                let cand = dist[c.v.index()].saturating_add(c.bound);
                if cand < dist[c.u.index()] {
                    dist[c.u.index()] = cand;
                    pred[c.u.index()] = Some(ci);
                    updated_node = Some(c.u.index());
                }
            }
            if updated_node.is_none() {
                break;
            }
        }
        if let Some(start) = updated_node {
            // A node relaxed in round n lies on or reaches back to a negative
            // cycle; walk predecessors n times to land on the cycle, then
            // collect it.
            let mut node = start;
            for _ in 0..n {
                let ci = pred[node].expect("relaxed node has a predecessor");
                node = self.constraints[ci].v.index();
            }
            let mut cycle = Vec::new();
            let cycle_start = node;
            loop {
                let ci = pred[node].expect("cycle node has a predecessor");
                cycle.push(ci);
                node = self.constraints[ci].v.index();
                if node == cycle_start {
                    break;
                }
            }
            cycle.reverse();
            return Err(SolveError::Infeasible { cycle });
        }
        Ok(dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_system_is_feasible() {
        let sys = DifferenceSystem::new(3);
        let sol = sys.solve_feasible().unwrap();
        assert_eq!(sol, vec![0, 0, 0]);
    }

    #[test]
    fn chain_constraints() {
        // x0 <= x1 - 1 <= x2 - 2
        let mut sys = DifferenceSystem::new(3);
        sys.add_constraint(VarId(0), VarId(1), -1);
        sys.add_constraint(VarId(1), VarId(2), -1);
        let sol = sys.solve_feasible().unwrap();
        assert!(sys.first_violation(&sol).is_none());
        assert!(sol[0] < sol[1] && sol[1] < sol[2]);
    }

    #[test]
    fn detects_infeasibility_with_certificate() {
        // x0 - x1 <= -1 and x1 - x0 <= 0 sum to -1 < 0: contradiction.
        let mut sys = DifferenceSystem::new(2);
        let c0 = sys.add_constraint(VarId(0), VarId(1), -1);
        let c1 = sys.add_constraint(VarId(1), VarId(0), 0);
        let err = sys.solve_feasible().unwrap_err();
        let SolveError::Infeasible { cycle } = err else { panic!("expected infeasible") };
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![c0, c1]);
        // Certificate property: bounds around the cycle sum negative and the
        // cycle is closed.
        let sum: i64 = cycle.iter().map(|&i| sys.constraints()[i].bound).sum();
        assert!(sum < 0);
        for w in cycle.windows(2) {
            assert_eq!(sys.constraints()[w[0]].u, sys.constraints()[w[1]].v);
        }
        let first = sys.constraints()[cycle[0]];
        let last = sys.constraints()[*cycle.last().unwrap()];
        assert_eq!(first.v, last.u);
    }

    #[test]
    fn longer_negative_cycle() {
        let mut sys = DifferenceSystem::new(4);
        sys.add_constraint(VarId(0), VarId(1), 2);
        sys.add_constraint(VarId(1), VarId(2), -3);
        sys.add_constraint(VarId(2), VarId(0), 0);
        sys.add_constraint(VarId(3), VarId(0), 5); // unrelated
        let err = sys.solve_feasible().unwrap_err();
        let SolveError::Infeasible { cycle } = err else { panic!("expected infeasible") };
        let sum: i64 = cycle.iter().map(|&i| sys.constraints()[i].bound).sum();
        assert!(sum < 0);
    }

    #[test]
    fn feasible_with_positive_cycle() {
        // Cycle with nonnegative sum is fine.
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(0), VarId(1), 1);
        sys.add_constraint(VarId(1), VarId(0), -1);
        let sol = sys.solve_feasible().unwrap();
        assert!(sys.first_violation(&sol).is_none());
        assert_eq!(sol[1] - sol[0], -1); // the tight constraint is honored
    }

    #[test]
    fn first_violation_reports_index() {
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(0), VarId(1), -1);
        assert_eq!(sys.first_violation(&[0, 0]), Some(0));
        assert_eq!(sys.first_violation(&[0, 5]), None);
    }

    #[test]
    #[should_panic(expected = "variable out of range")]
    fn out_of_range_variable_rejected() {
        let mut sys = DifferenceSystem::new(1);
        sys.add_constraint(VarId(0), VarId(1), 0);
    }

    #[test]
    fn dense_random_feasible_systems() {
        // Pseudo-random systems built to be feasible by construction:
        // bounds derived from a hidden assignment.
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for trial in 0..20 {
            let n = 5 + (trial % 7);
            let hidden: Vec<i64> = (0..n).map(|_| rng() % 10).collect();
            let mut sys = DifferenceSystem::new(n);
            for _ in 0..3 * n {
                let u = (rng().unsigned_abs() as usize) % n;
                let v = (rng().unsigned_abs() as usize) % n;
                if u == v {
                    continue;
                }
                let slack = rng() % 4; // nonnegative slack keeps it feasible
                sys.add_constraint(
                    VarId(u as u32),
                    VarId(v as u32),
                    hidden[u] - hidden[v] + slack.abs(),
                );
            }
            let sol = sys.solve_feasible().unwrap();
            assert!(sys.first_violation(&sol).is_none(), "trial {trial}");
        }
    }
}
