//! Exact LP optimization over difference constraints via the min-cost-flow
//! dual.
//!
//! The SDC scheduling LP is
//!
//! ```text
//! minimize    sum_v w_v * x_v
//! subject to  x_u - x_v <= b_uv        (all constraints)
//! ```
//!
//! Its Lagrangian dual is an uncapacitated min-cost flow: each constraint
//! becomes an arc `u -> v` with cost `b_uv`, and each variable `v` a node
//! that must receive net inflow `w_v`. We solve it with successive shortest
//! paths under node potentials (Dijkstra on reduced costs), seeding the
//! potentials from a Bellman-Ford feasible point so all reduced costs start
//! nonnegative. At termination the potentials *are* an optimal primal
//! solution — integral, because all bounds are integers (total
//! unimodularity, the property the paper's §II leans on).
//!
//! The drain itself ([`ssp_drain`]) is **batched and multi-source**: a
//! bulk re-drain seeds all current excess nodes at distance 0 in one
//! Dijkstra pass and pushes a blocking flow over the resulting admissible
//! subgraph, delivering many source->deficit paths per pass instead of one
//! single-source search per augmentation (retained as
//! [`ssp_drain_serial`], the reference the batched path is proven
//! bit-identical against). The strategy adapts to the excess shape — see
//! [`DrainProfile`] and the adaptive fallback inside [`ssp_drain`] — and
//! [`DrainStats`] counts what actually ran.
//!
//! Because the LP can have many optimal vertices, the raw SSP potentials
//! depend on pivot order. To make every solve path (cold, and the
//! warm-started [`crate::IncrementalSolver`]) return the *same* optimum, the
//! solution is canonicalized: the final flow's support fixes the optimal
//! face (complementary slackness: every optimal assignment is tight on every
//! flow-carrying constraint), and within that face we return the canonical
//! shortest-path point — the componentwise-maximal optimum at or below zero.
//! That point is a property of the LP alone, not of the solve path.

#[cfg(test)]
use crate::system::VarId;
use crate::system::{DifferenceSystem, SolveError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An optimal solution to the SDC LP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LpSolution {
    /// Optimal integral variable assignment.
    pub assignment: Vec<i64>,
    /// The objective value `sum w_v * x_v`.
    pub objective: i64,
}

/// Counters from the successive-shortest-paths drain of one solve: how much
/// search the solver actually ran. The batched multi-source drain delivers
/// many augmenting paths per Dijkstra pass, so `dijkstras <= paths` always,
/// and `dijkstras << paths` on bulk relaxations (a clock-period retarget)
/// is exactly the win it exists for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Dijkstra passes run (each one grows a full shortest-path forest).
    pub dijkstras: u64,
    /// Nodes settled across all passes.
    pub nodes_settled: u64,
    /// Augmenting source->deficit paths pushed along.
    pub paths: u64,
    /// Total flow units delivered.
    pub flow_pushed: u64,
}

impl std::ops::AddAssign for DrainStats {
    fn add_assign(&mut self, rhs: DrainStats) {
        self.dijkstras += rhs.dijkstras;
        self.nodes_settled += rhs.nodes_settled;
        self.paths += rhs.paths;
        self.flow_pushed += rhs.flow_pushed;
    }
}

/// Minimizes `sum weights[v] * x_v` subject to the system's constraints.
///
/// Weights must sum to zero; objectives over *differences* of variables
/// (register lifetimes, latency spans, ...) always satisfy this, and it is
/// what makes the LP bounded under translation of all variables.
///
/// The returned assignment is canonical: among all optimal assignments at or
/// below zero, the componentwise-maximal one. Repeated solves of equivalent
/// systems (even with redundant constraints added or removed) return
/// bit-identical assignments.
///
/// # Errors
///
/// - [`SolveError::UnbalancedObjective`] if weights do not sum to zero;
/// - [`SolveError::Infeasible`] if the constraints contradict;
/// - [`SolveError::Unbounded`] if the objective diverges to `-inf` (a weighted
///   variable pair unconstrained against each other).
///
/// # Examples
///
/// ```
/// use isdc_sdc::{minimize, DifferenceSystem, VarId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Minimize x1 - x0 with x0 <= x1 <= x0 + 5 : optimum is 0.
/// let mut sys = DifferenceSystem::new(2);
/// sys.add_constraint(VarId(0), VarId(1), 0);  // x0 - x1 <= 0
/// sys.add_constraint(VarId(1), VarId(0), 5);  // x1 - x0 <= 5
/// let sol = minimize(&sys, &[-1, 1])?;
/// assert_eq!(sol.objective, 0);
/// # Ok(())
/// # }
/// ```
pub fn minimize(system: &DifferenceSystem, weights: &[i64]) -> Result<LpSolution, SolveError> {
    crate::incremental::IncrementalSolver::new(system.clone(), weights.to_vec())?.solve()
}

pub(crate) fn dot(weights: &[i64], x: &[i64]) -> i64 {
    weights.iter().zip(x).map(|(&w, &v)| w * v).sum()
}

/// Arc-paired residual network.
#[derive(Clone, Debug)]
pub(crate) struct FlowNetwork {
    /// (to, cost, remaining_cap); arcs stored in pairs, arc^1 is the reverse.
    arcs: Vec<(usize, i64, i64)>,
    from: Vec<usize>,
    /// adjacency: outgoing arc indices per node.
    adj: Vec<Vec<usize>>,
}

pub(crate) const INF_CAP: i64 = i64::MAX / 4;

impl FlowNetwork {
    pub(crate) fn new(n: usize) -> Self {
        Self { arcs: Vec::new(), from: Vec::new(), adj: vec![Vec::new(); n] }
    }

    pub(crate) fn add_arc(&mut self, u: usize, v: usize, cost: i64) {
        let fwd = self.arcs.len();
        self.arcs.push((v, cost, INF_CAP));
        self.from.push(u);
        self.adj[u].push(fwd);
        let rev = self.arcs.len();
        self.arcs.push((u, -cost, 0));
        self.from.push(v);
        self.adj[v].push(rev);
    }

    pub(crate) fn residual_cap(&self, arc: usize) -> i64 {
        self.arcs[arc].2
    }

    /// Flow currently carried by a *forward* constraint arc.
    pub(crate) fn flow(&self, fwd_arc: usize) -> i64 {
        INF_CAP - self.arcs[fwd_arc].2
    }

    pub(crate) fn arc_from(&self, arc: usize) -> usize {
        self.from[arc]
    }

    pub(crate) fn push(&mut self, arc: usize, amount: i64) {
        self.arcs[arc].2 -= amount;
        self.arcs[arc ^ 1].2 += amount;
    }

    /// Rewrites the cost of a forward arc (and its paired reverse arc).
    pub(crate) fn set_cost(&mut self, fwd_arc: usize, cost: i64) {
        self.arcs[fwd_arc].1 = cost;
        self.arcs[fwd_arc ^ 1].1 = -cost;
    }

    /// Dijkstra over reduced costs `cost + pi[u] - pi[v]`, stopping at the
    /// first settled node whose `excess` is negative (the nearest deficit —
    /// ties broken toward the smallest node index, exactly as a full
    /// Dijkstra plus a min-scan would pick it). Returns distances, the
    /// settled set, the arc used to reach each node, and the deficit found.
    ///
    /// Only used by [`ssp_drain_serial`], the retained reference drain the
    /// batched path is proven bit-identical against.
    fn dijkstra_to_deficit(
        &self,
        source: usize,
        pi: &[i64],
        excess: &[i64],
    ) -> (Vec<i64>, Vec<bool>, Vec<Option<usize>>, Option<usize>) {
        let n = self.adj.len();
        let mut dist = vec![i64::MAX; n];
        let mut settled = vec![false; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0;
        heap.push(Reverse((0i64, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] || settled[u] {
                continue;
            }
            settled[u] = true;
            if excess[u] < 0 {
                return (dist, settled, parent, Some(u));
            }
            for &arc in &self.adj[u] {
                let (v, cost, cap) = self.arcs[arc];
                if cap <= 0 {
                    continue;
                }
                let reduced = cost + pi[u] - pi[v];
                debug_assert!(reduced >= 0, "reduced cost must stay nonnegative");
                let nd = d + reduced;
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = Some(arc);
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        (dist, settled, parent, None)
    }
}

/// Persistent scratch for [`ssp_drain`]: the Dijkstra working set, reused
/// across drain rounds *and* across solves (it lives in the warm state), so
/// a warm re-drain allocates nothing. Buffers are versioned — `stamp[v]`
/// marks `dist`/`parent` valid and `settled[v]` marks settlement for the
/// round whose counter matches — so clearing between rounds is O(1), not
/// O(n).
#[derive(Clone, Debug, Default)]
pub(crate) struct SolverScratch {
    dist: Vec<i64>,
    stamp: Vec<u32>,
    settled: Vec<u32>,
    /// Position in `settle_order` (valid while `settled` matches): the
    /// acyclic order the blocking-flow DFS walks admissible arcs in.
    settle_idx: Vec<u32>,
    /// Current-arc pointer into the node's adjacency (valid while
    /// `settled` matches): arcs before it are exhausted for this phase.
    cur: Vec<u32>,
    /// Shortest-path forest parent arc (valid while `stamp` matches);
    /// used by the single-source finisher's augmentation walk.
    parent: Vec<usize>,
    version: u32,
    heap: BinaryHeap<Reverse<(i64, usize)>>,
    /// Nodes settled this round, in settle (= distance) order.
    settle_order: Vec<usize>,
    /// The DFS path as a stack of arc indices.
    path: Vec<usize>,
}

impl SolverScratch {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            dist: vec![0; n],
            stamp: vec![0; n],
            settled: vec![0; n],
            settle_idx: vec![0; n],
            cur: vec![0; n],
            parent: vec![usize::MAX; n],
            version: 0,
            heap: BinaryHeap::new(),
            settle_order: Vec::new(),
            path: Vec::new(),
        }
    }

    /// Starts a fresh Dijkstra phase: bumps the version (invalidating every
    /// stamp at once) and empties the per-phase lists.
    fn begin_phase(&mut self) {
        if self.version == u32::MAX {
            // Stamp wraparound: reset all stamps once every 2^32 phases so
            // a stale stamp can never alias the new version.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.settled.iter_mut().for_each(|s| *s = 0);
            self.version = 0;
        }
        self.version += 1;
        self.heap.clear();
        self.settle_order.clear();
        self.path.clear();
    }
}

/// What shape of excess a drain call is asked to deliver — the caller
/// knows, and the two shapes want opposite search strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum DrainProfile {
    /// Excess re-exposed by canceling flow on relaxed arcs (a retarget or
    /// a feedback iteration): localized, symmetric, many disjoint tight
    /// routes — the batched multi-source phases pay off.
    Bulk,
    /// Full supply on every weighted node (a cold start or imported
    /// potentials): diffuse, heterogeneous distances — early-exit
    /// single-source searches win.
    Diffuse,
}

/// Batched multi-source successive-shortest-paths drain: delivers all
/// positive excess to deficits, maintaining the potential invariant (all
/// residual arcs keep nonnegative reduced cost).
///
/// Where the serial drain ran one single-source Dijkstra **per augmenting
/// path**, each phase here seeds *every* current excess node at distance 0
/// (a virtual super-source), grows one shortest-path forest until the
/// settled deficits can absorb the whole remaining supply, then pushes a
/// **blocking flow** over the admissible subgraph — the reduced-cost-zero
/// residual arcs between settled nodes — so one Dijkstra pass delivers
/// many source->deficit paths, rerouting around saturated arcs instead of
/// paying a fresh search for each. A bulk relaxation (a retarget, or a
/// whole feedback iteration's worth of dirty bounds) usually re-drains in
/// a handful of phases.
///
/// Correctness is the classic primal-dual argument, proven once per phase:
///
/// - **Potential update.** Let `dt` be the distance of the last settled
///   node. Settled nodes get `pi += dist` and everything else `pi += dt`
///   (every unsettled node's true distance is >= `dt`), which keeps all
///   residual reduced costs nonnegative and turns every shortest-path arc
///   between settled nodes reduced-cost zero. The unsettled-node share is
///   applied as a **global offset** folded into `pi` once at the end of
///   the drain, so each phase's update is O(settled), not O(n) — offsets
///   cancel in the `pi[u] - pi[v]` differences every scan reads, so
///   deferring them is invisible.
/// - **Blocking flow.** Augmentations run only along arcs that are
///   reduced-cost zero *after* the update, so any push order and amount
///   preserves dual feasibility (the reverse arcs they open are
///   reduced-cost zero too). The DFS walks admissible arcs in settle
///   order — parents settle before children, so the restriction is
///   acyclic even though tight 0-cost constraint cycles exist — with a
///   current-arc pointer per node, the standard blocking-flow device. The
///   first settled deficit's shortest path is always intact when the
///   phase starts, so every phase pushes flow and the drain terminates.
///   Reordering augmentations can only trade one optimal flow for
///   another, and the canonical assignment is the same for every optimal
///   flow (see [`canonical_assignment`]).
///
/// Batching is **adaptive**: when a phase delivers less than a quarter of
/// the remaining supply — the diffuse-excess shape of a cold full drain,
/// where essentially one route wins per phase — the drain switches to
/// [`drain_single_source`], early-exit searches that touch only each
/// source's neighbourhood. Every path through here ends at the same
/// canonical optimum.
///
/// Counters for the whole call are accumulated into `stats`.
pub(crate) fn ssp_drain(
    net: &mut FlowNetwork,
    excess: &mut [i64],
    pi: &mut [i64],
    profile: DrainProfile,
    scratch: &mut SolverScratch,
    stats: &mut DrainStats,
) -> Result<(), SolveError> {
    let n = excess.len();
    debug_assert_eq!(scratch.dist.len(), n, "scratch sized for this network");
    if profile == DrainProfile::Diffuse || n < 128 {
        // A full-supply drain (cold start or imported potentials): excess
        // sits on every weighted node at heterogeneous distances, so a
        // multi-source phase would mostly part-fill deficits along the few
        // globally-shortest routes — fragmenting the remaining supply into
        // more, smaller paths. Early-exit single-source searches are the
        // right shape from the start. Tiny systems take the same path:
        // their searches are already a handful of settles, so a batch
        // phase's fixed overhead can never amortize.
        return drain_single_source(net, excess, pi, scratch, stats);
    }
    // Pushes only ever move excess from a phase's roots toward its deficits
    // (a target's excess rises toward zero, never past it), so the initial
    // source list is complete and only shrinks.
    let mut sources: Vec<usize> = (0..n).filter(|&v| excess[v] > 0).collect();
    let mut supply: i64 = sources.iter().map(|&v| excess[v]).sum();
    // Deferred unsettled-node potential share (see the doc comment).
    let mut offset: i64 = 0;
    while supply > 0 {
        // Per-phase cancellation poll: one relaxed load when disarmed. The
        // caller discards partial drain state on the error, so bailing
        // between phases never leaks a half-applied potential update.
        isdc_cancel::checkpoint().map_err(|_| SolveError::Cancelled)?;
        let supply_before = supply;
        // One multi-source Dijkstra pass over reduced costs. The deferred
        // offset shifts every node's potential equally, so raw `pi` values
        // give the same reduced costs the fully-updated potentials would.
        scratch.begin_phase();
        let version = scratch.version;
        for &s in &sources {
            scratch.dist[s] = 0;
            scratch.stamp[s] = version;
            scratch.heap.push(Reverse((0, s)));
        }
        let mut absorbable: i64 = 0;
        let mut dt = 0;
        let mut any_deficit = false;
        while let Some(Reverse((d, u))) = scratch.heap.pop() {
            if scratch.settled[u] == version || d > scratch.dist[u] {
                continue;
            }
            scratch.settled[u] = version;
            scratch.settle_idx[u] = scratch.settle_order.len() as u32;
            scratch.cur[u] = 0;
            scratch.settle_order.push(u);
            dt = d;
            if excess[u] < 0 {
                any_deficit = true;
                absorbable += -excess[u];
                if absorbable >= supply {
                    // Enough deficits settled to absorb everything that is
                    // left; the potential cap `dt` covers the rest.
                    break;
                }
            }
            for &arc in &net.adj[u] {
                let (v, cost, cap) = net.arcs[arc];
                if cap <= 0 {
                    continue;
                }
                let reduced = cost + pi[u] - pi[v];
                debug_assert!(reduced >= 0, "reduced cost must stay nonnegative");
                let nd = d + reduced;
                if scratch.stamp[v] != version || nd < scratch.dist[v] {
                    scratch.dist[v] = nd;
                    scratch.stamp[v] = version;
                    scratch.heap.push(Reverse((nd, v)));
                }
            }
        }
        if !any_deficit {
            // Some supply cannot reach any deficit: the dual is infeasible,
            // so the primal objective is unbounded below.
            return Err(SolveError::Unbounded);
        }
        stats.dijkstras += 1;
        stats.nodes_settled += scratch.settle_order.len() as u64;
        // Settled-capped potential update, once for the phase: settled
        // nodes (dist <= dt by settle order) owe `dist - dt` relative to
        // the global `+dt` share deferred into `offset`.
        offset += dt;
        for &v in &scratch.settle_order {
            pi[v] += scratch.dist[v] - dt;
        }
        // Blocking flow over the admissible subgraph: DFS from each root
        // with remaining excess, walking settled, reduced-cost-zero,
        // settle-order-increasing residual arcs under a current-arc
        // pointer. Every deficit reached absorbs what the path supports;
        // saturated arcs retreat the walk, exhausted arcs are never
        // rescanned within the phase.
        for &root in &sources {
            if excess[root] <= 0 || scratch.settled[root] != version {
                continue; // drained this phase, or cut off by the early stop
            }
            scratch.path.clear();
            let mut u = root;
            'dfs: loop {
                if excess[u] < 0 {
                    // Augment along the DFS path.
                    let mut amount = excess[root].min(-excess[u]);
                    for &arc in &scratch.path {
                        amount = amount.min(net.residual_cap(arc));
                    }
                    debug_assert!(amount > 0);
                    for &arc in &scratch.path {
                        net.push(arc, amount);
                    }
                    excess[root] -= amount;
                    excess[u] += amount;
                    supply -= amount;
                    stats.paths += 1;
                    stats.flow_pushed += amount as u64;
                    if excess[root] == 0 {
                        break 'dfs;
                    }
                    // Retreat to the tail of the first saturated arc (the
                    // prefix up to it still has capacity).
                    if let Some(cut) =
                        scratch.path.iter().position(|&arc| net.residual_cap(arc) == 0)
                    {
                        u = net.arc_from(scratch.path[cut]);
                        scratch.path.truncate(cut);
                        continue;
                    }
                    // Path intact: the target absorbed all it needed and
                    // is now an ordinary intermediate node; keep walking.
                }
                // Advance u's current arc to the next admissible one.
                let mut advanced = false;
                while (scratch.cur[u] as usize) < net.adj[u].len() {
                    let arc = net.adj[u][scratch.cur[u] as usize];
                    let (v, cost, cap) = net.arcs[arc];
                    if cap > 0
                        && scratch.settled[v] == version
                        && scratch.settle_idx[v] > scratch.settle_idx[u]
                        && cost + pi[u] - pi[v] == 0
                    {
                        scratch.path.push(arc);
                        u = v;
                        advanced = true;
                        break;
                    }
                    scratch.cur[u] += 1;
                }
                if advanced {
                    continue;
                }
                // Dead end: retreat one arc (and exhaust it), or give up
                // on this root for the phase.
                match scratch.path.pop() {
                    Some(arc) => {
                        u = net.arc_from(arc);
                        scratch.cur[u] += 1;
                    }
                    None => break 'dfs,
                }
            }
        }
        sources.retain(|&v| excess[v] > 0);
        // Batching pays off only while the admissible subgraph carries a
        // real share of the supply — the bulk-relaxation shape, where many
        // disjoint tight routes drain in parallel. When a phase delivers
        // under a quarter of what was left (diffuse excess at
        // heterogeneous distances: essentially one winning route per
        // phase), stop paying full-forest passes and finish with
        // early-exit single-source searches, which touch only the small
        // neighbourhood around each remaining source.
        if supply > 0 && (supply_before - supply) * 4 < supply_before {
            break;
        }
    }
    if offset != 0 {
        // Fold the deferred share into the real potentials — one O(n) pass
        // per drain call instead of one per augmentation.
        pi.iter_mut().for_each(|p| *p += offset);
    }
    if supply > 0 {
        drain_single_source(net, excess, pi, scratch, stats)?;
    }
    Ok(())
}

/// The drain finisher for diffuse excess: one early-exit single-source
/// Dijkstra per augmenting path — the serial algorithm, but on the
/// persistent versioned scratch (no allocation) and with the O(settled)
/// offset-deferred potential update. Deficits are dense in SDC scheduling
/// duals, so each search settles a small neighbourhood of its source.
fn drain_single_source(
    net: &mut FlowNetwork,
    excess: &mut [i64],
    pi: &mut [i64],
    scratch: &mut SolverScratch,
    stats: &mut DrainStats,
) -> Result<(), SolveError> {
    let n = excess.len();
    let mut sources: Vec<usize> = (0..n).filter(|&v| excess[v] > 0).collect();
    let mut offset: i64 = 0;
    while let Some(&source) = sources.last() {
        isdc_cancel::checkpoint().map_err(|_| SolveError::Cancelled)?;
        if excess[source] <= 0 {
            sources.pop();
            continue;
        }
        scratch.begin_phase();
        let version = scratch.version;
        scratch.dist[source] = 0;
        scratch.parent[source] = usize::MAX;
        scratch.stamp[source] = version;
        scratch.heap.push(Reverse((0, source)));
        let mut target = None;
        while let Some(Reverse((d, u))) = scratch.heap.pop() {
            if scratch.settled[u] == version || d > scratch.dist[u] {
                continue;
            }
            scratch.settled[u] = version;
            scratch.settle_order.push(u);
            if excess[u] < 0 {
                target = Some(u);
                break;
            }
            for &arc in &net.adj[u] {
                let (v, cost, cap) = net.arcs[arc];
                if cap <= 0 {
                    continue;
                }
                let reduced = cost + pi[u] - pi[v];
                debug_assert!(reduced >= 0, "reduced cost must stay nonnegative");
                let nd = d + reduced;
                if scratch.stamp[v] != version || nd < scratch.dist[v] {
                    scratch.dist[v] = nd;
                    scratch.parent[v] = arc;
                    scratch.stamp[v] = version;
                    scratch.heap.push(Reverse((nd, v)));
                }
            }
        }
        let Some(target) = target else {
            return Err(SolveError::Unbounded);
        };
        stats.dijkstras += 1;
        stats.nodes_settled += scratch.settle_order.len() as u64;
        // Settled-capped potential update, offset-deferred exactly as in
        // the batched phase (settled nodes have dist <= dist[target]).
        let dt = scratch.dist[target];
        offset += dt;
        for &v in &scratch.settle_order {
            pi[v] += scratch.dist[v] - dt;
        }
        let mut amount = excess[source].min(-excess[target]);
        let mut v = target;
        while v != source {
            let arc = scratch.parent[v];
            amount = amount.min(net.residual_cap(arc));
            v = net.arc_from(arc);
        }
        debug_assert!(amount > 0);
        let mut v = target;
        while v != source {
            let arc = scratch.parent[v];
            net.push(arc, amount);
            v = net.arc_from(arc);
        }
        excess[source] -= amount;
        excess[target] += amount;
        stats.paths += 1;
        stats.flow_pushed += amount as u64;
    }
    if offset != 0 {
        pi.iter_mut().for_each(|p| *p += offset);
    }
    Ok(())
}

/// The retained reference drain: one single-source, early-exit Dijkstra per
/// augmenting path — the exact pre-batching implementation, kept verbatim
/// (per-call allocations included) as the semantic and performance baseline
/// that [`ssp_drain`] is tested bit-identical against and benched under the
/// `drain` group.
pub(crate) fn ssp_drain_serial(
    net: &mut FlowNetwork,
    excess: &mut [i64],
    pi: &mut [i64],
    stats: &mut DrainStats,
) -> Result<(), SolveError> {
    let n = excess.len();
    let mut sources: Vec<usize> = (0..n).filter(|&v| excess[v] > 0).collect();
    while let Some(source) = sources.pop() {
        while excess[source] > 0 {
            isdc_cancel::checkpoint().map_err(|_| SolveError::Cancelled)?;
            // Dijkstra on reduced costs from `source`, stopping at the
            // nearest deficit.
            let (dist, settled, parent_arc, target) = net.dijkstra_to_deficit(source, pi, excess);
            let Some(target) = target else {
                // Supply cannot reach any deficit: the dual is infeasible, so
                // the primal objective is unbounded below.
                return Err(SolveError::Unbounded);
            };
            stats.dijkstras += 1;
            stats.nodes_settled += settled.iter().filter(|&&s| s).count() as u64;
            // Update potentials (capped at dist[target], the standard SSP
            // rule). Unsettled nodes have true distance >= dist[target], so
            // the cap applies to them verbatim.
            let dt = dist[target];
            for (v, &s) in settled.iter().enumerate() {
                pi[v] += if s { dist[v].min(dt) } else { dt };
            }
            // Amount limited by endpoint excesses and residual capacities.
            let mut amount = excess[source].min(-excess[target]);
            let mut v = target;
            while v != source {
                let arc = parent_arc[v].expect("path to source");
                amount = amount.min(net.residual_cap(arc));
                v = net.arc_from(arc);
            }
            debug_assert!(amount > 0);
            let mut v = target;
            while v != source {
                let arc = parent_arc[v].expect("path to source");
                net.push(arc, amount);
                v = net.arc_from(arc);
            }
            excess[source] -= amount;
            excess[target] += amount;
            stats.paths += 1;
            stats.flow_pushed += amount as u64;
        }
    }
    Ok(())
}

/// Precomputed adjacency (CSR) for the canonicalization graph. The edge
/// *topology* is fixed by the constraint set — constraint `(u, v, b)`
/// contributes a primal edge `v -> u` always, and a tight reverse edge
/// `u -> v` exactly while its dual arc carries flow — so an incremental
/// solver builds this once per warm state and every canonicalization pass
/// reuses it, instead of re-allocating an adjacency list per solve
/// (`O(m)` on systems that are ~90% timing constraints).
#[derive(Clone, Debug)]
pub(crate) struct CanonGraph {
    /// CSR over variables: constraints in which the variable is `v`.
    primal_start: Vec<u32>,
    primal: Vec<u32>,
    /// CSR over variables: constraints in which the variable is `u`.
    tight_start: Vec<u32>,
    tight: Vec<u32>,
}

impl CanonGraph {
    /// Builds the CSR adjacency, omitting the **primal** edge of every
    /// constraint flagged in `pruned` (missing indices count as unflagged,
    /// so `&[]` builds the full graph).
    ///
    /// Dropping a primal edge is sound exactly when the constraint is
    /// *implied* by the rest of the system — some other primal path from its
    /// `v` to its `u` already enforces a bound at least as tight — because
    /// removing an edge dominated by an equal-or-shorter path never changes
    /// shortest-path distances. The caller asserts that implication; see
    /// [`IncrementalSolver::mark_implied`](crate::IncrementalSolver::mark_implied).
    /// Tight reverse edges are **never** pruned: they encode complementary
    /// slackness for flow the pruned constraint's arc may still carry, which
    /// no other constraint implies.
    pub(crate) fn new_pruned(system: &DifferenceSystem, pruned: &[bool]) -> Self {
        let n = system.num_vars();
        let m = system.constraints().len();
        let is_pruned = |ci: usize| pruned.get(ci).copied().unwrap_or(false);
        let mut primal_start = vec![0u32; n + 1];
        let mut tight_start = vec![0u32; n + 1];
        for (ci, c) in system.constraints().iter().enumerate() {
            if !is_pruned(ci) {
                primal_start[c.v.index() + 1] += 1;
            }
            tight_start[c.u.index() + 1] += 1;
        }
        for i in 0..n {
            primal_start[i + 1] += primal_start[i];
            tight_start[i + 1] += tight_start[i];
        }
        let mut primal = vec![0u32; primal_start[n] as usize];
        let mut tight = vec![0u32; m];
        let mut primal_at = primal_start.clone();
        let mut tight_at = tight_start.clone();
        for (ci, c) in system.constraints().iter().enumerate() {
            if !is_pruned(ci) {
                primal[primal_at[c.v.index()] as usize] = ci as u32;
                primal_at[c.v.index()] += 1;
            }
            tight[tight_at[c.u.index()] as usize] = ci as u32;
            tight_at[c.u.index()] += 1;
        }
        Self { primal_start, primal, tight_start, tight }
    }

    fn primal_of(&self, v: usize) -> &[u32] {
        &self.primal[self.primal_start[v] as usize..self.primal_start[v + 1] as usize]
    }

    fn tight_of(&self, u: usize) -> &[u32] {
        &self.tight[self.tight_start[u] as usize..self.tight_start[u + 1] as usize]
    }
}

/// Canonicalizes an optimal solution: restricts to the optimal face (the
/// original constraints plus tightness on every flow-carrying constraint,
/// which by complementary slackness every optimum satisfies) and returns the
/// canonical virtual-source shortest-path point of that face — the
/// componentwise-maximal optimum at or below zero.
///
/// `x_star` (an optimal assignment, e.g. `-pi` after SSP) doubles as the
/// Dijkstra potential: it is feasible, and tight on the equality edges, so
/// all reduced edge weights are nonnegative and no Bellman-Ford is needed.
pub(crate) fn canonical_assignment(
    system: &DifferenceSystem,
    net: &FlowNetwork,
    x_star: &[i64],
    canon: &CanonGraph,
) -> Vec<i64> {
    let n = system.num_vars();
    if n == 0 {
        return Vec::new();
    }
    let constraints = system.constraints();
    // Virtual source: an edge of weight 0 to every node. With source
    // potential h_s = max(h), all its reduced weights h_s - h_u are >= 0.
    // Edge weights below are reduced under potential h = x_star.
    let h_s = x_star.iter().copied().max().expect("n > 0");
    let mut dist: Vec<i64> = x_star.iter().map(|&x| h_s - x).collect();
    let mut heap: BinaryHeap<Reverse<(i64, usize)>> =
        dist.iter().enumerate().map(|(v, &d)| Reverse((d, v))).collect();
    while let Some(Reverse((d, z))) = heap.pop() {
        if d > dist[z] {
            continue;
        }
        // Primal edges z -> u of weight b (dist_u <= dist_z + b).
        for &ci in canon.primal_of(z) {
            let c = constraints[ci as usize];
            let u = c.u.index();
            let w = c.bound + x_star[z] - x_star[u];
            debug_assert!(w >= 0, "x_star must be feasible");
            let nd = d + w;
            if nd < dist[u] {
                dist[u] = nd;
                heap.push(Reverse((nd, u)));
            }
        }
        // Tight reverse edges z -> v of weight -b, live while the dual arc
        // carries flow (the constraint is an equality on the face).
        for &ci in canon.tight_of(z) {
            if net.flow(2 * ci as usize) > 0 {
                let c = constraints[ci as usize];
                let v = c.v.index();
                let w = -c.bound + x_star[z] - x_star[v];
                debug_assert!(w == 0, "flow-carrying constraints must be tight at x_star");
                let nd = d + w;
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
    // Back out original-weight distances: dist_orig = dist_reduced + h_u - h_s.
    (0..n).map(|u| dist[u] + x_star[u] - h_s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force LP reference: enumerate integer points in a box. Only for
    /// tiny systems; relies on integral optima existing (total
    /// unimodularity) and the box covering an optimum.
    fn brute_force(system: &DifferenceSystem, weights: &[i64], lo: i64, hi: i64) -> Option<i64> {
        let n = system.num_vars();
        let mut best: Option<i64> = None;
        let mut point = vec![lo; n];
        loop {
            if system.first_violation(&point).is_none() {
                let obj = dot(weights, &point);
                best = Some(best.map_or(obj, |b: i64| b.min(obj)));
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == n {
                    return best;
                }
                point[i] += 1;
                if point[i] <= hi {
                    break;
                }
                point[i] = lo;
                i += 1;
            }
        }
    }

    fn check_against_brute(system: &DifferenceSystem, weights: &[i64]) {
        let sol = minimize(system, weights).expect("solvable");
        assert!(system.first_violation(&sol.assignment).is_none(), "solution feasible");
        assert_eq!(dot(weights, &sol.assignment), sol.objective);
        let reference = brute_force(system, weights, -6, 6).expect("brute found a point");
        assert_eq!(sol.objective, reference, "objective must match brute force");
    }

    #[test]
    fn minimize_span() {
        // Chain x0 <= x1 <= x2, each step >= 1; minimize x2 - x0 => 2.
        let mut sys = DifferenceSystem::new(3);
        sys.add_constraint(VarId(0), VarId(1), -1);
        sys.add_constraint(VarId(1), VarId(2), -1);
        let sol = minimize(&sys, &[-1, 0, 1]).unwrap();
        assert_eq!(sol.objective, 2);
        check_against_brute(&sys, &[-1, 0, 1]);
    }

    #[test]
    fn maximize_direction_is_bounded_by_upper_constraints() {
        // minimize x0 - x1 (i.e. push x1 late) with x1 - x0 <= 3: optimum -3.
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(1), VarId(0), 3);
        let sol = minimize(&sys, &[1, -1]).unwrap();
        assert_eq!(sol.objective, -3);
    }

    #[test]
    fn unbounded_detected() {
        // minimize x0 - x1 with only x0 - x1 <= 5: no lower bound on the
        // difference, so the objective diverges.
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(0), VarId(1), 5);
        assert_eq!(minimize(&sys, &[1, -1]).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn unbalanced_weights_rejected() {
        let sys = DifferenceSystem::new(2);
        assert!(matches!(
            minimize(&sys, &[1, 1]).unwrap_err(),
            SolveError::UnbalancedObjective { weight_sum: 2 }
        ));
    }

    #[test]
    fn infeasible_propagates() {
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(0), VarId(1), -1);
        sys.add_constraint(VarId(1), VarId(0), 0);
        assert!(matches!(minimize(&sys, &[-1, 1]).unwrap_err(), SolveError::Infeasible { .. }));
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(0), VarId(1), -1);
        let sol = minimize(&sys, &[0, 0]).unwrap();
        assert_eq!(sol.objective, 0);
        assert!(sys.first_violation(&sol.assignment).is_none());
    }

    #[test]
    fn diamond_lifetime_objective() {
        // Diamond: s -> a, b -> t. Dependencies: x_s <= x_a, x_b; x_a, x_b <= x_t.
        // Minimize (x_t - x_s)*2 + (x_a - x_s) with x_t - x_s >= 2.
        let mut sys = DifferenceSystem::new(4); // s=0, a=1, b=2, t=3
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            sys.add_constraint(VarId(u), VarId(v), 0); // x_u <= x_v
        }
        sys.add_constraint(VarId(0), VarId(3), -2); // x_s - x_t <= -2
        let weights = [-3, 1, 0, 2]; // 2(t-s) + (a-s)
        check_against_brute(&sys, &weights);
        let sol = minimize(&sys, &weights).unwrap();
        assert_eq!(sol.objective, 4); // t-s = 2 forced, a = s optimal
    }

    #[test]
    fn randomized_cross_check_against_brute_force() {
        let mut state = 0xdeadbeefu64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let mut solved = 0;
        for trial in 0..60 {
            let n = 3 + (trial % 3) as usize; // 3..=5 vars
            let mut sys = DifferenceSystem::new(n);
            for _ in 0..n + 2 {
                let u = rng().unsigned_abs() as usize % n;
                let v = rng().unsigned_abs() as usize % n;
                if u == v {
                    continue;
                }
                sys.add_constraint(VarId(u as u32), VarId(v as u32), rng() % 4);
            }
            // Balanced weights in [-2, 2].
            let mut weights: Vec<i64> = (0..n).map(|_| rng() % 3).collect();
            let s: i64 = weights.iter().sum();
            weights[0] -= s;
            let brute = brute_force(&sys, &weights, -6, 6);
            match minimize(&sys, &weights) {
                Ok(sol) => {
                    assert!(sys.first_violation(&sol.assignment).is_none(), "trial {trial}");
                    let b = brute.expect("brute agrees feasible");
                    assert_eq!(sol.objective, b, "trial {trial}");
                    solved += 1;
                }
                Err(SolveError::Infeasible { .. }) => {
                    assert_eq!(brute, None, "trial {trial}: brute disagrees on feasibility");
                }
                Err(SolveError::Unbounded) => {
                    // Brute force in a box cannot certify unboundedness; just
                    // require that widening the box keeps lowering the optimum.
                    let narrow = brute_force(&sys, &weights, -3, 3);
                    let wide = brute_force(&sys, &weights, -6, 6);
                    if let (Some(n_), Some(w_)) = (narrow, wide) {
                        assert!(w_ < n_, "trial {trial}: claimed unbounded but box optimum stable");
                    }
                }
                Err(e) => panic!("trial {trial}: unexpected error {e}"),
            }
        }
        assert!(solved >= 10, "too few solvable random systems ({solved}) — generator broken?");
    }

    #[test]
    fn solution_is_integral_and_tight_paths_exist() {
        let mut sys = DifferenceSystem::new(3);
        sys.add_constraint(VarId(0), VarId(1), -2);
        sys.add_constraint(VarId(1), VarId(2), -3);
        sys.add_constraint(VarId(0), VarId(2), -4);
        let weights = [-1, 0, 1]; // minimize x2 - x0
        let sol = minimize(&sys, &weights).unwrap();
        assert_eq!(sol.objective, 5); // through the chain: 2 + 3
    }

    #[test]
    fn canonical_solution_ignores_redundant_constraints() {
        // A redundant (implied) constraint must not change the canonical
        // assignment — the warm solver keeps relaxed-to-zero timing pairs
        // around, the cold path drops them, and both must agree bit-for-bit.
        let mut sys = DifferenceSystem::new(4);
        sys.add_constraint(VarId(0), VarId(1), -1);
        sys.add_constraint(VarId(1), VarId(2), -2);
        sys.add_constraint(VarId(2), VarId(3), 0);
        let weights = [-1, 1, -1, 1];
        let base = minimize(&sys, &weights).unwrap();
        // x0 - x2 <= -3 is implied by the chain; x0 - x3 <= 0 likewise.
        sys.add_constraint(VarId(0), VarId(2), -3);
        sys.add_constraint(VarId(0), VarId(3), 0);
        let redundant = minimize(&sys, &weights).unwrap();
        assert_eq!(base, redundant);
    }
}
