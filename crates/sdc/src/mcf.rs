//! Exact LP optimization over difference constraints via the min-cost-flow
//! dual.
//!
//! The SDC scheduling LP is
//!
//! ```text
//! minimize    sum_v w_v * x_v
//! subject to  x_u - x_v <= b_uv        (all constraints)
//! ```
//!
//! Its Lagrangian dual is an uncapacitated min-cost flow: each constraint
//! becomes an arc `u -> v` with cost `b_uv`, and each variable `v` a node
//! that must receive net inflow `w_v`. We solve it with successive shortest
//! paths under node potentials (Dijkstra on reduced costs), seeding the
//! potentials from a Bellman-Ford feasible point so all reduced costs start
//! nonnegative. At termination the potentials *are* an optimal primal
//! solution — integral, because all bounds are integers (total
//! unimodularity, the property the paper's §II leans on).

#[cfg(test)]
use crate::system::VarId;
use crate::system::{DifferenceSystem, SolveError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An optimal solution to the SDC LP.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LpSolution {
    /// Optimal integral variable assignment.
    pub assignment: Vec<i64>,
    /// The objective value `sum w_v * x_v`.
    pub objective: i64,
}

/// Minimizes `sum weights[v] * x_v` subject to the system's constraints.
///
/// Weights must sum to zero; objectives over *differences* of variables
/// (register lifetimes, latency spans, ...) always satisfy this, and it is
/// what makes the LP bounded under translation of all variables.
///
/// # Errors
///
/// - [`SolveError::UnbalancedObjective`] if weights do not sum to zero;
/// - [`SolveError::Infeasible`] if the constraints contradict;
/// - [`SolveError::Unbounded`] if the objective diverges to `-inf` (a weighted
///   variable pair unconstrained against each other).
///
/// # Examples
///
/// ```
/// use isdc_sdc::{minimize, DifferenceSystem, VarId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Minimize x1 - x0 with x0 <= x1 <= x0 + 5 : optimum is 0.
/// let mut sys = DifferenceSystem::new(2);
/// sys.add_constraint(VarId(0), VarId(1), 0);  // x0 - x1 <= 0
/// sys.add_constraint(VarId(1), VarId(0), 5);  // x1 - x0 <= 5
/// let sol = minimize(&sys, &[-1, 1])?;
/// assert_eq!(sol.objective, 0);
/// # Ok(())
/// # }
/// ```
pub fn minimize(system: &DifferenceSystem, weights: &[i64]) -> Result<LpSolution, SolveError> {
    let n = system.num_vars();
    assert_eq!(weights.len(), n, "one weight per variable required");
    let weight_sum: i64 = weights.iter().sum();
    if weight_sum != 0 {
        return Err(SolveError::UnbalancedObjective { weight_sum });
    }

    // Feasibility first — also seeds the potentials.
    let feasible = system.solve_feasible()?;
    if weights.iter().all(|&w| w == 0) {
        // Pure feasibility query: any satisfying point is optimal.
        let objective = dot(weights, &feasible);
        return Ok(LpSolution { assignment: feasible, objective });
    }

    // Build the flow network. Arc for constraint (u, v, b): u -> v, cost b,
    // infinite capacity; plus the paired residual arc v -> u, cost -b, cap 0.
    let mut net = FlowNetwork::new(n);
    for c in system.constraints() {
        net.add_arc(c.u.index(), c.v.index(), c.bound);
    }

    // Node v needs net inflow w_v; excess = -w (positive excess = source).
    let mut excess: Vec<i64> = weights.iter().map(|&w| -w).collect();

    // Potentials from the feasible point: pi_u = -x_u makes every reduced
    // cost b + pi_u - pi_v = b - x_u + x_v >= 0.
    let mut pi: Vec<i64> = feasible.iter().map(|&x| -x).collect();

    // Repeat until all supply is delivered.
    while let Some(source) = excess.iter().position(|&e| e > 0) {
        // Dijkstra on reduced costs from `source`.
        let (dist, parent_arc) = net.dijkstra(source, &pi);
        // Nearest node with deficit among reached nodes.
        let target =
            (0..n).filter(|&v| excess[v] < 0 && dist[v] != i64::MAX).min_by_key(|&v| dist[v]);
        let Some(target) = target else {
            // Supply cannot reach any deficit: the dual is infeasible, so
            // the primal objective is unbounded below.
            return Err(SolveError::Unbounded);
        };
        // Update potentials (capped at dist[target], the standard SSP rule).
        let dt = dist[target];
        for v in 0..n {
            pi[v] += dist[v].min(dt);
        }
        // Amount limited by endpoint excesses and residual capacities.
        let mut amount = excess[source].min(-excess[target]);
        let mut v = target;
        while v != source {
            let arc = parent_arc[v].expect("path to source");
            amount = amount.min(net.residual_cap(arc));
            v = net.arc_from(arc);
        }
        debug_assert!(amount > 0);
        let mut v = target;
        while v != source {
            let arc = parent_arc[v].expect("path to source");
            net.push(arc, amount);
            v = net.arc_from(arc);
        }
        excess[source] -= amount;
        excess[target] += amount;
    }

    // Optimal primal assignment from final potentials.
    let assignment: Vec<i64> = pi.iter().map(|&p| -p).collect();
    debug_assert!(system.first_violation(&assignment).is_none());
    let objective = dot(weights, &assignment);
    Ok(LpSolution { assignment, objective })
}

fn dot(weights: &[i64], x: &[i64]) -> i64 {
    weights.iter().zip(x).map(|(&w, &v)| w * v).sum()
}

/// Arc-paired residual network.
struct FlowNetwork {
    /// (to, cost, remaining_cap); arcs stored in pairs, arc^1 is the reverse.
    arcs: Vec<(usize, i64, i64)>,
    from: Vec<usize>,
    /// adjacency: outgoing arc indices per node.
    adj: Vec<Vec<usize>>,
}

const INF_CAP: i64 = i64::MAX / 4;

impl FlowNetwork {
    fn new(n: usize) -> Self {
        Self { arcs: Vec::new(), from: Vec::new(), adj: vec![Vec::new(); n] }
    }

    fn add_arc(&mut self, u: usize, v: usize, cost: i64) {
        let fwd = self.arcs.len();
        self.arcs.push((v, cost, INF_CAP));
        self.from.push(u);
        self.adj[u].push(fwd);
        let rev = self.arcs.len();
        self.arcs.push((u, -cost, 0));
        self.from.push(v);
        self.adj[v].push(rev);
    }

    fn residual_cap(&self, arc: usize) -> i64 {
        self.arcs[arc].2
    }

    fn arc_from(&self, arc: usize) -> usize {
        self.from[arc]
    }

    fn push(&mut self, arc: usize, amount: i64) {
        self.arcs[arc].2 -= amount;
        self.arcs[arc ^ 1].2 += amount;
    }

    /// Dijkstra over reduced costs `cost + pi[u] - pi[v]`; returns distances
    /// and the arc used to reach each node.
    fn dijkstra(&self, source: usize, pi: &[i64]) -> (Vec<i64>, Vec<Option<usize>>) {
        let n = self.adj.len();
        let mut dist = vec![i64::MAX; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut heap = BinaryHeap::new();
        dist[source] = 0;
        heap.push(Reverse((0i64, source)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &arc in &self.adj[u] {
                let (v, cost, cap) = self.arcs[arc];
                if cap <= 0 {
                    continue;
                }
                let reduced = cost + pi[u] - pi[v];
                debug_assert!(reduced >= 0, "reduced cost must stay nonnegative");
                let nd = d + reduced;
                if nd < dist[v] {
                    dist[v] = nd;
                    parent[v] = Some(arc);
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        (dist, parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force LP reference: enumerate integer points in a box. Only for
    /// tiny systems; relies on integral optima existing (total
    /// unimodularity) and the box covering an optimum.
    fn brute_force(system: &DifferenceSystem, weights: &[i64], lo: i64, hi: i64) -> Option<i64> {
        let n = system.num_vars();
        let mut best: Option<i64> = None;
        let mut point = vec![lo; n];
        loop {
            if system.first_violation(&point).is_none() {
                let obj = dot(weights, &point);
                best = Some(best.map_or(obj, |b: i64| b.min(obj)));
            }
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == n {
                    return best;
                }
                point[i] += 1;
                if point[i] <= hi {
                    break;
                }
                point[i] = lo;
                i += 1;
            }
        }
    }

    fn check_against_brute(system: &DifferenceSystem, weights: &[i64]) {
        let sol = minimize(system, weights).expect("solvable");
        assert!(system.first_violation(&sol.assignment).is_none(), "solution feasible");
        assert_eq!(dot(weights, &sol.assignment), sol.objective);
        let reference = brute_force(system, weights, -6, 6).expect("brute found a point");
        assert_eq!(sol.objective, reference, "objective must match brute force");
    }

    #[test]
    fn minimize_span() {
        // Chain x0 <= x1 <= x2, each step >= 1; minimize x2 - x0 => 2.
        let mut sys = DifferenceSystem::new(3);
        sys.add_constraint(VarId(0), VarId(1), -1);
        sys.add_constraint(VarId(1), VarId(2), -1);
        let sol = minimize(&sys, &[-1, 0, 1]).unwrap();
        assert_eq!(sol.objective, 2);
        check_against_brute(&sys, &[-1, 0, 1]);
    }

    #[test]
    fn maximize_direction_is_bounded_by_upper_constraints() {
        // minimize x0 - x1 (i.e. push x1 late) with x1 - x0 <= 3: optimum -3.
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(1), VarId(0), 3);
        let sol = minimize(&sys, &[1, -1]).unwrap();
        assert_eq!(sol.objective, -3);
    }

    #[test]
    fn unbounded_detected() {
        // minimize x0 - x1 with only x0 - x1 <= 5: no lower bound on the
        // difference, so the objective diverges.
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(0), VarId(1), 5);
        assert_eq!(minimize(&sys, &[1, -1]).unwrap_err(), SolveError::Unbounded);
    }

    #[test]
    fn unbalanced_weights_rejected() {
        let sys = DifferenceSystem::new(2);
        assert!(matches!(
            minimize(&sys, &[1, 1]).unwrap_err(),
            SolveError::UnbalancedObjective { weight_sum: 2 }
        ));
    }

    #[test]
    fn infeasible_propagates() {
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(0), VarId(1), -1);
        sys.add_constraint(VarId(1), VarId(0), 0);
        assert!(matches!(minimize(&sys, &[-1, 1]).unwrap_err(), SolveError::Infeasible { .. }));
    }

    #[test]
    fn zero_objective_returns_feasible_point() {
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(0), VarId(1), -1);
        let sol = minimize(&sys, &[0, 0]).unwrap();
        assert_eq!(sol.objective, 0);
        assert!(sys.first_violation(&sol.assignment).is_none());
    }

    #[test]
    fn diamond_lifetime_objective() {
        // Diamond: s -> a, b -> t. Dependencies: x_s <= x_a, x_b; x_a, x_b <= x_t.
        // Minimize (x_t - x_s)*2 + (x_a - x_s) with x_t - x_s >= 2.
        let mut sys = DifferenceSystem::new(4); // s=0, a=1, b=2, t=3
        for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3)] {
            sys.add_constraint(VarId(u), VarId(v), 0); // x_u <= x_v
        }
        sys.add_constraint(VarId(0), VarId(3), -2); // x_s - x_t <= -2
        let weights = [-3, 1, 0, 2]; // 2(t-s) + (a-s)
        check_against_brute(&sys, &weights);
        let sol = minimize(&sys, &weights).unwrap();
        assert_eq!(sol.objective, 4); // t-s = 2 forced, a = s optimal
    }

    #[test]
    fn randomized_cross_check_against_brute_force() {
        let mut state = 0xdeadbeefu64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        let mut solved = 0;
        for trial in 0..60 {
            let n = 3 + (trial % 3) as usize; // 3..=5 vars
            let mut sys = DifferenceSystem::new(n);
            for _ in 0..n + 2 {
                let u = rng().unsigned_abs() as usize % n;
                let v = rng().unsigned_abs() as usize % n;
                if u == v {
                    continue;
                }
                sys.add_constraint(VarId(u as u32), VarId(v as u32), rng() % 4);
            }
            // Balanced weights in [-2, 2].
            let mut weights: Vec<i64> = (0..n).map(|_| rng() % 3).collect();
            let s: i64 = weights.iter().sum();
            weights[0] -= s;
            let brute = brute_force(&sys, &weights, -6, 6);
            match minimize(&sys, &weights) {
                Ok(sol) => {
                    assert!(sys.first_violation(&sol.assignment).is_none(), "trial {trial}");
                    let b = brute.expect("brute agrees feasible");
                    assert_eq!(sol.objective, b, "trial {trial}");
                    solved += 1;
                }
                Err(SolveError::Infeasible { .. }) => {
                    assert_eq!(brute, None, "trial {trial}: brute disagrees on feasibility");
                }
                Err(SolveError::Unbounded) => {
                    // Brute force in a box cannot certify unboundedness; just
                    // require that widening the box keeps lowering the optimum.
                    let narrow = brute_force(&sys, &weights, -3, 3);
                    let wide = brute_force(&sys, &weights, -6, 6);
                    if let (Some(n_), Some(w_)) = (narrow, wide) {
                        assert!(w_ < n_, "trial {trial}: claimed unbounded but box optimum stable");
                    }
                }
                Err(e) => panic!("trial {trial}: unexpected error {e}"),
            }
        }
        assert!(solved >= 10, "too few solvable random systems ({solved}) — generator broken?");
    }

    #[test]
    fn solution_is_integral_and_tight_paths_exist() {
        let mut sys = DifferenceSystem::new(3);
        sys.add_constraint(VarId(0), VarId(1), -2);
        sys.add_constraint(VarId(1), VarId(2), -3);
        sys.add_constraint(VarId(0), VarId(2), -4);
        let weights = [-1, 0, 1]; // minimize x2 - x0
        let sol = minimize(&sys, &weights).unwrap();
        assert_eq!(sol.objective, 5); // through the chain: 2 + 3
    }
}
