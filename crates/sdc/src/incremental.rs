//! Warm-started incremental re-solving of the SDC LP.
//!
//! The ISDC loop re-solves the same LP every iteration with only a handful
//! of timing bounds changed — and, by the paper's Alg. 1 invariant, changed
//! *monotonically*: delay estimates only ever decrease, so timing
//! constraints only ever relax (`x_u - x_v <= b` with a larger `b`).
//!
//! **Warm-start invariant.** Relaxing a bound preserves dual feasibility of
//! the previous optimum's potentials: every residual arc's reduced cost
//! `b + pi_u - pi_v` only grows when `b` grows. The only invariant that can
//! break is complementary slackness — a relaxed constraint that carried flow
//! is no longer tight, so its reverse residual arc would go negative. The
//! fix is local: cancel the flow on exactly the relaxed arcs, which
//! re-exposes that supply as node excess, then re-drain with successive
//! shortest paths *from the old potentials*. The number of Dijkstra rounds
//! is bounded by the number of flow-carrying relaxed arcs instead of the
//! total supply, which is what makes per-iteration re-solves cheap.
//!
//! Non-relaxing deltas (a bound that tightens) would break dual feasibility
//! itself, so [`IncrementalSolver::update_bound`] drops the warm state and
//! the next [`IncrementalSolver::solve`] falls back to the cold solve —
//! correctness never depends on the monotonicity holding.
//!
//! Both paths finish with the same canonicalization as [`crate::minimize`],
//! so warm and cold solves of equivalent systems return bit-identical
//! assignments (see `mcf::canonical_assignment`).

use crate::mcf::{
    canonical_assignment, dot, ssp_drain, ssp_drain_serial, CanonGraph, DrainProfile, DrainStats,
    FlowNetwork, LpSolution, SolverScratch,
};
use crate::system::{DifferenceSystem, SolveError, VarId};

/// Persistent warm-solve state: the flow network, its potentials, any
/// excess re-exposed by canceled flow on relaxed arcs, the
/// canonicalization graph's fixed adjacency, and the drain's reusable
/// Dijkstra scratch (versioned buffers + heap), so warm re-drains allocate
/// nothing.
#[derive(Clone, Debug)]
struct WarmState {
    net: FlowNetwork,
    pi: Vec<i64>,
    excess: Vec<i64>,
    canon: CanonGraph,
    scratch: SolverScratch,
    /// True until the state's first drain: the excess is the full supply
    /// (cold start or imported potentials), which wants the diffuse drain
    /// profile; afterwards excess only ever comes from canceled flow on
    /// relaxed arcs, the bulk profile (see [`DrainProfile`]).
    fresh: bool,
}

/// A reusable SDC LP solver that persists the min-cost-flow state across
/// solves and re-solves bound relaxations incrementally.
///
/// Beyond in-process warm re-solves, the solver's dual state can cross
/// solver (and process) boundaries: [`IncrementalSolver::potentials`]
/// exports the final node potentials, and
/// [`IncrementalSolver::warm_from_potentials`] seeds a *fresh* solver with
/// potentials learned elsewhere — from a previous run of the same design,
/// or a neighbouring clock period in a sweep. Imports are validated
/// (`-pi` must satisfy every current constraint) before any state is
/// installed, so a stale or foreign vector can never corrupt a solve; it
/// just falls back to the cold path.
///
/// # Examples
///
/// ```
/// use isdc_sdc::{minimize, DifferenceSystem, IncrementalSolver, VarId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sys = DifferenceSystem::new(3);
/// sys.add_constraint(VarId(0), VarId(1), -2);
/// let timing = sys.add_constraint(VarId(0), VarId(2), -3);
/// sys.add_constraint(VarId(1), VarId(2), -1);
/// let weights = vec![-1, 0, 1];
///
/// let mut solver = IncrementalSolver::new(sys.clone(), weights.clone())?;
/// let cold = solver.solve()?; // first solve is always cold
/// assert!(!solver.last_solve_was_warm());
///
/// // A downstream tool reports the 0->2 path faster than estimated: the
/// // bound relaxes, and the re-solve is warm-started.
/// solver.update_bound(timing, -1);
/// let warm = solver.solve()?;
/// assert!(solver.last_solve_was_warm());
/// assert!(warm.objective <= cold.objective);
///
/// // Bit-identical to solving the relaxed system from scratch.
/// sys.set_bound(timing, -1);
/// assert_eq!(warm, minimize(&sys, &weights)?);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct IncrementalSolver {
    system: DifferenceSystem,
    weights: Vec<i64>,
    zero_objective: bool,
    /// `None` means the next solve must be cold (never solved, or a
    /// non-relaxing delta invalidated the dual state).
    state: Option<WarmState>,
    /// The previous solve's solution, returned verbatim when nothing changed
    /// since. Only valid while `pending` is false.
    cached: Option<LpSolution>,
    /// Whether any bound changed (or warm state was imported) since the last
    /// successful solve. While false, `cached` is exact — in particular the
    /// solution-canonicalization Dijkstra can be skipped entirely.
    ///
    /// This is deliberately narrower than "the flow support is unchanged":
    /// a relaxed bound whose arc carries *no* flow moves no excess, but it
    /// can still move the canonical point (the canonicalization graph
    /// weights every constraint, tight or slack — see
    /// `canonical_point_tracks_slack_constraints` below), so only a true
    /// zero-delta solve may reuse the cached assignment.
    pending: bool,
    last_was_warm: bool,
    /// Constraints the caller has proven implied by the rest of the system
    /// ([`IncrementalSolver::mark_implied`]); their primal edges are pruned
    /// from the canonicalization graph. A bound change clears the flag (the
    /// caller's implication proof referred to the old bound).
    implied: Vec<bool>,
    /// The warm state's canonicalization graph no longer reflects
    /// `implied`; rebuilt lazily at the next solve.
    canon_stale: bool,
    /// Drain counters of the most recent [`IncrementalSolver::solve`]
    /// (zeroed for cached zero-delta solves and feasibility queries).
    last_drain: DrainStats,
    /// Test/bench hook: route solves through the retained serial reference
    /// drain instead of the batched multi-source one.
    serial_drain: bool,
}

impl IncrementalSolver {
    /// Wraps a system and objective for repeated solving. The objective is
    /// fixed for the solver's lifetime; only constraint bounds may change.
    ///
    /// # Errors
    ///
    /// [`SolveError::UnbalancedObjective`] if weights do not sum to zero.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != system.num_vars()`.
    pub fn new(system: DifferenceSystem, weights: Vec<i64>) -> Result<Self, SolveError> {
        assert_eq!(weights.len(), system.num_vars(), "one weight per variable required");
        let weight_sum: i64 = weights.iter().sum();
        if weight_sum != 0 {
            return Err(SolveError::UnbalancedObjective { weight_sum });
        }
        let zero_objective = weights.iter().all(|&w| w == 0);
        let implied = vec![false; system.constraints().len()];
        Ok(Self {
            system,
            weights,
            zero_objective,
            state: None,
            cached: None,
            pending: true,
            last_was_warm: false,
            implied,
            canon_stale: false,
            last_drain: DrainStats::default(),
            serial_drain: false,
        })
    }

    /// The wrapped system (bounds reflect all updates applied so far).
    pub fn system(&self) -> &DifferenceSystem {
        &self.system
    }

    /// The current bound of a constraint.
    ///
    /// # Panics
    ///
    /// Panics if `constraint_id` is out of range.
    pub fn bound(&self, constraint_id: usize) -> i64 {
        self.system.constraints()[constraint_id].bound
    }

    /// Whether the most recent [`IncrementalSolver::solve`] reused warm
    /// state (false for the first solve and after any cold fallback).
    pub fn last_solve_was_warm(&self) -> bool {
        self.last_was_warm
    }

    /// Drain counters of the most recent [`IncrementalSolver::solve`]:
    /// Dijkstra passes run, nodes settled, augmenting paths pushed and flow
    /// delivered. Zero for cached zero-delta re-solves and pure
    /// feasibility queries (no drain runs at all there).
    pub fn last_drain_stats(&self) -> DrainStats {
        self.last_drain
    }

    /// Routes every subsequent solve through the retained single-source
    /// reference drain instead of the batched multi-source one. Results
    /// are bit-identical by construction; only search counts and time
    /// change. A test/bench hook, not a tuning knob.
    #[doc(hidden)]
    pub fn use_reference_drain(&mut self, on: bool) {
        self.serial_drain = on;
    }

    /// Forces the next solve to run cold, discarding warm state.
    pub fn invalidate(&mut self) {
        self.state = None;
        self.cached = None;
        self.pending = true;
    }

    /// The current node potentials, when warm state exists (i.e. after a
    /// successful non-trivial solve). `-potentials` is an optimal primal
    /// assignment of the most recent solve, suitable for re-seeding another
    /// solver over the same variables via
    /// [`IncrementalSolver::warm_from_potentials`].
    pub fn potentials(&self) -> Option<Vec<i64>> {
        self.state.as_ref().map(|s| s.pi.clone())
    }

    /// Seeds warm state from externally-learned potentials (a previous run
    /// of the same design, a neighbouring sweep point, or a persisted
    /// snapshot), so the next [`IncrementalSolver::solve`] skips the
    /// Bellman-Ford feasibility pass and drains the objective's supply
    /// directly from `pi`.
    ///
    /// Returns false — leaving the solver untouched, cold path intact —
    /// unless the import is provably safe: `pi` must cover every variable
    /// and `-pi` must satisfy every current constraint (that is exactly dual
    /// feasibility of the zero flow under `pi`, the invariant successive
    /// shortest paths needs). The subsequent solve is bit-identical to a
    /// cold solve either way; only the route to the optimum changes.
    pub fn warm_from_potentials(&mut self, pi: &[i64]) -> bool {
        let n = self.system.num_vars();
        if pi.len() != n || self.zero_objective {
            return false;
        }
        let x: Vec<i64> = pi.iter().map(|&p| -p).collect();
        if self.system.first_violation(&x).is_some() {
            return false;
        }
        let mut net = FlowNetwork::new(n);
        for c in self.system.constraints() {
            net.add_arc(c.u.index(), c.v.index(), c.bound);
        }
        let excess: Vec<i64> = self.weights.iter().map(|&w| -w).collect();
        let canon = CanonGraph::new_pruned(&self.system, &self.implied);
        self.canon_stale = false;
        let scratch = SolverScratch::new(n);
        self.state = Some(WarmState { net, pi: pi.to_vec(), excess, canon, scratch, fresh: true });
        self.cached = None;
        self.pending = true;
        true
    }

    /// Declares constraints **implied** by the rest of the system: for each
    /// id, some chain of *other* constraints already enforces a bound at
    /// least as tight (e.g. a difference bound of 0 between two variables
    /// connected by a path of 0-bound constraints — the scheduler's
    /// relaxed-to-zero timing arcs, implied by dependency transitivity).
    ///
    /// The solver prunes the primal canonicalization edges of implied
    /// constraints, so re-solves of a heavily-relaxed system stop paying
    /// the canonicalization Dijkstra for constraints that no longer
    /// constrain anything. Results are bit-identical: removing a primal
    /// edge dominated by an equal-or-tighter path cannot move any
    /// shortest-path distance, and the constraint's tight reverse edge (the
    /// complementary-slackness fence, live only while its arc carries flow)
    /// is kept. The flag is dropped automatically if the constraint's bound
    /// changes later, since the implication was proven against the old
    /// bound.
    ///
    /// **Contract:** the caller must only flag genuinely implied
    /// constraints; the solver cannot verify the implication cheaply, and a
    /// wrong flag can move the canonical optimum.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn mark_implied(&mut self, ids: &[usize]) {
        for &ci in ids {
            assert!(ci < self.implied.len(), "constraint id {ci} out of range");
            if !self.implied[ci] {
                self.implied[ci] = true;
                self.canon_stale = true;
            }
        }
    }

    /// Clears implication flags set by [`IncrementalSolver::mark_implied`],
    /// restoring the constraints' primal canonicalization edges. Always
    /// sound (the edges belong to real constraints of the system); used when
    /// a constraint that was dominated stops being so — e.g. the sparsified
    /// scheduler promotes a former bucket member back to representative
    /// after the constraint that dominated it relaxed.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn clear_implied(&mut self, ids: &[usize]) {
        for &ci in ids {
            assert!(ci < self.implied.len(), "constraint id {ci} out of range");
            if self.implied[ci] {
                self.implied[ci] = false;
                self.canon_stale = true;
            }
        }
    }

    /// Appends a new constraint `x_u - x_v <= bound` to the system,
    /// returning its id. The constraint set was historically frozen at
    /// construction; sparsified emission needs late additions — a delay or
    /// clock change can promote a pair that never had a constraint (its
    /// bound used to be dominated by another pair's) into needing its own.
    ///
    /// Warm state survives the append exactly when the current optimum
    /// `-pi` already satisfies the new bound: the new arc then carries zero
    /// flow at nonnegative reduced cost, so dual feasibility is intact and
    /// the next solve re-drains warm. (Monotone-feedback promotions always
    /// pass this test: the promoted bound is implied-or-looser than the
    /// chain the old optimum satisfied.) Otherwise the warm state is
    /// dropped and the next solve runs cold — same contract as a
    /// tightening through [`IncrementalSolver::update_bound`].
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range.
    pub fn add_constraint(&mut self, u: VarId, v: VarId, bound: i64) -> usize {
        let id = self.system.add_constraint(u, v, bound);
        self.implied.push(false);
        self.cached = None;
        self.pending = true;
        self.canon_stale = true;
        if let Some(state) = &mut self.state {
            // Arcs append in constraint order, so the `2 * id` arc-index
            // mapping every warm structure relies on stays intact.
            state.net.add_arc(u.index(), v.index(), bound);
            if bound + state.pi[u.index()] - state.pi[v.index()] < 0 {
                // The current optimum violates the new constraint: the
                // fresh arc's reduced cost is negative, so the potentials
                // are no longer dual-feasible.
                self.state = None;
            }
        }
        id
    }

    /// Changes a constraint's bound. A relaxation (`new_bound` larger) is
    /// folded into the warm state: the arc's cost is rewritten and any flow
    /// it carried is canceled back into node excess, to be re-routed by the
    /// next solve. A tightening invalidates the warm state (the old
    /// potentials may no longer be dual-feasible), so the next solve falls
    /// back to the cold path.
    ///
    /// # Panics
    ///
    /// Panics if `constraint_id` is out of range.
    pub fn update_bound(&mut self, constraint_id: usize, new_bound: i64) {
        let old = self.system.constraints()[constraint_id].bound;
        if new_bound == old {
            return;
        }
        self.cached = None;
        self.pending = true;
        if self.implied[constraint_id] {
            // The implication was proven against the old bound; restore the
            // constraint's primal canonicalization edge.
            self.implied[constraint_id] = false;
            self.canon_stale = true;
        }
        if new_bound < old {
            // Tightening: not covered by the warm-start invariant.
            self.state = None;
        } else if let Some(state) = &mut self.state {
            let arc = 2 * constraint_id;
            state.net.set_cost(arc, new_bound);
            let flow = state.net.flow(arc);
            if flow > 0 {
                // The relaxed constraint was tight and carried flow; with
                // the larger bound it is no longer tight, so the flow must
                // be re-routed. Cancel it: the tail gets its supply back,
                // the head owes it again.
                state.net.push(arc, -flow);
                let c = self.system.constraints()[constraint_id];
                state.excess[c.u.index()] += flow;
                state.excess[c.v.index()] -= flow;
            }
        }
        self.system.set_bound(constraint_id, new_bound);
    }

    /// Solves the LP — warm when valid state is available, cold otherwise.
    /// Returns the same canonical optimum as [`crate::minimize`] on the
    /// current system.
    ///
    /// # Errors
    ///
    /// See [`crate::minimize`].
    pub fn solve(&mut self) -> Result<LpSolution, SolveError> {
        let n = self.system.num_vars();
        self.last_drain = DrainStats::default();
        if self.zero_objective {
            // Pure feasibility query: any satisfying point is optimal.
            let _span = isdc_telemetry::span("solve:feasibility");
            let assignment = self.system.solve_feasible()?;
            let objective = dot(&self.weights, &assignment);
            self.last_was_warm = false;
            return Ok(LpSolution { assignment, objective });
        }
        if !self.pending {
            if let Some(cached) = &self.cached {
                // Zero deltas since the last solve: the flow, its support,
                // *and* every bound are unchanged, so the canonical optimum
                // is too — skip the drain and the canonicalization Dijkstra.
                self.last_was_warm = true;
                return Ok(cached.clone());
            }
        }
        let warm = self.state.is_some();
        if self.state.is_none() {
            // Cold start: feasibility first — it also seeds the potentials
            // (pi_u = -x_u makes every reduced cost b - x_u + x_v >= 0).
            let _span = isdc_telemetry::span("solve:feasibility");
            let feasible = self.system.solve_feasible()?;
            let mut net = FlowNetwork::new(n);
            for c in self.system.constraints() {
                net.add_arc(c.u.index(), c.v.index(), c.bound);
            }
            // Node v needs net inflow w_v; excess = -w (positive = source).
            let excess: Vec<i64> = self.weights.iter().map(|&w| -w).collect();
            let pi: Vec<i64> = feasible.iter().map(|&x| -x).collect();
            let canon = CanonGraph::new_pruned(&self.system, &self.implied);
            self.canon_stale = false;
            let scratch = SolverScratch::new(n);
            self.state = Some(WarmState { net, pi, excess, canon, scratch, fresh: true });
        }
        if self.canon_stale {
            // Implication flags changed since the canonicalization graph was
            // built; re-derive it (cheap counting sort) so the Dijkstra
            // below skips every pruned primal edge.
            let state = self.state.as_mut().expect("state just ensured");
            state.canon = CanonGraph::new_pruned(&self.system, &self.implied);
            self.canon_stale = false;
        }
        let state = self.state.as_mut().expect("state just ensured");
        let mut drain = DrainStats::default();
        let drain_span = isdc_telemetry::span("solve:drain");
        let profile = if state.fresh { DrainProfile::Diffuse } else { DrainProfile::Bulk };
        let drained = if self.serial_drain {
            ssp_drain_serial(&mut state.net, &mut state.excess, &mut state.pi, &mut drain)
        } else {
            ssp_drain(
                &mut state.net,
                &mut state.excess,
                &mut state.pi,
                profile,
                &mut state.scratch,
                &mut drain,
            )
        };
        drain_span.note(
            "drain_stats",
            vec![
                ("dijkstras", isdc_telemetry::ArgValue::U64(drain.dijkstras)),
                ("nodes_settled", isdc_telemetry::ArgValue::U64(drain.nodes_settled)),
                ("paths", isdc_telemetry::ArgValue::U64(drain.paths)),
                ("flow_pushed", isdc_telemetry::ArgValue::U64(drain.flow_pushed)),
            ],
        );
        drop(drain_span);
        self.last_drain = drain;
        state.fresh = false;
        if let Err(e) = drained {
            // A failed drain leaves partial flow behind; poison the state.
            self.state = None;
            self.cached = None;
            self.last_was_warm = false;
            return Err(e);
        }
        self.last_was_warm = warm;
        let state = self.state.as_ref().expect("state retained on success");
        let x_star: Vec<i64> = state.pi.iter().map(|&p| -p).collect();
        let canon_span = isdc_telemetry::span("solve:canonicalize");
        let assignment = canonical_assignment(&self.system, &state.net, &x_star, &state.canon);
        drop(canon_span);
        debug_assert!(self.system.first_violation(&assignment).is_none());
        let objective = dot(&self.weights, &assignment);
        debug_assert_eq!(
            objective,
            dot(&self.weights, &x_star),
            "canonicalization must stay on the optimal face"
        );
        let solution = LpSolution { assignment, objective };
        self.cached = Some(solution.clone());
        self.pending = false;
        Ok(solution)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcf::minimize;
    use crate::system::VarId;

    /// Chain + timing system mimicking the scheduler's shape.
    fn chain_system() -> (DifferenceSystem, Vec<i64>, Vec<usize>) {
        let mut sys = DifferenceSystem::new(5);
        for i in 0..4u32 {
            sys.add_constraint(VarId(i), VarId(i + 1), 0); // dependencies
        }
        let timing = vec![
            sys.add_constraint(VarId(0), VarId(2), -2),
            sys.add_constraint(VarId(1), VarId(3), -2),
            sys.add_constraint(VarId(0), VarId(4), -3),
        ];
        (sys, vec![-2, 1, 0, -1, 2], timing)
    }

    #[test]
    fn warm_relaxation_matches_cold_solve() {
        let (sys, weights, timing) = chain_system();
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        solver.solve().unwrap();
        assert!(!solver.last_solve_was_warm());

        // Relax timing bounds step by step; each warm solve must equal a
        // from-scratch minimize of the equivalently-relaxed system.
        let mut reference = sys;
        for (step, &ci) in timing.iter().enumerate() {
            let new_bound = reference.constraints()[ci].bound + 1;
            solver.update_bound(ci, new_bound);
            reference.set_bound(ci, new_bound);
            let warm = solver.solve().unwrap();
            assert!(solver.last_solve_was_warm(), "step {step} should stay warm");
            let cold = minimize(&reference, &weights).unwrap();
            assert_eq!(warm, cold, "step {step}: warm and cold must be bit-identical");
        }
    }

    #[test]
    fn tightening_falls_back_to_cold() {
        let (sys, weights, timing) = chain_system();
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        solver.solve().unwrap();
        // Tighten: the monotone invariant is violated, warm state must drop.
        solver.update_bound(timing[0], -3);
        let sol = solver.solve().unwrap();
        assert!(!solver.last_solve_was_warm(), "tightening must force a cold solve");
        let mut reference = sys;
        reference.set_bound(timing[0], -3);
        assert_eq!(sol, minimize(&reference, &weights).unwrap());
        // And the solver recovers: a subsequent relaxation is warm again.
        solver.update_bound(timing[0], -2);
        reference.set_bound(timing[0], -2);
        let again = solver.solve().unwrap();
        assert!(solver.last_solve_was_warm());
        assert_eq!(again, minimize(&reference, &weights).unwrap());
    }

    #[test]
    fn no_op_update_keeps_warm_state() {
        let (sys, weights, timing) = chain_system();
        let mut solver = IncrementalSolver::new(sys, weights).unwrap();
        let first = solver.solve().unwrap();
        solver.update_bound(timing[0], solver.bound(timing[0]));
        let second = solver.solve().unwrap();
        assert!(solver.last_solve_was_warm());
        assert_eq!(first, second);
    }

    #[test]
    fn invalidate_forces_cold() {
        let (sys, weights, _) = chain_system();
        let mut solver = IncrementalSolver::new(sys, weights).unwrap();
        solver.solve().unwrap();
        solver.invalidate();
        solver.solve().unwrap();
        assert!(!solver.last_solve_was_warm());
    }

    #[test]
    fn unbalanced_weights_rejected_at_construction() {
        let sys = DifferenceSystem::new(2);
        assert!(matches!(
            IncrementalSolver::new(sys, vec![1, 2]).unwrap_err(),
            SolveError::UnbalancedObjective { weight_sum: 3 }
        ));
    }

    #[test]
    fn zero_objective_is_a_feasibility_query() {
        let mut sys = DifferenceSystem::new(2);
        sys.add_constraint(VarId(0), VarId(1), -1);
        let mut solver = IncrementalSolver::new(sys.clone(), vec![0, 0]).unwrap();
        let sol = solver.solve().unwrap();
        assert_eq!(sol.objective, 0);
        assert_eq!(sol.assignment, sys.solve_feasible().unwrap());
    }

    #[test]
    fn exported_potentials_warm_start_a_fresh_solver() {
        let (sys, weights, _) = chain_system();
        let mut first = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        let reference = first.solve().unwrap();
        let pi = first.potentials().expect("warm state after a solve");

        let mut second = IncrementalSolver::new(sys, weights).unwrap();
        assert!(second.warm_from_potentials(&pi), "optimal potentials must validate");
        let warm = second.solve().unwrap();
        assert!(second.last_solve_was_warm(), "imported potentials must count as warm");
        assert_eq!(warm, reference, "the solve path must not change the canonical optimum");
    }

    #[test]
    fn potentials_from_a_tighter_system_warm_start_a_looser_one() {
        // The sweep scenario: the optimum at a short clock period satisfies
        // the relaxed bounds of a longer one, so its potentials import.
        let (mut sys, weights, timing) = chain_system();
        let mut tight = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        tight.solve().unwrap();
        let pi = tight.potentials().unwrap();
        for &ci in &timing {
            let b = sys.constraints()[ci].bound;
            sys.set_bound(ci, b + 1);
        }
        let mut loose = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        assert!(loose.warm_from_potentials(&pi));
        let warm = loose.solve().unwrap();
        assert!(loose.last_solve_was_warm());
        assert_eq!(warm, minimize(&sys, &weights).unwrap());
    }

    #[test]
    fn infeasible_potential_import_is_rejected_and_harmless() {
        let (sys, weights, _) = chain_system();
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        // All-zero potentials put every variable at 0, violating the -2
        // timing bounds; and a wrong-length vector must never install.
        assert!(!solver.warm_from_potentials(&vec![0; sys.num_vars()]));
        assert!(!solver.warm_from_potentials(&[1, 2]));
        let sol = solver.solve().unwrap();
        assert!(!solver.last_solve_was_warm(), "rejected import must leave the cold path");
        assert_eq!(sol, minimize(&sys, &weights).unwrap());
    }

    #[test]
    fn zero_delta_resolve_returns_cached_solution_without_rework() {
        let (sys, weights, timing) = chain_system();
        let mut solver = IncrementalSolver::new(sys, weights).unwrap();
        let first = solver.solve().unwrap();
        // No updates at all, and an update that does not change the bound:
        // both must serve the cached canonical solution, warm.
        let second = solver.solve().unwrap();
        assert!(solver.last_solve_was_warm());
        assert_eq!(first, second);
        solver.update_bound(timing[0], solver.bound(timing[0]));
        let third = solver.solve().unwrap();
        assert!(solver.last_solve_was_warm());
        assert_eq!(first, third);
    }

    #[test]
    fn canonical_point_tracks_slack_constraints() {
        // Why the cached-solution skip requires *zero* deltas rather than
        // just an unchanged flow support: relax a bound whose arc carries no
        // flow. No excess is created, the drain is a no-op, the optimal
        // objective is unchanged — yet the canonical (componentwise-maximal)
        // optimum moves, because slack constraints still fence it in.
        let mut sys = DifferenceSystem::new(3);
        sys.add_constraint(VarId(0), VarId(1), -1); // x0 <= x1 - 1
        let slack = sys.add_constraint(VarId(2), VarId(1), -2); // x2 <= x1 - 2
        let weights = vec![-1, 1, 0]; // minimize x1 - x0: x2 is unweighted
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        let before = solver.solve().unwrap();
        solver.update_bound(slack, -1);
        sys.set_bound(slack, -1);
        let after = solver.solve().unwrap();
        assert!(solver.last_solve_was_warm(), "a no-flow relaxation stays warm");
        assert_eq!(after, minimize(&sys, &weights).unwrap(), "must match a cold re-solve");
        assert_eq!(before.objective, after.objective, "the optimum itself is unchanged");
        assert_ne!(before.assignment, after.assignment, "but the canonical point moved");
    }

    #[test]
    fn implied_constraints_prune_without_moving_the_canonical_point() {
        // Dependency chain 0 -> 1 -> 2 -> 3 (all 0-bounds) plus timing
        // constraints that the chain implies once relaxed to 0. Pruning
        // their primal canonicalization edges must leave every solve
        // bit-identical to a from-scratch minimize.
        let mut sys = DifferenceSystem::new(4);
        for i in 0..3u32 {
            sys.add_constraint(VarId(i), VarId(i + 1), 0);
        }
        let t02 = sys.add_constraint(VarId(0), VarId(2), -1);
        let t13 = sys.add_constraint(VarId(1), VarId(3), -2);
        let weights = vec![-2, 1, -1, 2];
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        solver.solve().unwrap();

        // Relax both timing bounds to 0: now implied by the chain.
        for ci in [t02, t13] {
            solver.update_bound(ci, 0);
            sys.set_bound(ci, 0);
        }
        solver.mark_implied(&[t02, t13]);
        let pruned = solver.solve().unwrap();
        assert!(solver.last_solve_was_warm());
        assert_eq!(pruned, minimize(&sys, &weights).unwrap(), "pruning moved the optimum");

        // Marking again is a no-op; re-solving returns the cached solution.
        solver.mark_implied(&[t02, t13]);
        assert_eq!(solver.solve().unwrap(), pruned);

        // Tightening an implied constraint clears its flag and the cold
        // rebuild restores its primal edge — still bit-identical.
        solver.update_bound(t02, -2);
        sys.set_bound(t02, -2);
        let tightened = solver.solve().unwrap();
        assert!(!solver.last_solve_was_warm(), "tightening forces the cold path");
        assert_eq!(tightened, minimize(&sys, &weights).unwrap());
    }

    #[test]
    fn implied_pruning_keeps_flow_carrying_tight_edges() {
        // A zero-bound constraint parallel to a zero-bound chain, with an
        // objective that pushes flow somewhere: whichever arc the drain
        // routes through, the pruned canonicalization must agree with a
        // fresh solver (which routes identically) and with `minimize`.
        let mut sys = DifferenceSystem::new(3);
        sys.add_constraint(VarId(0), VarId(1), 0);
        sys.add_constraint(VarId(1), VarId(2), 0);
        let direct = sys.add_constraint(VarId(0), VarId(2), -1);
        let weights = vec![-3, 1, 2];
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        solver.solve().unwrap();
        solver.update_bound(direct, 0);
        sys.set_bound(direct, 0);
        solver.mark_implied(&[direct]);
        let got = solver.solve().unwrap();
        assert_eq!(got, minimize(&sys, &weights).unwrap());
    }

    #[test]
    fn satisfied_late_constraint_keeps_warm_state() {
        // Append a constraint the current optimum already satisfies: the
        // solver must stay warm and still match a from-scratch minimize of
        // the extended system.
        let (sys, weights, _) = chain_system();
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        let before = solver.solve().unwrap();
        let x = &before.assignment;
        // A bound one looser than what the optimum already achieves.
        let (u, v) = (VarId(0), VarId(3));
        let slack_bound = x[0] - x[3] + 1;
        let id = solver.add_constraint(u, v, slack_bound);
        let warm = solver.solve().unwrap();
        assert!(solver.last_solve_was_warm(), "a satisfied append must not drop warm state");
        let mut reference = sys;
        assert_eq!(reference.add_constraint(u, v, slack_bound), id);
        assert_eq!(warm, minimize(&reference, &weights).unwrap());
        // The new constraint behaves like any other from here on.
        solver.update_bound(id, slack_bound + 1);
        reference.set_bound(id, slack_bound + 1);
        let again = solver.solve().unwrap();
        assert!(solver.last_solve_was_warm());
        assert_eq!(again, minimize(&reference, &weights).unwrap());
    }

    #[test]
    fn violated_late_constraint_falls_back_cold() {
        let (sys, weights, _) = chain_system();
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        let before = solver.solve().unwrap();
        let x = &before.assignment;
        // A bound strictly tighter than the current optimum: the old
        // potentials cannot be dual-feasible for the extended system.
        let (u, v) = (VarId(1), VarId(4));
        let tight_bound = x[1] - x[4] - 1;
        solver.add_constraint(u, v, tight_bound);
        let sol = solver.solve().unwrap();
        assert!(!solver.last_solve_was_warm(), "a violated append must run cold");
        let mut reference = sys;
        reference.add_constraint(u, v, tight_bound);
        assert_eq!(sol, minimize(&reference, &weights).unwrap());
    }

    #[test]
    fn add_constraint_before_first_solve_just_extends_the_system() {
        let (mut sys, weights, _) = chain_system();
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        solver.add_constraint(VarId(0), VarId(4), -4);
        sys.add_constraint(VarId(0), VarId(4), -4);
        let sol = solver.solve().unwrap();
        assert!(!solver.last_solve_was_warm());
        assert_eq!(sol, minimize(&sys, &weights).unwrap());
    }

    #[test]
    fn clear_implied_restores_the_canonical_edge() {
        // Mark a constraint implied while it genuinely is, then relax the
        // constraint that dominated it and clear the flag: every solve must
        // stay bit-identical to a from-scratch minimize.
        let mut sys = DifferenceSystem::new(3);
        sys.add_constraint(VarId(0), VarId(1), 0);
        sys.add_constraint(VarId(1), VarId(2), 0);
        let dominator = sys.add_constraint(VarId(0), VarId(1), -2);
        let member = sys.add_constraint(VarId(0), VarId(2), -2);
        let weights = vec![-1, 0, 1];
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        solver.solve().unwrap();
        // `member` is implied: dominator (-2) plus the 1->2 zero-edge.
        solver.mark_implied(&[member]);
        let pruned = solver.solve().unwrap();
        assert_eq!(pruned, minimize(&sys, &weights).unwrap());
        // Relax the dominator: `member` must become a real constraint again.
        solver.update_bound(dominator, 0);
        sys.set_bound(dominator, 0);
        solver.clear_implied(&[member]);
        let restored = solver.solve().unwrap();
        assert!(solver.last_solve_was_warm(), "the relaxation path stays warm");
        assert_eq!(restored, minimize(&sys, &weights).unwrap());
        // Clearing an unset flag is a no-op.
        solver.clear_implied(&[member]);
        assert_eq!(solver.solve().unwrap(), restored);
    }

    #[test]
    fn bulk_relaxation_batches_the_drain() {
        // Many independent weighted pairs, each with a flow-carrying timing
        // bound. Relaxing all of them at once re-exposes every pair's
        // supply in one batch; the multi-source drain must settle them in
        // far fewer Dijkstra passes than augmenting paths — the serial
        // reference pays exactly one Dijkstra per path.
        const PAIRS: u32 = 80;
        let mut sys = DifferenceSystem::new(2 * PAIRS as usize);
        let mut arcs = Vec::new();
        let mut weights = vec![0i64; 2 * PAIRS as usize];
        for k in 0..PAIRS {
            arcs.push(sys.add_constraint(VarId(2 * k), VarId(2 * k + 1), -3));
            weights[(2 * k) as usize] = -1;
            weights[(2 * k + 1) as usize] = 1;
        }
        let mut solver = IncrementalSolver::new(sys.clone(), weights.clone()).unwrap();
        solver.solve().unwrap();
        let mut reference = solver.clone();
        reference.use_reference_drain(true);

        for &ci in &arcs {
            solver.update_bound(ci, -1);
            reference.update_bound(ci, -1);
            sys.set_bound(ci, -1);
        }
        let batched = solver.solve().unwrap();
        assert!(solver.last_solve_was_warm());
        assert_eq!(batched, minimize(&sys, &weights).unwrap());

        let stats = solver.last_drain_stats();
        assert_eq!(stats.paths, u64::from(PAIRS), "one augmenting path per relaxed pair");
        assert!(stats.dijkstras <= stats.paths, "never more passes than paths: {stats:?}");
        assert!(stats.dijkstras < stats.paths, "a bulk relaxation must actually batch: {stats:?}");

        let serial = reference.solve().unwrap();
        assert_eq!(serial, batched, "reference drain must agree bit-for-bit");
        let serial_stats = reference.last_drain_stats();
        assert_eq!(
            serial_stats.dijkstras, serial_stats.paths,
            "the serial drain pays one Dijkstra per path: {serial_stats:?}"
        );
        assert_eq!(serial_stats.flow_pushed, stats.flow_pushed);
    }

    #[test]
    fn drain_stats_reset_on_cached_and_feasibility_solves() {
        let (sys, weights, timing) = chain_system();
        let mut solver = IncrementalSolver::new(sys.clone(), weights).unwrap();
        solver.solve().unwrap();
        assert!(solver.last_drain_stats().dijkstras > 0, "the cold solve drains");
        // Zero-delta re-solve: served from cache, no drain at all.
        solver.solve().unwrap();
        assert_eq!(solver.last_drain_stats(), DrainStats::default());
        // A relaxation re-drains only what its canceled flow re-exposed.
        solver.update_bound(timing[0], solver.bound(timing[0]) + 1);
        solver.solve().unwrap();
        let warm = solver.last_drain_stats();
        assert!(warm.dijkstras <= warm.paths, "{warm:?}");
        // Feasibility queries never touch the flow network.
        let mut feas = IncrementalSolver::new(sys, vec![0; 5]).unwrap();
        feas.solve().unwrap();
        assert_eq!(feas.last_drain_stats(), DrainStats::default());
    }

    #[test]
    fn relaxing_many_bounds_at_once_stays_warm_and_exact() {
        // Wider randomized soak: a dense feasible system relaxed in batches.
        let mut state = 0xfeed_f00du64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as i64
        };
        for trial in 0..20 {
            let n = 4 + (trial % 4) as usize;
            let hidden: Vec<i64> = (0..n).map(|_| rng() % 8).collect();
            let mut sys = DifferenceSystem::new(n);
            for _ in 0..3 * n {
                let u = rng().unsigned_abs() as usize % n;
                let v = rng().unsigned_abs() as usize % n;
                if u == v {
                    continue;
                }
                // Feasible by construction relative to the hidden point.
                sys.add_constraint(
                    VarId(u as u32),
                    VarId(v as u32),
                    hidden[u] - hidden[v] + (rng() % 3).abs(),
                );
            }
            let mut weights: Vec<i64> = (0..n).map(|_| rng() % 3).collect();
            let s: i64 = weights.iter().sum();
            weights[0] -= s;
            let Ok(mut solver) = IncrementalSolver::new(sys.clone(), weights.clone()) else {
                continue;
            };
            let Ok(_) = solver.solve() else { continue };
            let mut reference = sys;
            for _round in 0..4 {
                for ci in 0..reference.constraints().len() {
                    if rng() % 3 == 0 {
                        let b = reference.constraints()[ci].bound + 1 + (rng() % 2).abs();
                        solver.update_bound(ci, b);
                        reference.set_bound(ci, b);
                    }
                }
                let warm = solver.solve().unwrap();
                assert!(solver.last_solve_was_warm(), "trial {trial}");
                let cold = minimize(&reference, &weights).unwrap();
                assert_eq!(warm, cold, "trial {trial}: warm diverged from cold");
            }
        }
    }
}
