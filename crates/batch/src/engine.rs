//! The worker pool: shard planning, the shared-index queue, execution and
//! deterministic aggregation.
//!
//! # Execution model
//!
//! [`run_batch`] plans a shard list ([`plan_shards`]), spawns
//! `min(threads, shards)` scoped worker threads, and lets them
//! **self-schedule**: a single shared atomic index hands out shards in plan
//! order, so a worker that drew a cheap shard immediately pulls the next
//! one while a worker chewing on a big design keeps chewing (the classic
//! chunked self-scheduling queue — contention is one `fetch_add` per shard,
//! which at scheduling granularity is noise). Every worker session shares
//! one [`DelayCache`], so a subgraph evaluated by any worker is a hit for
//! the whole fleet, and the LP potentials each run publishes (keyed by
//! design fingerprint and clock) warm-start whichever worker next touches
//! that design — including a sharded sibling of the same sweep.
//!
//! # Determinism
//!
//! Schedules are **bit-identical to the serial session sweep** for every
//! job, regardless of thread count, shard boundaries, or execution
//! interleaving: both shared assets are pure accelerators (cached delay
//! reports replay bit-identically; imported potentials and retargeted
//! engines are validated and canonicalized, so the LP optimum never depends
//! on the solve path). Results are slotted by shard index and stitched back
//! in plan order, so the aggregate is deterministic too — only the timing
//! and cache-counter fields vary run to run. [`serial_reference`] runs the
//! exact single-threaded baseline the guarantee is stated against;
//! `tests/batch.rs` enforces it across randomized job mixes.
//!
//! # Fault tolerance
//!
//! Every shard executes inside `catch_unwind`, so a panicking worker —
//! whether a real bug or an injected `isdc_faults` chaos fault — is
//! **isolated**: the panic becomes a structured [`JobError`] and every
//! shared asset stays usable (slot access recovers from lock poisoning;
//! the shared cache's inserts are single-call atomic, so a panic can lose
//! at most its own insert). Failures classified as *transient* — panics
//! and injected faults — retry up to [`BatchOptions::max_retries`] times
//! with a deterministic exponential backoff (no wall-clock randomness;
//! each retry is a `shard:retry` telemetry span). Real solver errors are
//! deterministic and never retried; infeasible periods are not failures
//! at all (they record as infeasible points — see
//! [`isdc_core::sweep_clock_period`]).
//!
//! What happens to the *rest* of the queue is the [`FailPolicy`]:
//! [`FailPolicy::Abort`] (the default) stops handing out shards, so later
//! jobs report [`JobStatus::Skipped`]; [`FailPolicy::KeepGoing`] finishes
//! every other job, skipping only the failed job's own remaining shards.
//! Either way [`run_batch`] returns a [`BatchReport`] whose per-job
//! [`JobStatus`] pinpoints each failure; only *planning* errors (an
//! unknown design name) fail the call itself. A non-`Ok` job's points are
//! withheld — a partial sweep's contents would depend on thread timing —
//! so the report stays deterministic, and unaffected jobs remain
//! bit-identical to the serial reference because the shared assets are
//! pure accelerators.
//!
//! # Deadlines and stalls
//!
//! Three budgets bound a batch's wall clock, all built on `isdc_cancel`
//! cooperative tokens (one relaxed atomic load per checkpoint when no
//! budget is armed):
//!
//! - **per-job** [`Job::deadline_ms`], clocked from the job's first shard
//!   claim;
//! - **fleet** [`BatchOptions::fleet_deadline`], clocked from the
//!   [`run_batch`] call — expiry cancels in-flight shards and abandons the
//!   queue;
//! - the **stall watchdog** [`BatchOptions::stall_timeout`], which cancels
//!   a worker whose flight-recorder heartbeat goes silent mid-shard (e.g.
//!   a `stall` chaos fault or a hung oracle).
//!
//! A tripped budget is **terminal, never retried** — the affected job
//! reports [`JobStatus::TimedOut`] with its elapsed time, completed-point
//! count, and the cancelled worker's flight tail. Cancellation is
//! clean-cut: every point completed before the cut is bit-identical to the
//! uncancelled run's prefix, the shared cache and session state stay
//! consistent (warm state is never poisoned), and sibling jobs are
//! unaffected.

use crate::spec::{Job, JobKind};
use isdc_cache::{CacheStats, DelayCache};
use isdc_cancel::CancelToken;
use isdc_core::{
    min_feasible_period, sweep_clock_period, IsdcConfig, IsdcSession, ScheduleError, SweepPoint,
};
use isdc_ir::Graph;
use isdc_synth::{DelayOracle, OpDelayModel};
use isdc_techlib::Picos;
use isdc_telemetry::{ArgValue, MetricValue, MetricsFrame};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One schedulable design in the engine's table: jobs name it, workers
/// build sessions over it.
#[derive(Clone, Debug)]
pub struct BatchDesign {
    /// The name jobs refer to.
    pub name: String,
    /// The dataflow graph.
    pub graph: Graph,
    /// The run configuration (its `clock_period_ps` is overridden per
    /// point; its `cache`/`cache_file` are ignored — sessions always
    /// memoize through the batch cache).
    pub base: IsdcConfig,
}

/// What the queue does once a shard has failed terminally (i.e. after its
/// retry budget is spent).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FailPolicy {
    /// Stop handing out new shards: running shards finish, queued ones are
    /// abandoned, and every job the abort cut short reports
    /// [`JobStatus::Skipped`]. The strict default — one bad job means the
    /// batch needs attention, so don't burn time on the rest.
    #[default]
    Abort,
    /// Keep scheduling every job that can still make progress: only the
    /// failed job's own remaining shards are skipped, every other job
    /// completes normally. The CLI's `--keep-going`.
    KeepGoing,
}

/// Batch execution knobs. The default resolves thread count and shard size
/// automatically, aborts on first failure, and never retries.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchOptions {
    /// Worker threads (each owns one [`IsdcSession`] at a time). 0 means
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Maximum sweep points per shard; 0 picks automatically — no
    /// splitting at 1 thread, otherwise `ceil(total / (2 * threads))`, so
    /// a batch with fewer jobs than threads still fills the pool while a
    /// wide batch keeps whole sweeps (and their in-shard ascending warm
    /// starts) together.
    pub shard_points: usize,
    /// What the queue does after a terminal shard failure.
    pub fail_policy: FailPolicy,
    /// Retry budget per shard for *transient* failures — panics and
    /// injected faults. Real solver errors are deterministic and never
    /// retried. Retries back off exponentially (1ms · 2^attempt, capped at
    /// 64ms) with no wall-clock randomness, so chaos runs replay
    /// identically.
    pub max_retries: u32,
    /// Fleet-level wall-clock budget for the whole batch, measured from
    /// the [`run_batch`] call. When it expires, in-flight shards are
    /// cancelled at their next checkpoint and queued shards are abandoned;
    /// every job the budget cut short reports [`JobStatus::TimedOut`].
    /// `None` = unbounded.
    pub fleet_deadline: Option<Duration>,
    /// Stall watchdog: a worker whose flight-recorder heartbeat goes
    /// silent on an in-flight shard for longer than this is cancelled, and
    /// its shard times out. Polled at `stall_timeout / 4` (min 2ms), so
    /// detection lands within ~1.25× the timeout. `None` disables the
    /// watchdog.
    pub stall_timeout: Option<Duration>,
}

impl BatchOptions {
    fn resolved_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism().map_or(1, usize::from)
        }
    }
}

/// Batch-level failures.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchError {
    /// A job named a design absent from the design table.
    UnknownDesign {
        /// Index of the offending job.
        job: usize,
        /// The unresolved name.
        design: String,
    },
    /// A job failed with a real solver error (infeasible periods are
    /// recorded as infeasible points, not errors). Raised by the strict
    /// [`serial_reference`] baseline; [`run_batch`] reports execution
    /// failures per job via [`JobStatus`] instead.
    Schedule {
        /// Index of the owning job.
        job: usize,
        /// The design being scheduled.
        design: String,
        /// The underlying failure.
        error: ScheduleError,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::UnknownDesign { job, design } => {
                write!(f, "job {job}: unknown design `{design}`")
            }
            BatchError::Schedule { job, design, error } => {
                write!(f, "job {job} ({design}): {error}")
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// How a shard failed.
#[derive(Clone, Debug, PartialEq)]
pub enum JobErrorKind {
    /// The worker panicked; the panic was caught at the shard boundary by
    /// `catch_unwind` and never crossed into the rest of the fleet.
    Panic,
    /// Scheduling returned a real error (including the chaos-only
    /// [`ScheduleError::Injected`]).
    Schedule(ScheduleError),
}

/// A structured per-job failure: exactly which shard of which job failed,
/// how, and after how many retries.
#[derive(Clone, Debug, PartialEq)]
pub struct JobError {
    /// Index of the owning job in the submitted list.
    pub job: usize,
    /// Which of the job's shards failed (stitch order).
    pub shard: usize,
    /// The design being scheduled.
    pub design: String,
    /// Panic or real scheduling error.
    pub kind: JobErrorKind,
    /// Human-readable cause: the panic payload or the error display.
    pub message: String,
    /// Retries this shard spent before giving up.
    pub retries: u32,
    /// The failing worker's flight-recorder tail, snapshotted right after
    /// the final attempt: the last events (spans, notes, the `fault`
    /// marker naming an injected site) before death, oldest first.
    pub flight: Vec<isdc_telemetry::FlightEvent>,
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            JobErrorKind::Panic => "panicked",
            JobErrorKind::Schedule(_) => "failed",
        };
        write!(
            f,
            "job {} ({}) shard {} {what}: {}",
            self.job, self.design, self.shard, self.message
        )?;
        if self.retries > 0 {
            write!(f, " (after {} retries)", self.retries)?;
        }
        Ok(())
    }
}

impl std::error::Error for JobError {}

/// A job's terminal state in a [`BatchReport`].
#[derive(Clone, Debug, PartialEq, Default)]
pub enum JobStatus {
    /// Every shard completed; the job's points are stitched in plan order.
    #[default]
    Ok,
    /// A shard failed terminally. The job's points are withheld — which of
    /// its other shards ran would depend on thread timing — and the error
    /// pinpoints job, shard and cause.
    Failed(JobError),
    /// A deadline tripped — the job's own [`Job::deadline_ms`], the fleet
    /// budget ([`BatchOptions::fleet_deadline`]) or the stall watchdog.
    /// Terminal and **never retried**: a spent budget does not replenish.
    /// Points are withheld like any other non-Ok status; the fields record
    /// what the cut left behind.
    TimedOut {
        /// Wall-clock the job's shards spent before the cut, in
        /// milliseconds.
        elapsed_ms: u64,
        /// Sweep points / probes that completed across the job's shards
        /// before cancellation landed (each one bit-identical to the
        /// uncancelled run's corresponding point — cancellation is
        /// clean-cut).
        points_completed: usize,
        /// The cancelled worker's flight-recorder tail (like
        /// [`JobError::flight`]): the last spans and notes before the cut,
        /// e.g. the stall site in a chaos run. Empty when the job never
        /// started (the fleet budget expired first).
        flight: Vec<isdc_telemetry::FlightEvent>,
    },
    /// The queue aborted ([`FailPolicy::Abort`]) before the job could
    /// finish; any partial points are withheld.
    Skipped,
}

impl JobStatus {
    /// True for [`JobStatus::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, JobStatus::Ok)
    }

    /// The failure, for [`JobStatus::Failed`].
    pub fn error(&self) -> Option<&JobError> {
        match self {
            JobStatus::Failed(e) => Some(e),
            _ => None,
        }
    }
}

/// One planned unit of worker work: a contiguous slice of a job.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardJob {
    /// Index of the owning job in the submitted job list.
    pub job: usize,
    /// Index into the design table.
    pub design: usize,
    /// Position among the job's shards (stitch-back order).
    pub shard: usize,
    /// The shard's work — for sweeps, a contiguous subsequence of the
    /// job's periods (in the job's order, so ascending jobs stay ascending
    /// inside every shard).
    pub kind: JobKind,
}

/// Expands jobs into the shard list the worker pool consumes.
///
/// Sweeps split into contiguous period chunks of at most `shard_points`
/// (see [`BatchOptions::shard_points`] for the automatic size); searches
/// are inherently sequential and stay whole. Chunking never reorders
/// periods, so a shard of an ascending sweep still warm-starts each point
/// from its tighter neighbour.
///
/// # Errors
///
/// [`BatchError::UnknownDesign`] when a job names no design in `designs`.
pub fn plan_shards(
    designs: &[BatchDesign],
    jobs: &[Job],
    options: &BatchOptions,
) -> Result<Vec<ShardJob>, BatchError> {
    let threads = options.resolved_threads();
    let shard_points = if options.shard_points > 0 {
        options.shard_points
    } else if threads <= 1 {
        usize::MAX
    } else {
        let total: usize = jobs.iter().map(Job::planned_points).sum();
        total.div_ceil(2 * threads).max(1)
    };
    let mut shards = Vec::new();
    for (ji, job) in jobs.iter().enumerate() {
        let design = designs
            .iter()
            .position(|d| d.name == job.design)
            .ok_or_else(|| BatchError::UnknownDesign { job: ji, design: job.design.clone() })?;
        match &job.kind {
            JobKind::Sweep { periods } => {
                for (si, chunk) in
                    periods.chunks(shard_points.min(periods.len().max(1))).enumerate()
                {
                    shards.push(ShardJob {
                        job: ji,
                        design,
                        shard: si,
                        kind: JobKind::Sweep { periods: chunk.to_vec() },
                    });
                }
            }
            kind @ JobKind::MinPeriod { .. } => {
                shards.push(ShardJob { job: ji, design, shard: 0, kind: kind.clone() });
            }
        }
    }
    Ok(shards)
}

/// One finished job, stitched back from its shards in plan order.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// The job as submitted.
    pub job: Job,
    /// Per-run records — sweep points in the job's period order, or a
    /// search's probes in probe order. The same records
    /// [`isdc_core::sweep_clock_period`] produces, schedule included.
    pub points: Vec<SweepPoint>,
    /// The found minimum period, for [`JobKind::MinPeriod`] jobs.
    pub min_period_ps: Option<Picos>,
    /// How many shards the job was split into.
    pub shards: usize,
    /// Summed worker wall-clock across the job's shards.
    pub elapsed: Duration,
    /// Terminal status. `points` and `min_period_ps` are withheld (empty /
    /// `None`) unless this is [`JobStatus::Ok`].
    pub status: JobStatus,
    /// Transient-failure retries spent across the job's shards, including
    /// retries that eventually succeeded.
    pub retries: u32,
}

impl JobResult {
    /// Cache hits over lookups across the job's runs, or 0.0 without
    /// lookups (infeasible-only jobs must render as 0.0, not NaN).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits: u64 = self.points.iter().map(|p| p.cache_hits).sum();
        let misses: u64 = self.points.iter().map(|p| p.cache_misses).sum();
        let total = hits + misses;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

/// The aggregated outcome of one [`run_batch`] call.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// One result per submitted job, in submission order.
    pub jobs: Vec<JobResult>,
    /// Worker threads actually spawned.
    pub threads: usize,
    /// Shards executed.
    pub shards: usize,
    /// Batch wall-clock time.
    pub elapsed: Duration,
    /// Shared-cache counter deltas over the batch (hits/misses/inserts by
    /// this batch's workers only).
    pub cache: CacheStats,
    /// The fleet metrics frame: every run's telemetry frame scoped under a
    /// deterministic `job{j}/pt{p}/…` key (plan order, so keys are
    /// thread-count-independent) and max-joined into one store.
    /// [`MetricsFrame::totals`] sums it back into fleet counters.
    pub metrics: MetricsFrame,
}

impl BatchReport {
    /// Total per-run records across all jobs.
    pub fn total_points(&self) -> usize {
        self.jobs.iter().map(|j| j.points.len()).sum()
    }

    /// Fleet-wide cache hit rate during the batch, or 0.0 without lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Jobs that failed terminally.
    pub fn jobs_failed(&self) -> usize {
        self.jobs.iter().filter(|j| matches!(j.status, JobStatus::Failed(_))).count()
    }

    /// Jobs cut short by a per-job deadline, the fleet budget, or the
    /// stall watchdog.
    pub fn jobs_timed_out(&self) -> usize {
        self.jobs.iter().filter(|j| matches!(j.status, JobStatus::TimedOut { .. })).count()
    }

    /// Jobs that needed at least one transient-failure retry (including
    /// jobs that then succeeded).
    pub fn jobs_retried(&self) -> usize {
        self.jobs.iter().filter(|j| j.retries > 0).count()
    }

    /// Total shard retries spent across the batch.
    pub fn total_retries(&self) -> u64 {
        self.jobs.iter().map(|j| u64::from(j.retries)).sum()
    }

    /// The first failure in job (= plan) order, if any job failed.
    pub fn first_error(&self) -> Option<&JobError> {
        self.jobs.iter().find_map(|j| j.status.error())
    }

    /// True when every job finished [`JobStatus::Ok`].
    pub fn all_ok(&self) -> bool {
        self.jobs.iter().all(|j| j.status.is_ok())
    }
}

/// Folds every point's telemetry frame into one fleet store, scoped by
/// `job{j}/pt{p}` — the point's position in the *job* (plan order), not
/// the shard, so the key set is identical for every thread count and for
/// [`serial_reference`]. Deterministic per-point counters therefore total
/// bit-identically however the batch was sharded.
fn fleet_frame(jobs: &[JobResult]) -> MetricsFrame {
    let mut fleet = MetricsFrame::new();
    for (ji, job) in jobs.iter().enumerate() {
        for (pi, point) in job.points.iter().enumerate() {
            for (name, value) in &point.metrics.metrics {
                fleet.insert(format!("job{ji}/pt{pi}/{name}"), value.clone());
            }
        }
    }
    fleet
}

/// A shard's raw outcome before aggregation.
struct ShardOutput {
    points: Vec<SweepPoint>,
    min_period_ps: Option<Picos>,
    elapsed: Duration,
    /// Transient-failure retries this shard spent before succeeding.
    retries: u32,
}

/// A cancelled shard: a deadline or the watchdog cut it short. The points
/// it completed before the cut are counted but withheld (clean-cut: they
/// were bit-identical to the uncancelled prefix, but a partial job stays
/// partial).
struct ShardTimeout {
    elapsed: Duration,
    points_completed: usize,
    flight: Vec<isdc_telemetry::FlightEvent>,
}

/// A slot's terminal state: what the worker that drew the shard left
/// behind for the stitcher.
enum ShardOutcome {
    Ok(ShardOutput),
    Failed(JobError),
    TimedOut(ShardTimeout),
    /// The owning job had already failed terminally, so the shard was
    /// drawn and dropped without running.
    Skipped,
}

/// Renders a caught panic payload. `panic!` with a format string yields a
/// `String`, `panic!("literal")` a `&str`; anything else (a custom
/// `panic_any` payload, or `std::thread::scope`'s generic re-panic when an
/// inner worker died) falls back to a placeholder.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one shard behind a panic boundary, retrying transient failures
/// (panics and injected faults) up to `max_retries` times with
/// deterministic exponential backoff. Never panics, never poisons.
///
/// When `token` is set it is installed for the shard's whole run, so every
/// cancellation checkpoint underneath — pipeline stages, iteration tops,
/// the oracle loop, the solver drain — polls it. A tripped deadline
/// surfaces as [`ShardOutcome::TimedOut`], **before** the transient check:
/// a spent budget is terminal, never retried.
fn run_shard_isolated<O: DelayOracle + ?Sized>(
    shard: &ShardJob,
    design: &BatchDesign,
    model: &OpDelayModel,
    oracle: &O,
    cache: &Arc<DelayCache>,
    max_retries: u32,
    token: Option<&CancelToken>,
) -> ShardOutcome {
    let _scope = token.map(CancelToken::install);
    let shard_start = Instant::now();
    let timed_out = |points_completed: usize| {
        ShardOutcome::TimedOut(ShardTimeout {
            elapsed: shard_start.elapsed(),
            points_completed,
            // Snapshot this worker's tail now: it still shows the last
            // spans before the cut (for a chaos stall, the stall site).
            flight: isdc_telemetry::flight_tail_current(),
        })
    };
    let mut retries = 0u32;
    loop {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            isdc_faults::fire("batch/shard-stall");
            isdc_faults::fire("batch/shard");
            run_shard(shard, design, model, oracle, Arc::clone(cache))
        }));
        let (kind, message) = match attempt {
            Ok(Ok(mut out)) => {
                // A sweep only comes back short when cancellation cut it
                // (infeasible periods record as infeasible *points*), so a
                // truncated prefix is a deterministic deadline signal.
                if let JobKind::Sweep { periods } = &shard.kind {
                    if out.points.len() < periods.len() {
                        return timed_out(out.points.len());
                    }
                }
                out.retries = retries;
                return ShardOutcome::Ok(out);
            }
            Ok(Err(ScheduleError::DeadlineExceeded)) => return timed_out(0),
            Ok(Err(error)) => {
                let message = error.to_string();
                (JobErrorKind::Schedule(error), message)
            }
            Err(payload) => (JobErrorKind::Panic, panic_message(payload.as_ref())),
        };
        // Panics and injected faults are treated as transient; real solver
        // errors are deterministic, so retrying them only wastes time.
        let transient = matches!(
            kind,
            JobErrorKind::Panic | JobErrorKind::Schedule(ScheduleError::Injected { .. })
        );
        if !transient || retries >= max_retries {
            return ShardOutcome::Failed(JobError {
                job: shard.job,
                shard: shard.shard,
                design: design.name.clone(),
                kind,
                message,
                retries,
                // Snapshot this worker's tail now, while it still shows
                // the failing shard (rings are bounded and shared).
                flight: isdc_telemetry::flight_tail_current(),
            });
        }
        retries += 1;
        let retry_span = isdc_telemetry::span_u64("shard:retry", "attempt", u64::from(retries));
        // Deterministic bounded backoff: 1ms · 2^(attempt-1), capped at
        // 64ms. No jitter — chaos runs must replay identically.
        std::thread::sleep(Duration::from_millis(1u64 << (retries - 1).min(6)));
        drop(retry_span);
    }
}

fn run_shard<O: DelayOracle + ?Sized>(
    shard: &ShardJob,
    design: &BatchDesign,
    model: &OpDelayModel,
    oracle: &O,
    cache: Arc<DelayCache>,
) -> Result<ShardOutput, ScheduleError> {
    let start = Instant::now();
    let mut session = IsdcSession::with_cache(&design.graph, model, oracle, cache);
    match &shard.kind {
        JobKind::Sweep { periods } => {
            let points = sweep_clock_period(&mut session, &design.base, periods)?;
            Ok(ShardOutput { points, min_period_ps: None, elapsed: start.elapsed(), retries: 0 })
        }
        JobKind::MinPeriod { lo, hi, tol_ps } => {
            let search = min_feasible_period(&mut session, &design.base, *lo, *hi, *tol_ps)?;
            Ok(ShardOutput {
                points: search.probes,
                min_period_ps: search.min_period_ps,
                elapsed: start.elapsed(),
                retries: 0,
            })
        }
    }
}

/// Executes `jobs` over `designs` on a pool of worker threads sharing
/// `cache`. See the [module docs](self) for the execution model, the
/// determinism guarantee, and the fault-tolerance contract.
///
/// Execution failures do **not** fail the call: each job carries its
/// [`JobStatus`], and [`BatchReport::first_error`] /
/// [`BatchReport::jobs_failed`] / [`BatchReport::jobs_timed_out`]
/// summarize them. The fleet frame gains six batch-level counters —
/// `fault/injected`, `job/retries`, `job/failed`, `job/timed_out`,
/// `cancel/deadline`, `cancel/watchdog` — all zero on a clean run.
///
/// # Errors
///
/// [`BatchError::UnknownDesign`] from planning. (Before the fault-
/// tolerance rework this call also failed on the first shard error;
/// callers that want that strictness check [`BatchReport::all_ok`].)
pub fn run_batch<O: DelayOracle + ?Sized>(
    designs: &[BatchDesign],
    jobs: &[Job],
    options: &BatchOptions,
    model: &OpDelayModel,
    oracle: &O,
    cache: &Arc<DelayCache>,
) -> Result<BatchReport, BatchError> {
    let shards = plan_shards(designs, jobs, options)?;
    let threads = options.resolved_threads().min(shards.len()).max(1);
    let batch_span = isdc_telemetry::span_u64("batch", "shards", shards.len() as u64);
    let stats_before = cache.stats();
    let injected_before = isdc_faults::injected_count();
    let start = Instant::now();
    let fleet_deadline_at = options.fleet_deadline.map(|budget| start + budget);

    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    // Raised when a worker observed the fleet budget expired; distinguishes
    // abandoned shards that should report TimedOut from abort Skips.
    let fleet_expired = AtomicBool::new(false);
    // One flag per job: once a job fails terminally, its queued shards are
    // dropped (drawn and marked Skipped) instead of executed — their
    // points would be withheld anyway.
    let job_failed: Vec<AtomicBool> = jobs.iter().map(|_| AtomicBool::new(false)).collect();
    // A job's deadline clock starts at its *first shard claim*, so queue
    // wait behind other jobs never eats a job's own budget.
    let job_started: Vec<Mutex<Option<Instant>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let slots: Vec<Mutex<Option<ShardOutcome>>> = shards.iter().map(|_| Mutex::new(None)).collect();
    // Per-worker watchdog slots: the in-flight shard's cancel token, the
    // worker's flight track, and the shard-claim timestamp.
    let watch: Vec<Mutex<Option<(CancelToken, u32, u64)>>> =
        (0..threads).map(|_| Mutex::new(None)).collect();
    let workers_done = AtomicUsize::new(0);
    let watchdog_cancels = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for wi in 0..threads {
            let (next, stop, fleet_expired, job_failed, job_started, shards, slots, watch) =
                (&next, &stop, &fleet_expired, &job_failed, &job_started, &shards, &slots, &watch);
            let workers_done = &workers_done;
            scope.spawn(move || {
                // Each worker gets its own named track unconditionally:
                // the Perfetto view shows one lane per pool thread when
                // tracing is on, and the always-on flight recorder keeps a
                // per-worker tail (attached to `JobError`s) even when off.
                let track = isdc_telemetry::set_thread_track(format!("batch-worker-{wi}"));
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    if fleet_deadline_at.is_some_and(|at| Instant::now() >= at) {
                        fleet_expired.store(true, Ordering::Relaxed);
                        break;
                    }
                    let at = next.fetch_add(1, Ordering::Relaxed);
                    let Some(shard) = shards.get(at) else { break };
                    let outcome = if job_failed[shard.job].load(Ordering::Relaxed) {
                        ShardOutcome::Skipped
                    } else {
                        let shard_span = isdc_telemetry::span_u64("shard", "job", shard.job as u64);
                        shard_span.note(
                            "shard_info",
                            vec![
                                ("shard", ArgValue::U64(shard.shard as u64)),
                                ("design", ArgValue::Str(designs[shard.design].name.clone())),
                            ],
                        );
                        // The shard's budget: the job's own deadline
                        // tightened by the fleet budget. A deadline-free
                        // token still exists when only the watchdog is
                        // armed, so a stalled shard can be cancelled.
                        let job_deadline_at = jobs[shard.job].deadline_ms.map(|ms| {
                            let mut started =
                                job_started[shard.job].lock().unwrap_or_else(|e| e.into_inner());
                            *started.get_or_insert_with(Instant::now) + Duration::from_millis(ms)
                        });
                        let deadline_at = match (job_deadline_at, fleet_deadline_at) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        let token = match deadline_at {
                            Some(at) => Some(CancelToken::with_deadline_at(at)),
                            None if options.stall_timeout.is_some() => Some(CancelToken::new()),
                            None => None,
                        };
                        if options.stall_timeout.is_some() {
                            if let Some(token) = &token {
                                *watch[wi].lock().unwrap_or_else(|e| e.into_inner()) =
                                    Some((token.clone(), track, isdc_telemetry::now_ns()));
                            }
                        }
                        let outcome = run_shard_isolated(
                            shard,
                            &designs[shard.design],
                            model,
                            oracle,
                            cache,
                            options.max_retries,
                            token.as_ref(),
                        );
                        *watch[wi].lock().unwrap_or_else(|e| e.into_inner()) = None;
                        outcome
                    };
                    if matches!(outcome, ShardOutcome::Failed(_) | ShardOutcome::TimedOut(_)) {
                        job_failed[shard.job].store(true, Ordering::Relaxed);
                        if options.fail_policy == FailPolicy::Abort {
                            stop.store(true, Ordering::Relaxed);
                        }
                    }
                    // Poison-tolerant: the guarded store is a single
                    // assignment, so a poisoned slot still holds either
                    // `None` or a complete outcome — never a torn value.
                    *slots[at].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                }
                workers_done.fetch_add(1, Ordering::Release);
            });
        }
        // The stall watchdog: scans every in-flight shard's heartbeat (the
        // worker's flight-recorder tail — every span begin/end bumps it)
        // and cancels tokens that have gone silent too long. It only ever
        // *cancels*; the worker itself reports the TimedOut outcome, so
        // the watchdog can never tear a slot.
        if let Some(stall) = options.stall_timeout {
            let (watch, workers_done, watchdog_cancels) =
                (&watch, &workers_done, &watchdog_cancels);
            scope.spawn(move || {
                isdc_telemetry::set_thread_track("batch-watchdog");
                let poll = (stall / 4).max(Duration::from_millis(2));
                let stall_ns = stall.as_nanos() as u64;
                while workers_done.load(Ordering::Acquire) < threads {
                    std::thread::sleep(poll);
                    for slot in watch {
                        let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
                        let Some((token, track, claimed_ns)) = guard.as_ref() else { continue };
                        let last_beat = isdc_telemetry::flight_tail(*track)
                            .last()
                            .map_or(*claimed_ns, |ev| ev.t_ns.max(*claimed_ns));
                        if isdc_telemetry::now_ns().saturating_sub(last_beat) > stall_ns {
                            token.cancel();
                            watchdog_cancels.fetch_add(1, Ordering::Relaxed);
                            // Clear the slot so each stall is counted (and
                            // cancelled) exactly once.
                            *guard = None;
                        }
                    }
                }
            });
        }
    });

    // Stitch shards back per job, in plan order. The first failed shard in
    // stitch order carries the job's error; abandoned (never-drawn) shards
    // only occur after an abort.
    let mut results: Vec<JobResult> = jobs
        .iter()
        .map(|job| JobResult {
            job: job.clone(),
            points: Vec::new(),
            min_period_ps: None,
            shards: 0,
            elapsed: Duration::ZERO,
            status: JobStatus::Ok,
            retries: 0,
        })
        .collect();
    let mut abandoned = vec![false; jobs.len()];
    let mut shards_cancelled = 0u64;
    for (shard, slot) in shards.iter().zip(slots) {
        let outcome = slot.into_inner().unwrap_or_else(|e| e.into_inner());
        let result = &mut results[shard.job];
        match outcome {
            Some(ShardOutcome::Ok(out)) => {
                result.retries += out.retries;
                result.points.extend(out.points);
                result.min_period_ps = result.min_period_ps.or(out.min_period_ps);
                result.shards += 1;
                result.elapsed += out.elapsed;
            }
            Some(ShardOutcome::Failed(error)) => {
                result.retries += error.retries;
                result.shards += 1;
                if result.status.is_ok() {
                    result.status = JobStatus::Failed(error);
                }
            }
            Some(ShardOutcome::TimedOut(cut)) => {
                result.shards += 1;
                result.elapsed += cut.elapsed;
                shards_cancelled += 1;
                if result.status.is_ok() {
                    // elapsed_ms is filled in below, once every sibling
                    // shard's elapsed has been stitched in.
                    result.status = JobStatus::TimedOut {
                        elapsed_ms: 0,
                        points_completed: cut.points_completed,
                        flight: cut.flight,
                    };
                }
            }
            Some(ShardOutcome::Skipped) => {}
            None => {
                debug_assert!(
                    stop.load(Ordering::Relaxed) || fleet_expired.load(Ordering::Relaxed),
                    "only an abort or the fleet budget abandons shards"
                );
                abandoned[shard.job] = true;
            }
        }
    }
    // A job the abort cut short (some shard never drawn) is Skipped, and
    // any partial points are withheld: which shards did run before the
    // abort landed depends on thread timing. When the fleet budget expired
    // instead, the cut-short job is TimedOut — not Skipped — so the report
    // says *why* it has no points.
    let fleet_expired = fleet_expired.load(Ordering::Relaxed);
    for (result, abandoned) in results.iter_mut().zip(abandoned) {
        if abandoned && result.status.is_ok() {
            result.status = if fleet_expired {
                JobStatus::TimedOut { elapsed_ms: 0, points_completed: 0, flight: Vec::new() }
            } else {
                JobStatus::Skipped
            };
        }
        if let JobStatus::TimedOut { elapsed_ms, points_completed, .. } = &mut result.status {
            // Sibling shards that did complete count toward the job's
            // completed points before the points themselves are withheld.
            *points_completed += result.points.len();
            *elapsed_ms = result.elapsed.as_millis() as u64;
        }
        if !result.status.is_ok() {
            result.points.clear();
            result.min_period_ps = None;
        }
    }
    drop(batch_span);
    let stats_after = cache.stats();
    let executed = results.iter().map(|r| r.shards).sum();
    let mut metrics = fleet_frame(&results);
    // Batch-level robustness counters, all zero on a clean run. The
    // injected count is the process-global hook counter's delta over this
    // batch (concurrent batches may both observe a shared fault — the
    // counter is telemetry, not an oracle).
    let injected = isdc_faults::injected_count().saturating_sub(injected_before);
    metrics.insert("fault/injected", MetricValue::Counter(injected));
    let retries: u64 = results.iter().map(|r| u64::from(r.retries)).sum();
    metrics.insert("job/retries", MetricValue::Counter(retries));
    let failed = results.iter().filter(|r| matches!(r.status, JobStatus::Failed(_))).count();
    metrics.insert("job/failed", MetricValue::Counter(failed as u64));
    let timed_out =
        results.iter().filter(|r| matches!(r.status, JobStatus::TimedOut { .. })).count();
    metrics.insert("job/timed_out", MetricValue::Counter(timed_out as u64));
    // `cancel/deadline` counts shards cut by cancellation (deadline, fleet
    // budget, or watchdog); `cancel/watchdog` counts the subset the stall
    // watchdog cancelled. Both zero on a clean run.
    metrics.insert("cancel/deadline", MetricValue::Counter(shards_cancelled));
    metrics
        .insert("cancel/watchdog", MetricValue::Counter(watchdog_cancels.load(Ordering::Relaxed)));
    // The shared cache keeps its own registry (it outlives any one run's
    // frame), so its eviction count is exported into the fleet frame here.
    metrics.insert(
        "cache/evictions",
        MetricValue::Counter(stats_after.evictions - stats_before.evictions),
    );
    Ok(BatchReport {
        jobs: results,
        threads,
        shards: executed,
        elapsed: start.elapsed(),
        cache: CacheStats {
            hits: stats_after.hits - stats_before.hits,
            misses: stats_after.misses - stats_before.misses,
            inserts: stats_after.inserts - stats_before.inserts,
            evictions: stats_after.evictions - stats_before.evictions,
        },
        metrics,
    })
}

/// The single-threaded reference the batch's determinism guarantee is
/// stated against: every job runs whole (no sharding) in its own fresh
/// session over its own **private** cache — exactly the PR 3 workflow of
/// calling [`isdc_core::sweep_clock_period`] per design. Used by the bench
/// and the bit-identity tests. Deadlines are ignored: the reference
/// defines *what the full results are*, so it always runs to completion.
///
/// # Errors
///
/// Same failures as [`run_batch`].
pub fn serial_reference<O: DelayOracle + ?Sized>(
    designs: &[BatchDesign],
    jobs: &[Job],
    model: &OpDelayModel,
    oracle: &O,
) -> Result<BatchReport, BatchError> {
    let start = Instant::now();
    let mut results = Vec::with_capacity(jobs.len());
    for (ji, job) in jobs.iter().enumerate() {
        let design = designs
            .iter()
            .find(|d| d.name == job.design)
            .ok_or_else(|| BatchError::UnknownDesign { job: ji, design: job.design.clone() })?;
        let shard = ShardJob { job: ji, design: 0, shard: 0, kind: job.kind.clone() };
        let cache = Arc::new(DelayCache::new());
        let out = run_shard(&shard, design, model, oracle, cache).map_err(|error| {
            BatchError::Schedule { job: ji, design: design.name.clone(), error }
        })?;
        results.push(JobResult {
            job: job.clone(),
            points: out.points,
            min_period_ps: out.min_period_ps,
            shards: 1,
            elapsed: out.elapsed,
            status: JobStatus::Ok,
            retries: 0,
        });
    }
    let metrics = fleet_frame(&results);
    Ok(BatchReport {
        jobs: results,
        threads: 1,
        shards: jobs.len(),
        elapsed: start.elapsed(),
        cache: CacheStats::default(),
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Job;

    fn designs() -> Vec<BatchDesign> {
        use isdc_ir::OpKind;
        let mut g = Graph::new("tiny");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        g.set_output(x);
        vec![BatchDesign {
            name: "tiny".into(),
            graph: g,
            base: IsdcConfig::paper_defaults(2500.0),
        }]
    }

    #[test]
    fn planning_chunks_sweeps_and_keeps_searches_whole() {
        let designs = designs();
        let jobs = vec![
            Job::sweep("tiny", (0..10).map(|i| 2500.0 + i as f64 * 100.0).collect()),
            Job::min_period("tiny", 1.0, 2500.0, 10.0),
        ];
        let options = BatchOptions { threads: 4, shard_points: 4, ..Default::default() };
        let shards = plan_shards(&designs, &jobs, &options).unwrap();
        assert_eq!(shards.len(), 3 + 1, "10 points at <=4 each, plus one search shard");
        let sizes: Vec<usize> = shards[..3]
            .iter()
            .map(|s| match &s.kind {
                JobKind::Sweep { periods } => periods.len(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sizes, vec![4, 4, 2]);
        // Contiguous, order-preserving chunks.
        let JobKind::Sweep { periods } = &shards[1].kind else { unreachable!() };
        assert_eq!(periods[0], 2900.0);
        assert_eq!((shards[3].job, shards[3].shard), (1, 0));
    }

    #[test]
    fn auto_sharding_fills_threads_but_never_splits_at_one() {
        let designs = designs();
        let jobs = vec![Job::sweep("tiny", vec![2500.0; 12])];
        let one = BatchOptions { threads: 1, ..Default::default() };
        assert_eq!(plan_shards(&designs, &jobs, &one).unwrap().len(), 1);
        let eight = BatchOptions { threads: 8, ..Default::default() };
        let shards = plan_shards(&designs, &jobs, &eight).unwrap();
        assert!(shards.len() >= 8, "one job must still fill an 8-thread pool: {}", shards.len());
    }

    #[test]
    fn unknown_design_is_reported_with_its_job() {
        let err = plan_shards(
            &designs(),
            &[Job::sweep("tiny", vec![2500.0]), Job::sweep("nope", vec![2500.0])],
            &BatchOptions::default(),
        )
        .unwrap_err();
        assert_eq!(err, BatchError::UnknownDesign { job: 1, design: "nope".into() });
        assert!(err.to_string().contains("nope"));
    }
}
