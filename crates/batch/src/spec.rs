//! The batch job model and its on-disk JSON spec format.
//!
//! A **job** names a design and a unit of scheduling work over it — a
//! clock-period sweep or a minimum-feasible-period search. Jobs are what
//! users hand the batch engine (CLI `batch --jobs spec.json`); the engine's
//! planner then splits sweeps into period *shards* for the worker pool
//! ([`crate::plan_shards`]).
//!
//! The spec file is one object:
//!
//! ```json
//! {
//!   "jobs": [
//!     {"design": "crc32", "type": "sweep", "from": 2500, "to": 5000, "points": 10},
//!     {"design": "rrot",  "type": "sweep", "periods": [2500, 2600, 3000]},
//!     {"design": "sha256", "type": "min_period", "lo": 1, "hi": 5000, "tol": 10}
//!   ]
//! }
//! ```
//!
//! Sweep jobs give either an explicit `periods` array (run in the given
//! order — ascending recommended, so shards warm-start internally) or a
//! `from`/`to`/`points` linear grid. Unknown keys are ignored so the format
//! can grow. The codec is hand-rolled on [`isdc_cache::json`] (the build
//! environment has no `serde_json`).

use isdc_cache::json::{escape, Parser};
use isdc_core::linear_grid;
use isdc_techlib::Picos;
use std::fmt::Write as _;

/// What a [`Job`] asks the engine to do with its design.
#[derive(Clone, Debug, PartialEq)]
pub enum JobKind {
    /// Run every period in order through a session
    /// ([`isdc_core::sweep_clock_period`] semantics, point for point).
    Sweep {
        /// The clock periods to schedule for, in execution order.
        periods: Vec<Picos>,
    },
    /// Binary-search the smallest feasible period
    /// ([`isdc_core::min_feasible_period`] semantics).
    MinPeriod {
        /// Lower search bound (may be infeasible).
        lo: Picos,
        /// Upper search bound (should be feasible).
        hi: Picos,
        /// Search resolution in picoseconds.
        tol_ps: Picos,
    },
}

/// One unit of user-facing batch work: a design plus a [`JobKind`].
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// The design's name, resolved against the engine's design table.
    pub design: String,
    /// The work to run.
    pub kind: JobKind,
    /// Per-job wall-clock budget in milliseconds, measured from the job's
    /// first shard claim. When it trips, the job reports
    /// `JobStatus::TimedOut` (terminal — never retried) and its points are
    /// withheld like any other non-Ok status. `None` = unbounded. Spec key:
    /// `deadline_ms`.
    pub deadline_ms: Option<u64>,
}

impl Job {
    /// A sweep job over an explicit period list.
    pub fn sweep(design: impl Into<String>, periods: Vec<Picos>) -> Self {
        Self { design: design.into(), kind: JobKind::Sweep { periods }, deadline_ms: None }
    }

    /// A minimum-feasible-period search job.
    pub fn min_period(design: impl Into<String>, lo: Picos, hi: Picos, tol_ps: Picos) -> Self {
        Self {
            design: design.into(),
            kind: JobKind::MinPeriod { lo, hi, tol_ps },
            deadline_ms: None,
        }
    }

    /// Builder: sets the per-job deadline.
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Number of session runs the job performs up front (probes of a search
    /// are counted as 0 — they depend on feasibility outcomes).
    pub fn planned_points(&self) -> usize {
        match &self.kind {
            JobKind::Sweep { periods } => periods.len(),
            JobKind::MinPeriod { .. } => 0,
        }
    }
}

/// Serializes jobs in the spec format (stable field order, roundtrips
/// bit-identically through [`parse_jobs`]).
pub fn render_jobs(jobs: &[Job]) -> String {
    let mut out = String::from("{\"jobs\":[\n");
    for (i, job) in jobs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "  {{\"design\":\"{}\",", escape(&job.design));
        if let Some(ms) = job.deadline_ms {
            let _ = write!(out, "\"deadline_ms\":{ms},");
        }
        match &job.kind {
            JobKind::Sweep { periods } => {
                out.push_str("\"type\":\"sweep\",\"periods\":[");
                for (j, p) in periods.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{p:?}");
                }
                out.push_str("]}");
            }
            JobKind::MinPeriod { lo, hi, tol_ps } => {
                let _ = write!(
                    out,
                    "\"type\":\"min_period\",\"lo\":{lo:?},\"hi\":{hi:?},\"tol\":{tol_ps:?}}}"
                );
            }
        }
    }
    out.push_str("\n]}\n");
    out
}

/// Parses a job-spec document (see the [module docs](self) for the format).
///
/// # Errors
///
/// Returns a description of the first malformed construct: unknown job
/// types, sweeps without periods, grids with `points == 0` or `to < from`,
/// searches with a nonpositive tolerance or `lo > hi`.
pub fn parse_jobs(json: &str) -> Result<Vec<Job>, String> {
    let mut p = Parser::new(json);
    let mut jobs: Vec<Job> = Vec::new();
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        if key == "jobs" {
            p.expect(b'[')?;
            if !p.peek_close(b']') {
                loop {
                    jobs.push(parse_job(&mut p)?);
                    if !p.comma_or_close(b']')? {
                        break;
                    }
                }
            }
        } else {
            p.skip_value()?;
        }
        if !p.comma_or_close(b'}')? {
            break;
        }
    }
    Ok(jobs)
}

fn parse_job(p: &mut Parser<'_>) -> Result<Job, String> {
    let mut design: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut periods: Option<Vec<Picos>> = None;
    let (mut from, mut to, mut points) = (None, None, None);
    let (mut lo, mut hi, mut tol) = (None, None, None);
    let mut deadline_ms: Option<u64> = None;
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "design" => design = Some(p.string()?),
            "type" => kind = Some(p.string()?),
            "periods" => {
                let mut list = Vec::new();
                p.expect(b'[')?;
                if !p.peek_close(b']') {
                    loop {
                        list.push(p.number()?);
                        if !p.comma_or_close(b']')? {
                            break;
                        }
                    }
                }
                periods = Some(list);
            }
            "from" => from = Some(p.number()?),
            "to" => to = Some(p.number()?),
            "points" => points = Some(p.number()? as usize),
            "lo" => lo = Some(p.number()?),
            "hi" => hi = Some(p.number()?),
            "tol" => tol = Some(p.number()?),
            "deadline_ms" => {
                let ms = p.number()?;
                if !(ms.is_finite() && ms >= 0.0) {
                    return Err("deadline_ms must be a nonnegative number".to_string());
                }
                deadline_ms = Some(ms as u64);
            }
            _ => p.skip_value()?,
        }
        if !p.comma_or_close(b'}')? {
            break;
        }
    }
    let design = design.ok_or("job without a design name")?;
    let kind = match kind.as_deref() {
        Some("sweep") | None => {
            let periods = match (periods, from) {
                (Some(list), _) if !list.is_empty() => list,
                (Some(_), _) => return Err(format!("job `{design}`: empty periods array")),
                (None, Some(from)) => {
                    let points = points.unwrap_or(10);
                    let to = to.unwrap_or(from * 2.0);
                    if points == 0 || to < from {
                        return Err(format!(
                            "job `{design}`: grid needs points >= 1 and to >= from"
                        ));
                    }
                    linear_grid(from, to, points)
                }
                (None, None) => {
                    return Err(format!("job `{design}`: sweep needs `periods` or `from`"));
                }
            };
            JobKind::Sweep { periods }
        }
        Some("min_period") => {
            let hi = hi.ok_or_else(|| format!("job `{design}`: min_period needs `hi`"))?;
            let lo = lo.unwrap_or(1.0);
            let tol_ps = tol.unwrap_or(10.0);
            if tol_ps <= 0.0 || tol_ps.is_nan() || lo > hi {
                return Err(format!("job `{design}`: min_period needs tol > 0 and lo <= hi"));
            }
            JobKind::MinPeriod { lo, hi, tol_ps }
        }
        Some(other) => return Err(format!("job `{design}`: unknown type `{other}`")),
    };
    Ok(Job { design, kind, deadline_ms })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_periods_roundtrip() {
        let jobs = vec![
            Job::sweep("crc32", vec![2500.0, 3000.0, 1.0 / 3.0]),
            Job::min_period("sha256", 1.0, 5000.0, 10.0),
            Job::sweep("rrot", vec![2500.0]).with_deadline_ms(750),
        ];
        let parsed = parse_jobs(&render_jobs(&jobs)).unwrap();
        assert_eq!(parsed, jobs, "render/parse must roundtrip bit-identically");
    }

    #[test]
    fn deadline_ms_parses_and_validates() {
        let jobs = parse_jobs(
            r#"{"jobs":[{"design":"d","type":"sweep","periods":[1500],"deadline_ms":250}]}"#,
        )
        .unwrap();
        assert_eq!(jobs[0].deadline_ms, Some(250));
        assert!(parse_jobs(
            r#"{"jobs":[{"design":"d","type":"sweep","periods":[1500],"deadline_ms":-1}]}"#
        )
        .is_err());
    }

    #[test]
    fn grid_form_expands_like_linear_grid() {
        let json =
            r#"{"jobs":[{"design":"d", "type":"sweep", "from":1000, "to":2000, "points":5}]}"#;
        let jobs = parse_jobs(json).unwrap();
        assert_eq!(jobs[0].kind, JobKind::Sweep { periods: linear_grid(1000.0, 2000.0, 5) });
        // Defaults: to = 2*from, points = 10, type = sweep.
        let jobs = parse_jobs(r#"{"jobs":[{"design":"d","from":1000}]}"#).unwrap();
        assert_eq!(jobs[0].kind, JobKind::Sweep { periods: linear_grid(1000.0, 2000.0, 10) });
        assert_eq!(jobs[0].planned_points(), 10);
    }

    #[test]
    fn min_period_defaults_and_validation() {
        let jobs =
            parse_jobs(r#"{"jobs":[{"design":"d","type":"min_period","hi":2500}]}"#).unwrap();
        assert_eq!(jobs[0].kind, JobKind::MinPeriod { lo: 1.0, hi: 2500.0, tol_ps: 10.0 });
        for bad in [
            r#"{"jobs":[{"design":"d","type":"min_period"}]}"#,
            r#"{"jobs":[{"design":"d","type":"min_period","hi":10,"lo":20}]}"#,
            r#"{"jobs":[{"design":"d","type":"min_period","hi":10,"tol":0}]}"#,
            r#"{"jobs":[{"design":"d","type":"warp"}]}"#,
            r#"{"jobs":[{"design":"d","type":"sweep"}]}"#,
            r#"{"jobs":[{"design":"d","type":"sweep","periods":[]}]}"#,
            r#"{"jobs":[{"type":"sweep","from":1000}]}"#,
        ] {
            assert!(parse_jobs(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unknown_keys_and_whitespace_tolerated() {
        let json = r#" { "comment": {"made by": ["a", "future", "version"]},
                         "jobs" : [ { "design" : "d" , "priority" : 3 ,
                                      "type" : "sweep" , "periods" : [ 1500 ] } ] } "#;
        let jobs = parse_jobs(json).unwrap();
        assert_eq!(jobs, vec![Job::sweep("d", vec![1500.0])]);
        assert_eq!(parse_jobs(r#"{"jobs":[]}"#).unwrap(), Vec::new());
    }
}
