//! # isdc-batch — the parallel multi-session batch engine
//!
//! [`isdc_core::IsdcSession`] made one design fast across runs; this crate
//! makes a **fleet of designs and clock periods** fast together — the
//! "many designs × many periods at once" service workload of the roadmap's
//! production north star:
//!
//! - a [`Job`] model (clock-period sweeps, minimum-feasible-period
//!   searches) with an on-disk JSON [`spec`] the CLI consumes;
//! - a **shard planner** ([`plan_shards`]) that splits sweeps into
//!   contiguous period chunks, preserving ascending-period warm starts
//!   inside each shard while still filling a pool from a single wide
//!   sweep;
//! - a **worker pool** ([`run_batch`]) of scoped threads drawing shards
//!   from a shared-index queue, each worker running one [`IsdcSession`] at
//!   a time, all sessions sharing one [`isdc_cache::DelayCache`] — delay
//!   reports and LP potentials discovered by any worker are instantly
//!   visible fleet-wide (and per-process caches fold together through
//!   [`isdc_cache::DelayCache::merge`]);
//! - a deterministic **aggregator** ([`BatchReport`]) stitching shard
//!   outputs back into per-job records — the same
//!   [`isdc_core::SweepPoint`]s a serial sweep produces — plus
//!   [`render_batch_json`] for the `BENCH_batch.json` scaling document.
//!
//! **The guarantee:** batch output is bit-identical to the serial session
//! sweep ([`serial_reference`]) for every job, at every thread count and
//! shard size. Both shared assets are pure accelerators, so parallelism
//! changes wall-clock time and nothing else (enforced by `tests/batch.rs`).
//!
//! **Fault tolerance:** every shard runs behind a panic boundary, failures
//! become structured per-job [`JobStatus`] records (with bounded
//! deterministic retries for transient faults), and [`FailPolicy`] picks
//! between aborting the queue and `--keep-going`. Unaffected jobs stay
//! bit-identical even with a fault injected — `tests/chaos.rs` proves it
//! for every `isdc_faults` site.
//!
//! # Examples
//!
//! ```
//! use isdc_batch::{run_batch, BatchDesign, BatchOptions, Job};
//! use isdc_cache::DelayCache;
//! use isdc_core::IsdcConfig;
//! use isdc_ir::{Graph, OpKind};
//! use isdc_synth::{OpDelayModel, SynthesisOracle};
//! use isdc_techlib::TechLibrary;
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new("mac");
//! let a = g.param("a", 8);
//! let b = g.param("b", 8);
//! let p = g.binary(OpKind::Mul, a, b)?;
//! g.set_output(p);
//!
//! let mut base = IsdcConfig::paper_defaults(2500.0);
//! base.threads = 1;
//! let designs = vec![BatchDesign { name: "mac".into(), graph: g, base }];
//! let jobs = vec![Job::sweep("mac", vec![2500.0, 3000.0, 3500.0])];
//!
//! let lib = TechLibrary::sky130();
//! let model = OpDelayModel::new(lib.clone());
//! let oracle = SynthesisOracle::new(lib);
//! let cache = Arc::new(DelayCache::new());
//! let options = BatchOptions { threads: 2, shard_points: 2, ..Default::default() };
//! let report = run_batch(&designs, &jobs, &options, &model, &oracle, &cache)?;
//! assert_eq!(report.total_points(), 3);
//! assert!(report.jobs[0].points.iter().all(|p| p.feasible));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod engine;
mod report;
pub mod spec;

pub use engine::{
    plan_shards, run_batch, serial_reference, BatchDesign, BatchError, BatchOptions, BatchReport,
    FailPolicy, JobError, JobErrorKind, JobResult, JobStatus, ShardJob,
};
pub use report::{render_batch_json, BatchBenchDoc, ScalingRow};
pub use spec::{parse_jobs, render_jobs, Job, JobKind};
