//! `BENCH_batch.json` rendering: batch totals, per-thread-count scaling
//! against the serial session sweep, and per-job records.

use crate::engine::{BatchReport, JobStatus};
use crate::spec::JobKind;
use isdc_cache::json::escape;
use isdc_core::StageKind;
use std::fmt::Write as _;
use std::time::Duration;

/// One measured thread count in the scaling table.
#[derive(Clone, Copy, Debug)]
pub struct ScalingRow {
    /// Worker threads the batch ran with.
    pub threads: usize,
    /// Batch wall-clock at that thread count.
    pub total: Duration,
}

/// Everything the `BENCH_batch.json` document reports.
pub struct BatchBenchDoc<'a> {
    /// `"full"` or `"quick"` (CI smoke).
    pub mode: &'a str,
    /// Designs in the batch's table.
    pub designs: usize,
    /// The canonical run whose per-job records are listed (by convention
    /// the highest thread count measured).
    pub report: &'a BatchReport,
    /// `std::thread::available_parallelism()` on the measuring machine —
    /// scaling numbers are meaningless without it.
    pub hardware_threads: usize,
    /// How many times each timed configuration was run; the document's
    /// wall-clock numbers are the median run (`--repeat N`), so the gate's
    /// floors are evaluated on medians rather than single noisy samples.
    pub repeats: usize,
    /// Wall-clock of the serial session sweep baseline
    /// ([`crate::serial_reference`]), when measured — the bench always
    /// measures it; a lone CLI batch run has nothing to compare against and
    /// omits the speedup fields.
    pub serial_total: Option<Duration>,
    /// Optional wall-clock of the independent-cold-runs baseline (the
    /// paper-reference semantics), for the long-lever speedup.
    pub cold_total: Option<Duration>,
    /// One row per measured thread count.
    pub scaling: &'a [ScalingRow],
    /// Whether every batch schedule was verified bit-identical to the
    /// serial baseline before rendering.
    pub bit_identical: bool,
}

fn speedup(baseline: Duration, total: Duration) -> f64 {
    baseline.as_nanos() as f64 / (total.as_nanos().max(1)) as f64
}

/// Serializes the document. Rates are always finite (zero-lookup divisions
/// render as 0.0), so the output is parseable JSON end to end.
pub fn render_batch_json(doc: &BatchBenchDoc<'_>) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"batch\",\n");
    let _ = writeln!(out, "  \"mode\": \"{}\",", doc.mode);
    let _ = writeln!(
        out,
        "  \"designs\": {}, \"jobs\": {}, \"shards\": {}, \"points\": {},",
        doc.designs,
        doc.report.jobs.len(),
        doc.report.shards,
        doc.report.total_points()
    );
    let _ = writeln!(out, "  \"hardware_threads\": {},", doc.hardware_threads);
    let _ = writeln!(out, "  \"repeats\": {},", doc.repeats);
    let _ = writeln!(out, "  \"bit_identical\": {},", doc.bit_identical);
    // Robustness attestation: all zero on a clean run (the bench gate
    // asserts it — a benchmark that survived only via retries, dropped
    // jobs, or deadline cuts is not a valid measurement).
    let _ = writeln!(
        out,
        "  \"jobs_failed\": {}, \"jobs_retried\": {}, \"jobs_timed_out\": {},",
        doc.report.jobs_failed(),
        doc.report.jobs_retried(),
        doc.report.jobs_timed_out()
    );
    if let Some(serial) = doc.serial_total {
        let _ = writeln!(out, "  \"serial_total_ns\": {},", serial.as_nanos());
    }
    if let Some(cold) = doc.cold_total {
        let _ = writeln!(out, "  \"cold_total_ns\": {},", cold.as_nanos());
    }
    out.push_str("  \"scaling\": [\n");
    for (i, row) in doc.scaling.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "    {{\"threads\": {}, \"total_ns\": {}",
            row.threads,
            row.total.as_nanos()
        );
        if let Some(serial) = doc.serial_total {
            let _ = write!(out, ", \"speedup_vs_serial\": {:.2}", speedup(serial, row.total));
        }
        if let Some(cold) = doc.cold_total {
            let _ = write!(out, ", \"speedup_vs_cold\": {:.2}", speedup(cold, row.total));
        }
        out.push('}');
    }
    out.push_str("\n  ],\n");
    if let (Some(serial), Some(best)) =
        (doc.serial_total, doc.scaling.iter().max_by_key(|r| r.threads))
    {
        let _ = writeln!(
            out,
            "  \"max_threads_measured\": {}, \"speedup_at_max_threads\": {:.2},",
            best.threads,
            speedup(serial, best.total)
        );
    }
    let _ = writeln!(
        out,
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}, \
         \"entries_inserted\": {}, \"evictions\": {}}},",
        doc.report.cache.hits,
        doc.report.cache.misses,
        doc.report.cache_hit_rate(),
        doc.report.cache.inserts,
        doc.report.cache.evictions
    );
    // Fleet totals, summed out of the batch's merged metrics frame. Only
    // leaves that are unique across the metric namespace are meaningful
    // here (per-stage `ns`/`calls` leaves would collide).
    let totals = doc.report.metrics.totals();
    let fleet = |leaf: &str| totals.get(leaf).copied().unwrap_or(0);
    let _ = writeln!(
        out,
        "  \"fleet\": {{\"drain_dijkstras\": {}, \"drain_paths\": {}, \
         \"drain_flow_pushed\": {}, \"iterations\": {}}},",
        fleet("dijkstras"),
        fleet("paths"),
        fleet("flow_pushed"),
        fleet("iterations")
    );
    out.push_str("  \"runs\": [\n");
    for (i, job) in doc.report.jobs.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let kind = match &job.job.kind {
            JobKind::Sweep { .. } => "sweep",
            JobKind::MinPeriod { .. } => "min_period",
        };
        let feasible = job.points.iter().filter(|p| p.feasible).count();
        let status = match &job.status {
            JobStatus::Ok => "ok",
            JobStatus::Failed(_) => "failed",
            JobStatus::TimedOut { .. } => "timed_out",
            JobStatus::Skipped => "skipped",
        };
        let _ = write!(
            out,
            "    {{\"design\": \"{}\", \"type\": \"{kind}\", \"status\": \"{status}\", \
             \"retries\": {}, \"shards\": {}, \
             \"points\": {}, \"feasible\": {feasible}, \"cache_hit_rate\": {:.4}, \
             \"elapsed_ns\": {}",
            escape(&job.job.design),
            job.retries,
            job.shards,
            job.points.len(),
            job.cache_hit_rate(),
            job.elapsed.as_nanos()
        );
        if let JobStatus::Failed(error) = &job.status {
            let _ = write!(out, ", \"error\": \"{}\"", escape(&error.to_string()));
        }
        if let JobStatus::TimedOut { elapsed_ms, points_completed, .. } = &job.status {
            let _ = write!(
                out,
                ", \"timed_out_after_ms\": {elapsed_ms}, \"points_completed\": {points_completed}"
            );
        }
        if let Some(min) = job.min_period_ps {
            let _ = write!(out, ", \"min_period_ps\": {min:?}");
        }
        let drain = |leaf: &str| job.points.iter().map(|p| p.drain_total(leaf)).sum::<u64>();
        let _ = write!(
            out,
            ", \"drain_dijkstras\": {}, \"drain_paths\": {}, \"drain_flow_pushed\": {}",
            drain("dijkstras"),
            drain("paths"),
            drain("flow_pushed")
        );
        out.push_str(", \"stage_us\": {");
        for (si, stage) in StageKind::ALL.iter().enumerate() {
            if si > 0 {
                out.push_str(", ");
            }
            let us: u64 = job.points.iter().map(|p| p.stage_micros(*stage)).sum();
            let _ = write!(out, "\"{}\": {us}", stage.name());
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::JobResult;
    use crate::spec::Job;
    use isdc_cache::CacheStats;

    #[test]
    fn json_shape_is_stable_and_nan_free() {
        // A job whose only point is infeasible: zero lookups. The rate must
        // render as 0.0000 — NaN would make the document unparseable.
        let infeasible = isdc_core::SweepPoint {
            clock_period_ps: 100.0,
            feasible: false,
            register_bits: 0,
            num_stages: 0,
            iterations: 0,
            warm_start: false,
            warm_solves: 0,
            cold_solves: 0,
            cache_hits: 0,
            cache_misses: 0,
            elapsed: Duration::ZERO,
            schedule: None,
            metrics: isdc_telemetry::MetricsFrame::new(),
        };
        let report = BatchReport {
            jobs: vec![JobResult {
                job: Job::sweep("tiny", vec![100.0]),
                points: vec![infeasible],
                min_period_ps: None,
                shards: 1,
                elapsed: Duration::from_nanos(5),
                status: JobStatus::Ok,
                retries: 0,
            }],
            threads: 8,
            shards: 1,
            elapsed: Duration::from_nanos(500),
            cache: CacheStats::default(),
            metrics: isdc_telemetry::MetricsFrame::new(),
        };
        let doc = BatchBenchDoc {
            mode: "quick",
            designs: 1,
            report: &report,
            hardware_threads: 4,
            repeats: 1,
            serial_total: Some(Duration::from_nanos(2000)),
            cold_total: Some(Duration::from_nanos(8000)),
            scaling: &[
                ScalingRow { threads: 1, total: Duration::from_nanos(1900) },
                ScalingRow { threads: 8, total: Duration::from_nanos(500) },
            ],
            bit_identical: true,
        };
        let json = render_batch_json(&doc);
        for needle in [
            "\"bench\": \"batch\"",
            "\"hardware_threads\": 4",
            "\"repeats\": 1",
            "\"bit_identical\": true",
            "\"jobs_failed\": 0, \"jobs_retried\": 0, \"jobs_timed_out\": 0",
            "\"evictions\": 0",
            "\"status\": \"ok\", \"retries\": 0",
            "\"serial_total_ns\": 2000",
            "\"speedup_vs_serial\": 4.00",
            "\"speedup_vs_cold\": 16.00",
            "\"max_threads_measured\": 8, \"speedup_at_max_threads\": 4.00",
            "\"cache_hit_rate\": 0.0000",
            "\"hit_rate\": 0.0000",
            "\"feasible\": 0",
            "\"fleet\": {\"drain_dijkstras\": 0",
            "\"drain_paths\": 0",
            "\"stage_us\": {\"extract\": 0",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        assert!(!json.contains("NaN"), "rates must be guarded: {json}");
    }
}
