//! # isdc-faults — deterministic fault injection for the ISDC fleet
//!
//! Chaos testing needs failures that are **reproducible**: a fault that
//! fires on "the 3rd oracle evaluation" fires there every run, so a chaos
//! test can assert the exact blast radius (one failed job, everything else
//! bit-identical). This crate provides that: a [`FaultPlan`] keyed by
//! *site name + hit count*, installed process-globally, consulted by inert
//! hooks compiled into the production code.
//!
//! The contract mirrors `isdc-telemetry`'s: **disabled cost ≈ zero**. With
//! no plan installed, [`check`] (and its wrappers [`fire`] / [`trip`]) is a
//! single relaxed atomic load — no lock, no allocation, no clock read — so
//! hooks can sit on warm paths permanently (`tests/overhead.rs` enforces
//! this with a counting allocator, same as the telemetry guard).
//!
//! # Sites
//!
//! A *site* is a `&'static str` name at an instrumented point; the bundled
//! hooks are listed in [`SITES`]:
//!
//! | site                 | location                              | effect of a fault |
//! |----------------------|---------------------------------------|-------------------|
//! | `oracle/eval`        | `CachingOracle::evaluate`             | panic             |
//! | `cache/insert`       | `DelayCache::insert`                  | panic             |
//! | `snapshot/write`     | `DelayCache::save`                    | torn write / error / panic |
//! | `solver/drain`       | the pipeline's Solve stage            | error / panic     |
//! | `batch/shard`        | the batch worker, before a shard runs | panic             |
//! | `pipeline/iteration` | `run_pipeline`, top of each iteration | error / panic     |
//! | `batch/shard-stall`  | the batch worker, before a shard runs | stall (sleep)     |
//!
//! # Determinism
//!
//! Hit counts are per-site and process-global: the *N*-th call to a site
//! fires the arm planned for hit *N*, regardless of which thread makes it.
//! Under a multi-threaded fleet the interleaving decides *which* job owns
//! the N-th call, so the failed job may vary with thread count — but
//! exactly one fault fires per planned arm, and every job the fault did
//! not touch is bit-identical to a fault-free run (the shared cache and
//! potentials are pure accelerators). Single-threaded runs are fully
//! deterministic end to end.
//!
//! # Examples
//!
//! ```
//! use isdc_faults::{FaultKind, FaultPlan};
//!
//! // Nothing installed: hooks are inert.
//! assert!(isdc_faults::check("oracle/eval").is_none());
//!
//! // Fail the second oracle evaluation.
//! isdc_faults::install(FaultPlan::new().with("oracle/eval", 1, FaultKind::Error));
//! assert!(isdc_faults::check("oracle/eval").is_none()); // hit 0
//! assert_eq!(isdc_faults::check("oracle/eval"), Some(FaultKind::Error)); // hit 1
//! assert!(isdc_faults::check("oracle/eval").is_none()); // hit 2
//! assert_eq!(isdc_faults::injected_count(), 1);
//! isdc_faults::clear();
//! ```

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// What an injected fault does at its site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the site (exercises `catch_unwind` isolation and lock
    /// poisoning recovery).
    Panic,
    /// Return an error from the site (exercises error propagation and the
    /// retry path). Sites that cannot return errors escalate this to a
    /// panic via [`fire`].
    Error,
    /// Truncate an in-flight write (exercises torn-write recovery). Only
    /// meaningful at write sites; elsewhere it behaves like
    /// [`FaultKind::Error`].
    TruncateWrite,
    /// Stall the calling thread at the site for [`stall_ms`] milliseconds
    /// (exercises deadlines and the batch stall watchdog). The stall
    /// happens *inside* the hook — every wrapper then proceeds normally
    /// ([`check`] reports `None`, [`fire`] returns, [`trip`] is `Ok`) —
    /// and it ends early if the thread's `isdc_cancel` token trips.
    /// Deliberately excluded from [`FaultPlan::seeded`] so seed-sweep
    /// chaos invariants (every fired fault fails a job) keep holding.
    Stall,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultKind::Panic => "panic",
            FaultKind::Error => "error",
            FaultKind::TruncateWrite => "truncate-write",
            FaultKind::Stall => "stall",
        })
    }
}

/// One planned injection: at `site`, on its `hit`-th call (0-based), do
/// `kind`. Each arm fires at most once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultArm {
    /// The instrumented site's name.
    pub site: String,
    /// Which call to the site fires the fault (0 = the first call).
    pub hit: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

/// A deterministic set of planned injections, installed with [`install`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The planned injections.
    pub arms: Vec<FaultArm>,
}

/// The catalog of sites the workspace hooks (see the crate docs table).
/// Seed sweeps iterate this; new hooks must be added here so chaos tests
/// cover them.
pub const SITES: &[&str] = &[
    "oracle/eval",
    "cache/insert",
    "snapshot/write",
    "solver/drain",
    "batch/shard",
    "pipeline/iteration",
    "batch/shard-stall",
];

impl FaultPlan {
    /// An empty plan (installing it still counts hits, but never fires).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: adds one arm.
    pub fn with(mut self, site: impl Into<String>, hit: u64, kind: FaultKind) -> Self {
        self.arms.push(FaultArm { site: site.into(), hit, kind });
        self
    }

    /// A single-fault plan derived deterministically from `seed`: picks one
    /// of `sites`, a small hit index, and a [`FaultKind`], all from a
    /// splitmix64 stream. The same seed always yields the same plan, so a
    /// chaos sweep over `seed in 0..N` is reproducible anywhere.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty.
    pub fn seeded(seed: u64, sites: &[&str]) -> Self {
        assert!(!sites.is_empty(), "seeded plan needs at least one site");
        let mut state = seed;
        let site = sites[(splitmix64(&mut state) % sites.len() as u64) as usize];
        let hit = splitmix64(&mut state) % 4;
        let kind = match splitmix64(&mut state) % 3 {
            0 => FaultKind::Panic,
            1 => FaultKind::Error,
            _ => FaultKind::TruncateWrite,
        };
        Self::new().with(site, hit, kind)
    }
}

/// The standard splitmix64 step — the same generator the workspace's
/// proptest shims use, chosen for its even low-bit diffusion.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

struct Installed {
    plan: FaultPlan,
    /// Calls seen so far, per site.
    hits: HashMap<String, u64>,
    /// Faults actually fired since install.
    injected: u64,
}

/// The one-relaxed-load fast-path gate: true only while a plan is
/// installed. Everything else lives behind the mutex.
static ARMED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Installed>> = Mutex::new(None);

/// How long a fired [`FaultKind::Stall`] sleeps, in milliseconds.
static STALL_MS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(250);

/// Sets the duration of injected stalls. Tests tune this so a stall
/// reliably overruns a deadline without inflating suite wall-time.
pub fn set_stall_ms(ms: u64) {
    STALL_MS.store(ms, Ordering::SeqCst);
}

/// The configured injected-stall duration in milliseconds (default 250).
pub fn stall_ms() -> u64 {
    STALL_MS.load(Ordering::Relaxed)
}

fn state_lock() -> std::sync::MutexGuard<'static, Option<Installed>> {
    // A panicking fault *inside* a hook caller can poison this lock while
    // it is held by no one relevant; recover rather than cascade — the
    // state is only ever mutated under the lock, so it is consistent.
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs `plan`, arming every hook, and resets hit/injected counters.
/// Replaces any previously installed plan.
pub fn install(plan: FaultPlan) {
    let mut state = state_lock();
    *state = Some(Installed { plan, hits: HashMap::new(), injected: 0 });
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms every hook and drops the installed plan. Hit and injected
/// counts reset on the next [`install`].
pub fn clear() {
    ARMED.store(false, Ordering::SeqCst);
    *state_lock() = None;
}

/// Whether a fault plan is currently installed.
#[inline]
pub fn enabled() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Faults fired since the last [`install`] (0 when disarmed).
pub fn injected_count() -> u64 {
    state_lock().as_ref().map_or(0, |s| s.injected)
}

/// The raw hook: counts a call to `site` and returns the planned fault for
/// this hit, if any. **Disabled cost: one relaxed atomic load.**
#[inline]
pub fn check(site: &'static str) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_slow(site)
}

#[cold]
fn check_slow(site: &'static str) -> Option<FaultKind> {
    let mut guard = state_lock();
    let state = guard.as_mut()?;
    let hit = {
        let counter = state.hits.entry(site.to_string()).or_insert(0);
        let hit = *counter;
        *counter += 1;
        hit
    };
    let fired = state
        .plan
        .arms
        .iter()
        .find(|arm| arm.site == site && arm.hit == hit)
        .map(|arm| arm.kind)?;
    state.injected += 1;
    drop(guard);
    // Stamp the site into the calling thread's flight-recorder tail, so a
    // post-mortem dump names the exact fault site even when the panic
    // unwinds through layers that lose the message.
    isdc_telemetry::flight_fault(site);
    if fired == FaultKind::Stall {
        // The stall happens here so every wrapper (`check`/`fire`/`trip`)
        // observes it identically, then proceeds as if nothing fired.
        // Sliced sleep: an `isdc_cancel` cancellation (deadline, watchdog)
        // cuts the stall short instead of holding the thread hostage.
        let deadline = std::time::Instant::now() + std::time::Duration::from_millis(stall_ms());
        while std::time::Instant::now() < deadline && !isdc_cancel::cancelled() {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        return None;
    }
    Some(fired)
}

/// An injected, non-panic fault surfaced as an error value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: &'static str,
    /// The planned kind ([`FaultKind::Error`] or
    /// [`FaultKind::TruncateWrite`]; panics never reach an error value).
    pub kind: FaultKind,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected {} fault at {}", self.kind, self.site)
    }
}

impl std::error::Error for InjectedFault {}

/// Hook for *infallible* sites: any planned fault becomes a panic (there
/// is no error channel to return through). Inert without a plan.
///
/// # Panics
///
/// Panics iff the installed plan fires at this site/hit.
#[inline]
pub fn fire(site: &'static str) {
    if let Some(kind) = check(site) {
        panic!("injected {kind} fault at {site}");
    }
}

/// Hook for *fallible* sites: a planned [`FaultKind::Panic`] panics,
/// anything else returns an [`InjectedFault`] for the caller to propagate.
/// Inert without a plan.
///
/// # Errors
///
/// Returns the injected fault when the plan fires with a non-panic kind.
///
/// # Panics
///
/// Panics iff the plan fires with [`FaultKind::Panic`].
#[inline]
pub fn trip(site: &'static str) -> Result<(), InjectedFault> {
    match check(site) {
        None => Ok(()),
        Some(FaultKind::Panic) => panic!("injected panic fault at {site}"),
        Some(kind) => Err(InjectedFault { site, kind }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// The installed plan is process-global; tests in this module must not
    /// interleave installs.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_hooks_are_inert() {
        let _g = serial();
        clear();
        assert!(!enabled());
        assert!(check("oracle/eval").is_none());
        fire("oracle/eval");
        assert!(trip("solver/drain").is_ok());
        assert_eq!(injected_count(), 0);
    }

    #[test]
    fn arm_fires_exactly_on_its_hit() {
        let _g = serial();
        install(FaultPlan::new().with("oracle/eval", 2, FaultKind::Error));
        assert_eq!(check("oracle/eval"), None);
        assert_eq!(check("cache/insert"), None, "other sites have their own counters");
        assert_eq!(check("oracle/eval"), None);
        assert_eq!(check("oracle/eval"), Some(FaultKind::Error));
        assert_eq!(check("oracle/eval"), None, "an arm fires once");
        assert_eq!(injected_count(), 1);
        clear();
    }

    #[test]
    fn reinstall_resets_counters() {
        let _g = serial();
        install(FaultPlan::new().with("s", 0, FaultKind::Error));
        assert!(check("s").is_some());
        install(FaultPlan::new().with("s", 0, FaultKind::Error));
        assert_eq!(injected_count(), 0, "install resets the injected count");
        assert!(check("s").is_some(), "and the hit counters");
        clear();
    }

    #[test]
    fn trip_surfaces_non_panic_kinds_as_errors() {
        let _g = serial();
        install(FaultPlan::new().with("solver/drain", 0, FaultKind::TruncateWrite));
        let err = trip("solver/drain").unwrap_err();
        assert_eq!(err.site, "solver/drain");
        assert!(err.to_string().contains("truncate-write"));
        clear();
    }

    #[test]
    fn fire_panics_on_any_kind() {
        let _g = serial();
        install(FaultPlan::new().with("cache/insert", 0, FaultKind::Error));
        let panicked = std::panic::catch_unwind(|| fire("cache/insert")).expect_err("must panic");
        let msg = panicked.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("cache/insert"), "{msg}");
        clear();
    }

    #[test]
    fn seeded_plans_are_deterministic_and_cover_sites() {
        let _g = serial();
        let mut sites_seen = std::collections::HashSet::new();
        for seed in 0..64 {
            let a = FaultPlan::seeded(seed, SITES);
            let b = FaultPlan::seeded(seed, SITES);
            assert_eq!(a, b, "seed {seed} must be reproducible");
            assert_eq!(a.arms.len(), 1);
            sites_seen.insert(a.arms[0].site.clone());
        }
        assert_eq!(sites_seen.len(), SITES.len(), "64 seeds must cover every site");
    }

    #[test]
    fn stall_delays_then_proceeds_as_if_unfired() {
        let _g = serial();
        set_stall_ms(40);
        install(FaultPlan::new().with("batch/shard-stall", 0, FaultKind::Stall));
        let t = std::time::Instant::now();
        fire("batch/shard-stall"); // must NOT panic: stall is transparent
        assert!(t.elapsed() >= std::time::Duration::from_millis(40), "hook must stall");
        assert_eq!(injected_count(), 1, "the stall still counts as injected");
        assert!(trip("batch/shard-stall").is_ok(), "arm fired once; later hits pass");
        clear();
        set_stall_ms(250);
    }

    #[test]
    fn cancellation_cuts_a_stall_short() {
        let _g = serial();
        set_stall_ms(60_000);
        install(FaultPlan::new().with("batch/shard-stall", 0, FaultKind::Stall));
        let token = isdc_cancel::CancelToken::with_deadline(std::time::Duration::from_millis(30));
        let _scope = token.install();
        let t = std::time::Instant::now();
        fire("batch/shard-stall");
        assert!(t.elapsed() < std::time::Duration::from_secs(30), "deadline must end the stall");
        clear();
        set_stall_ms(250);
    }

    #[test]
    fn concurrent_hits_fire_exactly_once() {
        let _g = serial();
        install(FaultPlan::new().with("oracle/eval", 40, FaultKind::Error));
        let fired = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..25 {
                        if check("oracle/eval").is_some() {
                            fired.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(fired.load(Ordering::Relaxed), 1, "exactly one of 100 racing hits fires");
        assert_eq!(injected_count(), 1);
        clear();
    }
}
