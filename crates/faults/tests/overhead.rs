//! The overhead guard for fault hooks, mirroring the telemetry guard: when
//! no plan is installed, [`isdc_faults::check`] must not allocate and must
//! cost no more than a relaxed atomic load plus a branch.
//!
//! Its own test binary, so the counting global allocator cannot affect any
//! other test process. The timing bound is loose (unoptimized test
//! builds); the zero-allocations assertion is the one that regresses first
//! if work sneaks in front of the armed check.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disarmed_hooks_allocate_nothing() {
    isdc_faults::clear();
    const CALLS: u64 = 100_000;
    let before = allocations();
    let t = Instant::now();
    for _ in 0..CALLS {
        assert!(isdc_faults::check("oracle/eval").is_none());
        isdc_faults::fire("cache/insert");
        assert!(isdc_faults::trip("solver/drain").is_ok());
    }
    let elapsed = t.elapsed();
    let after = allocations();

    assert_eq!(after - before, 0, "disarmed fault hooks must not allocate");

    // 3 hooks per iteration; same headroom as the telemetry guard — loose
    // enough for loaded CI, tight enough to catch a lock or a HashMap
    // lookup moving in front of the armed check.
    let per_call_ns = elapsed.as_nanos() as u64 / (CALLS * 3);
    assert!(per_call_ns < 2_000, "disarmed hook cost {per_call_ns}ns/call — hot path regressed");
}
