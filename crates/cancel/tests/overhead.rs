//! The overhead guard for cancel checkpoints, mirroring the telemetry and
//! faults guards: with no [`isdc_cancel::CancelScope`] installed anywhere,
//! [`isdc_cancel::checkpoint`] must not allocate and must cost no more
//! than a relaxed atomic load plus a branch.
//!
//! Its own test binary, so the counting global allocator cannot affect any
//! other test process. The timing bound is loose (unoptimized test
//! builds); the zero-allocations assertion is the one that regresses first
//! if work sneaks in front of the armed gate.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn disarmed_checkpoints_allocate_nothing() {
    assert!(!isdc_cancel::armed(), "guard assumes no scope is installed");
    const CALLS: u64 = 100_000;
    let before = allocations();
    let t = Instant::now();
    for _ in 0..CALLS {
        assert!(isdc_cancel::checkpoint().is_ok());
        assert!(!isdc_cancel::cancelled());
    }
    let elapsed = t.elapsed();
    let after = allocations();

    assert_eq!(after - before, 0, "disarmed cancel checkpoints must not allocate");

    // 2 checkpoints per iteration; same headroom as the faults guard —
    // loose enough for loaded CI, tight enough to catch a clock read or a
    // thread-local walk moving in front of the armed gate.
    let per_call_ns = elapsed.as_nanos() as u64 / (CALLS * 2);
    assert!(
        per_call_ns < 2_000,
        "disarmed checkpoint cost {per_call_ns}ns/call — hot path regressed"
    );
}
