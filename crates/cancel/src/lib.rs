//! # isdc-cancel — cooperative cancellation and deadlines
//!
//! The workspace's hot loops (pipeline iterations, per-subgraph oracle
//! evaluations, sweep points, SSP drain phases) poll [`checkpoint`] so a
//! runaway solve can be stopped *cleanly*: the loop unwinds through its
//! normal error path, already-completed work is kept, and no partially
//! mutated solver/cache state survives (callers discard in-flight state on
//! the cancellation error, exactly as they do for any other solve error).
//!
//! The contract mirrors `isdc-telemetry` and `isdc-faults`: **disarmed
//! cost ≈ zero**. With no [`CancelScope`] installed anywhere in the
//! process, [`checkpoint`] is a single relaxed atomic load — no lock, no
//! allocation, no clock read — so the polls can sit on warm paths
//! permanently (`tests/overhead.rs` enforces this with a counting
//! allocator, same as the telemetry and faults guards).
//!
//! # Model
//!
//! A [`CancelToken`] is a cheaply clonable handle carrying a cancel flag
//! and an optional wall-clock deadline. [`CancelToken::install`] arms the
//! calling thread: while the returned [`CancelScope`] guard lives,
//! [`checkpoint`] on that thread consults the token (flag first, then the
//! deadline). Scopes nest — an inner scope's checkpoint also honors every
//! outer token, so a fleet-level budget and a per-job deadline compose.
//! Tokens cross threads by cloning ([`current`] hands workers the
//! installing thread's token to re-install).
//!
//! # Examples
//!
//! ```
//! use isdc_cancel::{checkpoint, CancelToken};
//!
//! // Disarmed: checkpoints are free and always pass.
//! assert!(checkpoint().is_ok());
//!
//! let token = CancelToken::new();
//! let scope = token.install();
//! assert!(checkpoint().is_ok());
//! token.cancel();
//! assert!(checkpoint().is_err());
//! drop(scope);
//! assert!(checkpoint().is_ok(), "disarmed again once the scope ends");
//! ```

#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The cancellation error: the installed token was cancelled or its
/// deadline passed. Carrier-free by design — the caller's context (which
/// loop, which point) is what matters, and the caller has it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("cancelled (deadline exceeded or cancel requested)")
    }
}

impl std::error::Error for Cancelled {}

struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shareable cancellation handle: a cancel flag plus an optional
/// deadline. Clones share state; any clone can [`CancelToken::cancel`]
/// and every installed scope observes it.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token with no deadline; it only trips when [`cancel`]led.
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn new() -> Self {
        Self { inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that trips `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + timeout)
    }

    /// A token that trips at the absolute instant `deadline` — the form
    /// the batch engine uses so a job deadline and the fleet budget can be
    /// folded into one token (`min` of the two instants).
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Self {
            inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: Some(deadline) }),
        }
    }

    /// Requests cancellation. Idempotent; visible to every clone and every
    /// installed scope on its next [`checkpoint`].
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token has tripped: explicitly cancelled, or past its
    /// deadline. Reads the clock only when a deadline is set and the flag
    /// is not already up.
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }

    /// The absolute deadline, if one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Arms the calling thread: while the returned guard lives,
    /// [`checkpoint`] consults this token (in addition to any outer
    /// scopes). Dropping the guard disarms in LIFO order.
    #[must_use = "the scope guard arms checkpoints only while it lives"]
    pub fn install(&self) -> CancelScope {
        CURRENT.with(|stack| stack.borrow_mut().push(self.clone()));
        ARMED.fetch_add(1, Ordering::SeqCst);
        CancelScope { _not_send: std::marker::PhantomData }
    }
}

/// Count of live [`CancelScope`]s process-wide: the one-relaxed-load fast
/// gate. Zero means every checkpoint in the process is free.
static ARMED: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// The calling thread's installed tokens, innermost last.
    static CURRENT: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard from [`CancelToken::install`]: pops the token and disarms
/// on drop. Deliberately `!Send` (thread-local bookkeeping).
pub struct CancelScope {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        ARMED.fetch_sub(1, Ordering::SeqCst);
        CURRENT.with(|stack| {
            stack.borrow_mut().pop();
        });
    }
}

/// Whether any scope is installed process-wide (the armed fast gate).
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed) != 0
}

/// The cooperative poll hot loops call. **Disarmed cost: one relaxed
/// atomic load.** Armed, it walks the calling thread's installed tokens
/// (flag check, then deadline clock read) and fails if any has tripped.
///
/// # Errors
///
/// Returns [`Cancelled`] when an installed token on this thread is
/// cancelled or past its deadline.
#[inline]
pub fn checkpoint() -> Result<(), Cancelled> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return Ok(());
    }
    checkpoint_slow()
}

#[cold]
fn checkpoint_slow() -> Result<(), Cancelled> {
    CURRENT.with(|stack| {
        for token in stack.borrow().iter() {
            if token.is_cancelled() {
                return Err(Cancelled);
            }
        }
        Ok(())
    })
}

/// Whether the calling thread is currently cancelled — [`checkpoint`] as
/// a boolean, for loops that break instead of erroring.
#[inline]
pub fn cancelled() -> bool {
    checkpoint().is_err()
}

/// The innermost token installed on the calling thread, if any. Worker
/// pools use this to hand the spawning thread's token to their threads
/// (clone here, [`CancelToken::install`] there).
pub fn current() -> Option<CancelToken> {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return None;
    }
    CURRENT.with(|stack| stack.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_checkpoints_pass() {
        assert!(!armed());
        assert!(checkpoint().is_ok());
        assert!(!cancelled());
        assert!(current().is_none());
    }

    #[test]
    fn cancel_trips_installed_scope_only_while_it_lives() {
        let token = CancelToken::new();
        assert!(!token.is_cancelled());
        {
            let _scope = token.install();
            assert!(armed());
            assert!(checkpoint().is_ok());
            token.cancel();
            assert!(token.is_cancelled());
            assert_eq!(checkpoint(), Err(Cancelled));
            assert!(cancelled());
        }
        assert!(checkpoint().is_ok(), "a dropped scope disarms this thread");
    }

    #[test]
    fn deadline_trips_without_an_explicit_cancel() {
        let token = CancelToken::with_deadline(Duration::from_millis(10));
        let _scope = token.install();
        assert!(checkpoint().is_ok(), "not yet expired");
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(checkpoint(), Err(Cancelled));
        // An already-past absolute deadline trips immediately.
        let past = CancelToken::with_deadline_at(Instant::now() - Duration::from_millis(1));
        assert!(past.is_cancelled());
    }

    #[test]
    fn nested_scopes_honor_the_outer_token() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        let _outer_scope = outer.install();
        let _inner_scope = inner.install();
        assert_eq!(current().map(|t| t.is_cancelled()), Some(false));
        outer.cancel();
        assert_eq!(checkpoint(), Err(Cancelled), "inner work must see the outer cancellation");
    }

    #[test]
    fn tokens_cross_threads_by_cloning() {
        let token = CancelToken::new();
        let _scope = token.install();
        let handed = current().expect("installed token is current");
        std::thread::scope(|scope| {
            scope
                .spawn(move || {
                    assert!(checkpoint().is_ok(), "fresh thread has no scope");
                    let _worker_scope = handed.install();
                    assert!(checkpoint().is_ok());
                    token.cancel();
                    assert_eq!(checkpoint(), Err(Cancelled));
                })
                .join()
                .unwrap();
        });
    }

    #[test]
    fn scopes_on_one_thread_do_not_arm_token_checks_on_another() {
        // Another thread pays the slow path while this one is armed, but
        // with no token installed there it must still pass.
        let token = CancelToken::new();
        token.cancel();
        let _scope = token.install();
        std::thread::scope(|scope| {
            scope.spawn(|| assert!(checkpoint().is_ok())).join().unwrap();
        });
    }
}
