//! Fig. 6: path vs cone vs window expansion ablation.
//!
//! Reproduces the three panels (4, 8, 16 subgraphs per iteration) with
//! fanout-driven scoring (the winner of Fig. 5), printing register usage per
//! iteration for the three shape strategies.
//!
//! Usage: `cargo run -p isdc-bench --bin fig6 --release [iterations]`

use isdc_bench::ablation_series;
use isdc_core::{IsdcConfig, ScoringStrategy, ShapeStrategy};
use isdc_synth::{OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn main() {
    let iterations: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30);

    let suite = isdc_benchsuite::suite();
    let bench =
        suite.iter().find(|b| b.name == "ml_core_datapath2").expect("ablation design present");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    println!("Fig. 6: path vs cone vs window, fanout-driven, {iterations} iterations");
    for m in [4usize, 8, 16] {
        println!("\n-- {m} subgraphs per iteration --");
        let mut series = Vec::new();
        for (label, shape) in [
            ("path", ShapeStrategy::Path),
            ("cone", ShapeStrategy::Cone),
            ("window", ShapeStrategy::Window),
        ] {
            let config = IsdcConfig {
                clock_period_ps: bench.clock_period_ps,
                subgraphs_per_iteration: m,
                max_iterations: iterations,
                scoring: ScoringStrategy::FanoutDriven,
                shape,
                threads: 4,
                convergence_patience: usize::MAX,
                ..IsdcConfig::paper_defaults(bench.clock_period_ps)
            };
            series.push((label, ablation_series(&bench.graph, &model, &oracle, &config)));
        }
        println!("{:>5} {:>8} {:>8} {:>8}", "iter", "path", "cone", "window");
        for i in 0..=iterations {
            println!("{:>5} {:>8} {:>8} {:>8}", i, series[0].1[i], series[1].1[i], series[2].1[i]);
        }
        let finals: Vec<u64> = series.iter().map(|(_, s)| *s.last().expect("series")).collect();
        println!(
            "# finals: path={} cone={} window={} — paper's shape: cone/window <= path, window best{}",
            finals[0],
            finals[1],
            finals[2],
            if finals[2] <= finals[0] && finals[1] <= finals[0] { " [OK]" } else { " [DEVIATION]" }
        );
    }
}
