//! Fig. 7: delay-estimation accuracy across iterations.
//!
//! For every benchmark, runs ISDC and tracks the mean relative error of the
//! scheduler's stage-delay estimates against downstream STA — once with the
//! feedback-updated matrix (ISDC) and once with the never-updated naive
//! matrix (original SDC). The paper's shape: ISDC's error falls towards a
//! few percent while the original SDC's error grows as schedules are
//! refined.
//!
//! Usage: `cargo run -p isdc-bench --bin fig7 --release [iterations]`

use isdc_core::{run_isdc, IsdcConfig};
use isdc_synth::{OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn main() {
    let iterations: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(15);

    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    // error[i] over benchmarks, averaged; series padded by repetition after
    // convergence.
    let mut isdc_err = vec![0.0f64; iterations + 1];
    let mut sdc_err = vec![0.0f64; iterations + 1];
    let mut counted = 0usize;
    for b in isdc_benchsuite::suite() {
        let mut config = IsdcConfig::paper_defaults(b.clock_period_ps);
        config.max_iterations = iterations;
        config.convergence_patience = usize::MAX;
        let result = run_isdc(&b.graph, &model, &oracle, &config)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let mut last_isdc = 0.0;
        let mut last_sdc = 0.0;
        for i in 0..=iterations {
            if let Some(rec) = result.history.get(i) {
                last_isdc = rec.estimation_error_pct;
                last_sdc = rec.naive_estimation_error_pct;
            }
            isdc_err[i] += last_isdc;
            sdc_err[i] += last_sdc;
        }
        counted += 1;
    }

    println!("Fig. 7: mean delay-estimation error across the 17 benchmarks");
    println!("{:>5} {:>12} {:>12}", "iter", "sdc_err_%", "isdc_err_%");
    for i in 0..=iterations {
        println!(
            "{:>5} {:>12.2} {:>12.2}",
            i,
            sdc_err[i] / counted as f64,
            isdc_err[i] / counted as f64
        );
    }
    let first = isdc_err[0] / counted as f64;
    let last = isdc_err[iterations] / counted as f64;
    let sdc_first = sdc_err[0] / counted as f64;
    let sdc_last = sdc_err[iterations] / counted as f64;
    println!("# ISDC error: {first:.1}% -> {last:.1}% (paper converges to 3.4%)");
    println!("# original SDC error: {sdc_first:.1}% -> {sdc_last:.1}% (paper: increases)");
    println!(
        "# shape check: ISDC decreases {}; SDC >= ISDC at the end {}",
        if last <= first { "[OK]" } else { "[DEVIATION]" },
        if sdc_last >= last { "[OK]" } else { "[DEVIATION]" },
    );
}
