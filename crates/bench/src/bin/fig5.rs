//! Fig. 5: delay-driven vs fanout-driven subgraph extraction ablation.
//!
//! Reproduces the three panels (4, 8, 16 subgraphs per iteration) with the
//! path-based shape strategy, printing register usage per iteration for both
//! scoring strategies on the mid-size `ml_core_datapath2` design.
//!
//! Usage: `cargo run -p isdc-bench --bin fig5 --release [iterations]`

use isdc_bench::ablation_series;
use isdc_core::{IsdcConfig, ScoringStrategy, ShapeStrategy};
use isdc_synth::{OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn main() {
    let iterations: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(30);

    let suite = isdc_benchsuite::suite();
    let bench =
        suite.iter().find(|b| b.name == "ml_core_datapath2").expect("ablation design present");
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    println!(
        "Fig. 5: delay-driven (dd) vs fanout-driven (fd), path-based, {iterations} iterations"
    );
    for m in [4usize, 8, 16] {
        println!("\n-- {m} subgraphs per iteration --");
        let mut series = Vec::new();
        for (label, scoring) in
            [("dd", ScoringStrategy::DelayDriven), ("fd", ScoringStrategy::FanoutDriven)]
        {
            let config = IsdcConfig {
                clock_period_ps: bench.clock_period_ps,
                subgraphs_per_iteration: m,
                max_iterations: iterations,
                scoring,
                shape: ShapeStrategy::Path,
                threads: 4,
                convergence_patience: usize::MAX, // run every iteration for the figure
                ..IsdcConfig::paper_defaults(bench.clock_period_ps)
            };
            series.push((label, ablation_series(&bench.graph, &model, &oracle, &config)));
        }
        println!("{:>5} {:>8} {:>8}", "iter", "dd_regs", "fd_regs");
        for i in 0..=iterations {
            println!("{:>5} {:>8} {:>8}", i, series[0].1[i], series[1].1[i]);
        }
        let dd_final = *series[0].1.last().expect("series");
        let fd_final = *series[1].1.last().expect("series");
        println!(
            "# fd converges to {fd_final} vs dd {dd_final} — paper's shape: fd lower/faster{}",
            if fd_final <= dd_final { " [OK]" } else { " [DEVIATION]" }
        );
    }
}
