//! `bench_gate` — the benchmark regression gate.
//!
//! Reads the freshly emitted `BENCH_solver.json`, `BENCH_cache.json`,
//! `BENCH_sweep.json` and `BENCH_batch.json` from the workspace root,
//! compares their speedups against the checked-in floors
//! (`crates/bench/floors.json`, keyed by the document's own `mode` field so
//! CI's quick smokes and full release runs each gate against appropriate
//! expectations), and exits nonzero on any regression. The batch document
//! additionally must attest `bit_identical: true`, and its serial-speedup
//! floor scales with the measuring machine's `hardware_threads` — flat
//! wall-clock scaling on a 1-core container is physics, not a regression,
//! while a multi-core runner is held to real scaling.
//!
//! ```text
//! bench_gate [--dir <workspace root>] [--floors <floors.json>]
//!            [--require solver,cache,sweep,batch]
//! ```
//!
//! Without `--require`, every `BENCH_*.json` that exists is gated and
//! missing ones are skipped with a note; `--require` turns absence into a
//! failure (CI passes the artifacts it just generated).

use isdc_cache::json::Parser;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// A minimal JSON value tree for the gate's read-only inspection.
#[derive(Clone, Debug, PartialEq)]
enum Value {
    Number(f64),
    Bool(bool),
    Text(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser::new(text);
        parse_value(&mut p)
    }

    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn number(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::Number(x)) => Some(*x),
            _ => None,
        }
    }

    fn text(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Text(s)) => Some(s),
            _ => None,
        }
    }

    fn array(&self, key: &str) -> Option<&[Value]> {
        match self.get(key) {
            Some(Value::Array(items)) => Some(items),
            _ => None,
        }
    }
}

fn parse_value(p: &mut Parser<'_>) -> Result<Value, String> {
    match p.peek() {
        Some(b'{') => {
            p.expect(b'{')?;
            let mut map = BTreeMap::new();
            if !p.peek_close(b'}') {
                loop {
                    let key = p.string()?;
                    p.expect(b':')?;
                    map.insert(key, parse_value(p)?);
                    if !p.comma_or_close(b'}')? {
                        break;
                    }
                }
            }
            Ok(Value::Object(map))
        }
        Some(b'[') => {
            p.expect(b'[')?;
            let mut items = Vec::new();
            if !p.peek_close(b']') {
                loop {
                    items.push(parse_value(p)?);
                    if !p.comma_or_close(b']')? {
                        break;
                    }
                }
            }
            Ok(Value::Array(items))
        }
        Some(b'"') => p.string().map(Value::Text),
        Some(b't') | Some(b'f') => p.boolean().map(Value::Bool),
        _ => p.number().map(Value::Number),
    }
}

/// One floor violation (or pass) line.
struct Check {
    /// Which `BENCH_*.json` the check came from — on failure, that
    /// document is diffed against its `.baseline.json` for attribution.
    bench: &'static str,
    label: String,
    floor: f64,
    actual: f64,
}

impl Check {
    fn ok(&self) -> bool {
        self.actual >= self.floor
    }
}

/// Flattens a document into the `path -> number` map
/// [`isdc_telemetry::attribute`] diffs. Array elements that are objects
/// with a `"name"` field use the name (not the index) as their path
/// segment, so per-design rows stay aligned across reordered documents.
fn flatten(value: &Value, path: &str, out: &mut BTreeMap<String, f64>) {
    let join = |segment: &str| {
        if path.is_empty() {
            segment.to_string()
        } else {
            format!("{path}/{segment}")
        }
    };
    match value {
        Value::Number(x) => {
            out.insert(path.to_string(), *x);
        }
        Value::Object(map) => {
            for (key, child) in map {
                flatten(child, &join(key), out);
            }
        }
        Value::Array(items) => {
            for (i, item) in items.iter().enumerate() {
                let segment = match item.text("name") {
                    Some(name) => name.to_string(),
                    None => i.to_string(),
                };
                flatten(item, &join(&segment), out);
            }
        }
        Value::Bool(_) | Value::Text(_) => {}
    }
}

/// The ranked regression attribution printed when a floor goes red:
/// which metrics moved between the baseline and current document, by
/// contribution to the wall-clock delta.
fn attribution_report(baseline: &Value, current: &Value) -> String {
    let mut old = BTreeMap::new();
    let mut new = BTreeMap::new();
    flatten(baseline, "", &mut old);
    flatten(current, "", &mut new);
    let (total, rows) = isdc_telemetry::attribute(&old, &new);
    isdc_telemetry::render_attribution(total, &rows, 15)
}

fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    (values.iter().map(|v| v.max(1e-12).ln()).sum::<f64>() / values.len() as f64).exp()
}

/// Floors for one (bench, mode) pair, straight from floors.json.
fn floors_for<'a>(floors: &'a Value, bench: &str, mode: &str) -> Result<&'a Value, String> {
    floors
        .get(bench)
        .and_then(|b| b.get(mode))
        .ok_or_else(|| format!("floors.json has no entry for bench `{bench}` mode `{mode}`"))
}

fn floor_number(entry: &Value, key: &str) -> Result<f64, String> {
    entry.number(key).ok_or_else(|| format!("floors entry lacks `{key}`"))
}

fn gate_solver(doc: &Value, floors: &Value, checks: &mut Vec<Check>) -> Result<(), String> {
    let mode = doc.text("mode").unwrap_or("full");
    let entry = floors_for(floors, "solver", mode)?;
    let designs = doc.array("designs").ok_or("solver doc lacks `designs`")?;
    let speedups: Vec<f64> = designs.iter().filter_map(|d| d.number("speedup")).collect();
    if speedups.is_empty() {
        return Err("solver doc has no per-design speedups".into());
    }
    checks.push(Check {
        bench: "solver",
        label: format!("solver[{mode}] min warm speedup"),
        floor: floor_number(entry, "warm_speedup_min")?,
        actual: speedups.iter().copied().fold(f64::INFINITY, f64::min),
    });
    checks.push(Check {
        bench: "solver",
        label: format!("solver[{mode}] geomean warm speedup"),
        floor: floor_number(entry, "warm_speedup_geomean")?,
        actual: geomean(&speedups),
    });
    // Eq. 2 sparsification: the densest design (crc32 — always in the
    // quick subset) must keep pruning at least the floored fraction of the
    // dense emission, i.e. a ratio of 0.5 is a 2x constraint-count cut.
    let crc32 = designs
        .iter()
        .find(|d| d.text("name") == Some("crc32"))
        .ok_or("solver doc lacks a crc32 design row")?;
    checks.push(Check {
        bench: "solver",
        label: format!("solver[{mode}] crc32 LP pruning ratio"),
        floor: floor_number(entry, "pruning_ratio_min")?,
        actual: crc32.number("pruning_ratio").ok_or("crc32 row lacks `pruning_ratio`")?,
    });
    // The bulk-retarget drain rows: batched vs the retained serial
    // reference, plus the structural attestation that batching batches
    // (never more Dijkstra passes than augmenting paths).
    let drain = doc.array("drain").ok_or("solver doc lacks `drain` (bulk-retarget rows)")?;
    let drain_speedups: Vec<f64> = drain.iter().filter_map(|d| d.number("speedup")).collect();
    if drain_speedups.is_empty() {
        return Err("solver doc has no drain speedups".into());
    }
    checks.push(Check {
        bench: "solver",
        label: format!("solver[{mode}] min drain speedup (batched vs serial)"),
        floor: floor_number(entry, "drain_speedup_min")?,
        actual: drain_speedups.iter().copied().fold(f64::INFINITY, f64::min),
    });
    for row in drain {
        let n = row.number("n").unwrap_or(0.0);
        let dijkstras = row.number("dijkstras_batched").ok_or("drain row lacks dijkstras")?;
        let paths = row.number("paths").ok_or("drain row lacks paths")?;
        if dijkstras > paths {
            return Err(format!("drain row n={n}: {dijkstras} Dijkstras exceed {paths} paths"));
        }
    }
    Ok(())
}

fn gate_cache(doc: &Value, floors: &Value, checks: &mut Vec<Check>) -> Result<(), String> {
    let mode = doc.text("mode").unwrap_or("full");
    let entry = floors_for(floors, "cache", mode)?;
    for key in ["warm_speedup_vs_uncached", "warm_speedup_vs_cold"] {
        checks.push(Check {
            bench: "cache",
            label: format!("cache[{mode}] {key}"),
            floor: floor_number(entry, key)?,
            actual: doc.number(key).ok_or_else(|| format!("cache doc lacks `{key}`"))?,
        });
    }
    Ok(())
}

fn gate_sweep(doc: &Value, floors: &Value, checks: &mut Vec<Check>) -> Result<(), String> {
    let mode = doc.text("mode").unwrap_or("full");
    let entry = floors_for(floors, "sweep", mode)?;
    for key in ["speedup_vs_cold", "speedup_vs_independent"] {
        checks.push(Check {
            bench: "sweep",
            label: format!("sweep[{mode}] {key}"),
            floor: floor_number(entry, key)?,
            actual: doc.number(key).ok_or_else(|| format!("sweep doc lacks `{key}`"))?,
        });
    }
    drain_sanity(doc.array("runs").unwrap_or(&[]), "sweep run")?;
    Ok(())
}

/// Structural sanity over the registry-derived drain fields rows now
/// carry: SSP pushes at least one augmenting path per Dijkstra pass, so
/// `drain_dijkstras <= drain_paths` whenever any path was pushed. Rows
/// without the fields (older documents) pass vacuously — the gate
/// tolerates enrichment, it doesn't require it.
fn drain_sanity(rows: &[Value], what: &str) -> Result<(), String> {
    for (i, row) in rows.iter().enumerate() {
        let (Some(dijkstras), Some(paths)) =
            (row.number("drain_dijkstras"), row.number("drain_paths"))
        else {
            continue;
        };
        if paths > 0.0 && dijkstras > paths {
            return Err(format!("{what} {i}: {dijkstras} drain Dijkstras exceed {paths} paths"));
        }
    }
    Ok(())
}

fn gate_batch(doc: &Value, floors: &Value, checks: &mut Vec<Check>) -> Result<(), String> {
    let mode = doc.text("mode").unwrap_or("full");
    let entry = floors_for(floors, "batch", mode)?;
    if doc.get("bit_identical") != Some(&Value::Bool(true)) {
        return Err("batch doc does not attest bit_identical: true".into());
    }
    // Robustness attestation: a bench that dropped jobs, or only survived
    // via the retry machinery, is not a valid measurement. The fields are
    // required — their absence means the document predates them.
    for key in ["jobs_failed", "jobs_retried", "jobs_timed_out"] {
        match doc.number(key) {
            None => return Err(format!("batch doc lacks `{key}`")),
            Some(n) if n != 0.0 => return Err(format!("batch doc attests {key} = {n}, want 0")),
            Some(_) => {}
        }
    }
    let hardware = doc.number("hardware_threads").unwrap_or(1.0);
    let max_threads = doc.number("max_threads_measured").ok_or("batch doc lacks scaling")?;
    let best = doc
        .array("scaling")
        .and_then(|rows| rows.iter().find(|r| r.number("threads") == Some(max_threads)).cloned())
        .ok_or("batch doc lacks the max-threads scaling row")?;
    checks.push(Check {
        bench: "batch",
        label: format!("batch[{mode}] speedup vs cold @ {max_threads} threads"),
        floor: floor_number(entry, "vs_cold_at_max_threads")?,
        actual: best.number("speedup_vs_cold").ok_or("batch scaling row lacks speedup_vs_cold")?,
    });
    // Wall-clock scaling against the serial session sweep is gated to what
    // the measuring hardware can express: a 1-core container cannot scale,
    // an 8-core runner must.
    let expected_threads = hardware.min(max_threads);
    let floor = floor_number(entry, "vs_serial_abs_floor")?
        .max(floor_number(entry, "vs_serial_per_expected_thread")? * expected_threads);
    checks.push(Check {
        bench: "batch",
        label: format!(
            "batch[{mode}] speedup vs serial @ {max_threads} threads ({hardware} hw threads)"
        ),
        floor,
        actual: doc
            .number("speedup_at_max_threads")
            .ok_or("batch doc lacks speedup_at_max_threads")?,
    });
    drain_sanity(doc.array("runs").unwrap_or(&[]), "batch run")?;
    Ok(())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}

fn load(path: &Path) -> Result<Value, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Value::parse(&text).map_err(|e| format!("parsing {}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = flag_value(&args, "--dir")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."));
    let floors_path = flag_value(&args, "--floors")
        .map(PathBuf::from)
        .unwrap_or_else(|| Path::new(env!("CARGO_MANIFEST_DIR")).join("floors.json"));
    let required: Vec<&str> =
        flag_value(&args, "--require").map(|v| v.split(',').collect()).unwrap_or_default();
    const KNOWN: [&str; 4] = ["solver", "cache", "sweep", "batch"];
    // A typo in --require must fail loudly, not silently un-require a bench.
    for name in &required {
        if !KNOWN.contains(name) {
            eprintln!("bench_gate: unknown bench `{name}` in --require (known: {KNOWN:?})");
            return ExitCode::FAILURE;
        }
    }

    let floors = match load(&floors_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };

    type GateFn = fn(&Value, &Value, &mut Vec<Check>) -> Result<(), String>;
    let benches: [(&str, GateFn); 4] = [
        ("solver", gate_solver),
        ("cache", gate_cache),
        ("sweep", gate_sweep),
        ("batch", gate_batch),
    ];
    let mut checks: Vec<Check> = Vec::new();
    let mut failures = 0usize;
    let mut loaded: Vec<(&'static str, Value)> = Vec::new();
    let mut red: Vec<&'static str> = Vec::new();
    for (name, gate) in benches {
        let path = dir.join(format!("BENCH_{name}.json"));
        if !path.exists() {
            if required.contains(&name) {
                eprintln!("FAIL  {name}: required artifact {} is missing", path.display());
                failures += 1;
            } else {
                println!("skip  {name}: no {} (not required)", path.display());
            }
            continue;
        }
        match load(&path) {
            Ok(doc) if doc.text("mode") == Some("cli") => {
                // A one-off `isdc-cli batch --out` measurement has no
                // baselines and no bit-identity attestation; it is not a
                // regression-gateable document.
                println!("skip  {name}: {} is a cli measurement, not a bench", path.display());
            }
            Ok(doc) => {
                if let Err(e) = gate(&doc, &floors, &mut checks) {
                    eprintln!("FAIL  {name}: {e}");
                    failures += 1;
                    red.push(name);
                }
                loaded.push((name, doc));
            }
            Err(e) => {
                eprintln!("FAIL  {name}: {e}");
                failures += 1;
            }
        }
    }
    for check in &checks {
        if check.ok() {
            println!("pass  {} = {:.2} (floor {:.2})", check.label, check.actual, check.floor);
        } else {
            eprintln!("FAIL  {} = {:.2} below floor {:.2}", check.label, check.actual, check.floor);
            failures += 1;
            red.push(check.bench);
        }
    }
    // Regression attribution: every red bench whose baseline artifact is
    // checked in (`BENCH_<name>.baseline.json`, e.g. copied from the last
    // green run) gets its metric deltas ranked by wall-clock impact.
    red.sort_unstable();
    red.dedup();
    for bench in red {
        let Some((_, doc)) = loaded.iter().find(|(n, _)| *n == bench) else { continue };
        let baseline_path = dir.join(format!("BENCH_{bench}.baseline.json"));
        if !baseline_path.exists() {
            eprintln!("note  {bench}: no {} to attribute against", baseline_path.display());
            continue;
        }
        match load(&baseline_path) {
            Ok(baseline) => {
                eprintln!("{bench}: regression vs {}:", baseline_path.display());
                eprint!("{}", attribution_report(&baseline, doc));
            }
            Err(e) => eprintln!("note  {bench}: {e}"),
        }
    }
    if failures > 0 {
        eprintln!("bench_gate: {failures} regression(s)");
        ExitCode::FAILURE
    } else {
        println!("bench_gate: all {} checks passed", checks.len());
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal-but-valid solver document for `gate_solver`.
    fn doc(warm_ns: f64, speedup: f64) -> Value {
        Value::parse(&format!(
            r#"{{"mode": "quick",
                 "designs": [
                   {{"name": "crc32", "speedup": {speedup}, "pruning_ratio": 0.9,
                     "warm_ns": {warm_ns}}},
                   {{"name": "sha256", "speedup": 3.0, "warm_ns": 1000.0}}
                 ],
                 "drain": [{{"n": 64, "speedup": 2.0, "dijkstras_batched": 3, "paths": 9}}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn flatten_keys_arrays_by_row_name() {
        let mut flat = BTreeMap::new();
        flatten(&doc(500.0, 4.0), "", &mut flat);
        assert_eq!(flat.get("designs/crc32/warm_ns"), Some(&500.0));
        assert_eq!(flat.get("designs/sha256/speedup"), Some(&3.0));
        assert_eq!(flat.get("drain/0/paths"), Some(&9.0), "unnamed rows fall back to indices");
    }

    #[test]
    fn deliberately_failed_floor_prints_ranked_attribution() {
        let floors = Value::parse(
            r#"{"solver": {"quick": {
                "warm_speedup_min": 1000.0,
                "warm_speedup_geomean": 1000.0,
                "pruning_ratio_min": 0.5,
                "drain_speedup_min": 1.0}}}"#,
        )
        .unwrap();
        let current = doc(50_000.0, 4.0);
        let mut checks = Vec::new();
        gate_solver(&current, &floors, &mut checks).expect("structurally valid doc");
        let red: Vec<&Check> = checks.iter().filter(|c| !c.ok()).collect();
        assert!(!red.is_empty(), "the 1000x floor must fail");
        assert!(red.iter().all(|c| c.bench == "solver"));

        // The attribution the gate prints for that red bench: crc32's
        // warm solve time grew 100x and must rank first, with its share
        // of the wall-clock delta.
        let baseline = doc(500.0, 40.0);
        let report = attribution_report(&baseline, &current);
        assert!(report.starts_with("attribution: total wall-clock delta"), "{report}");
        let first_row = report.lines().nth(1).expect("at least one ranked row");
        assert!(first_row.trim_start().starts_with("designs/crc32/warm_ns"), "{report}");
        assert!(first_row.contains("of delta"), "{report}");
    }
}
