//! §IV-B / §III-D: accuracy and cost of the O(n^2) Alg. 2 reformulation
//! against the O(n^3) Floyd-Warshall-style exact splice.
//!
//! For every benchmark: initialize the naive matrix, apply one round of
//! window feedback, reformulate with both algorithms, and report the
//! relative gap between the resulting stage-delay estimates plus wall-clock
//! cost of each reformulation.
//!
//! Usage: `cargo run -p isdc-bench --bin alg2_accuracy --release`

use isdc_core::{extract_subgraphs, run_sdc, ExtractionConfig, ScoringStrategy, ShapeStrategy};
use isdc_synth::{DelayOracle, OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;
use std::time::Instant;

fn main() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    println!(
        "{:<28} {:>6} {:>12} {:>12} {:>10}",
        "benchmark", "nodes", "alg2_time", "exact_time", "max_gap"
    );
    let mut worst_gap: f64 = 0.0;
    for b in isdc_benchsuite::suite() {
        let g = &b.graph;
        let (schedule, mut alg2) =
            run_sdc(g, &model, b.clock_period_ps).unwrap_or_else(|e| panic!("{}: {e}", b.name));
        let config = ExtractionConfig {
            scoring: ScoringStrategy::FanoutDriven,
            shape: ShapeStrategy::Window,
            max_subgraphs: 16,
            clock_period_ps: b.clock_period_ps,
        };
        let subgraphs = extract_subgraphs(g, &schedule, &alg2, &config);
        let mut exact = alg2.clone();
        for s in &subgraphs {
            let report = oracle.evaluate(g, &s.nodes);
            alg2.apply_subgraph_feedback(&s.nodes, report.delay_ps);
            exact.apply_subgraph_feedback(&s.nodes, report.delay_ps);
        }
        let t_alg2 = Instant::now();
        alg2.reformulate(g);
        let alg2_time = t_alg2.elapsed();
        let t_exact = Instant::now();
        exact.reformulate_exact(g);
        let exact_time = t_exact.elapsed();
        let gap = alg2.max_relative_gap(&exact);
        worst_gap = worst_gap.max(gap);
        println!(
            "{:<28} {:>6} {:>12.3?} {:>12.3?} {:>9.2}%",
            b.name,
            g.len(),
            alg2_time,
            exact_time,
            100.0 * gap
        );
    }
    println!("# worst relative gap between Alg.2 and the exact splice: {:.2}%", 100.0 * worst_gap);
    println!("# paper's claim: the O(n^2) sweeps are a sufficiently accurate stand-in for O(n^3).");
}
