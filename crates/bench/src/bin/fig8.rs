//! Fig. 8: post-synthesis STA delay vs AIG depth.
//!
//! The paper's §V.3 observes a compelling linear correlation between
//! post-synthesis STA delay and the optimized AIG depth, motivating an
//! AIG-depth feedback oracle that skips technology mapping and STA. This
//! harness reproduces the scatter over the same design-point sweep as
//! Fig. 1 and reports the linear fit and Pearson correlation.
//!
//! Usage: `cargo run -p isdc-bench --bin fig8 --release [num_points]`

use isdc_bench::{linear_fit, pearson};
use isdc_synth::{DelayOracle, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn main() {
    let num_points: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(400);

    let oracle = SynthesisOracle::new(TechLibrary::sky130());
    let mut depths: Vec<f64> = Vec::new();
    let mut delays: Vec<f64> = Vec::new();
    println!("design_point,aig_depth,sta_ps");
    for point in isdc_benchsuite::design_points(num_points) {
        let g = &point.graph;
        let all: Vec<_> = g.node_ids().collect();
        let report = oracle.evaluate(g, &all);
        if report.aig_depth == 0 {
            continue;
        }
        println!("{},{},{:.1}", point.seed, report.aig_depth, report.delay_ps);
        depths.push(report.aig_depth as f64);
        delays.push(report.delay_ps);
    }

    let r = pearson(&depths, &delays);
    let (slope, intercept) = linear_fit(&depths, &delays);
    println!("# points: {}", depths.len());
    println!("# pearson(depth, STA) = {r:.3}");
    println!("# linear fit: STA = {slope:.1}ps * depth + {intercept:.0}ps");
    println!(
        "# paper's Fig. 8 shape: strongly linear correlation {}",
        if r > 0.9 { "[OK]" } else { "[DEVIATION]" }
    );
    println!("# (use isdc_synth::AigDepthOracle with ps_per_level = {slope:.1} to exploit it)");
}
