//! Table I: SDC vs ISDC benchmarking on the 17-design suite.
//!
//! Prints the same columns the paper reports — clock period, post-synthesis
//! slack, pipeline stages, register count and scheduling time for both the
//! baseline SDC scheduler and ISDC, plus the geometric-mean ratio row.
//!
//! Usage: `cargo run -p isdc-bench --bin table1 --release [max_iterations]`

use isdc_bench::{geomean, run_table_row, TableRow};
use isdc_core::IsdcConfig;

fn main() {
    let max_iterations: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(15);

    println!("Table I: SDC vs ISDC on 17 benchmarks (fanout-driven, window, m=16, <= {max_iterations} iterations)");
    println!(
        "{:<28} {:>6} | {:>9} {:>6} {:>8} {:>9} | {:>9} {:>6} {:>8} {:>9} {:>5}",
        "benchmark",
        "clk",
        "slack",
        "stages",
        "regs",
        "time(s)",
        "slack",
        "stages",
        "regs",
        "time(s)",
        "iter"
    );
    println!(
        "{:<28} {:>6} | {:>35} | {:>41}",
        "", "(ps)", "XLS-style SDC scheduling", "Ours (iterative SDC scheduling)"
    );
    println!("{}", "-".repeat(126));

    let mut rows: Vec<TableRow> = Vec::new();
    for b in isdc_benchsuite::suite() {
        let mut config = IsdcConfig::paper_defaults(b.clock_period_ps);
        config.max_iterations = max_iterations;
        let row = run_table_row(b.name, &b.graph, b.clock_period_ps, &config)
            .unwrap_or_else(|e| panic!("{}: {e}", b.name));
        println!(
            "{:<28} {:>6.0} | {:>9.2} {:>6} {:>8} {:>9.3} | {:>9.2} {:>6} {:>8} {:>9.3} {:>5}",
            row.name,
            row.clock_ps,
            row.sdc_slack_ps,
            row.sdc_stages,
            row.sdc_registers,
            row.sdc_time_s,
            row.isdc_slack_ps,
            row.isdc_stages,
            row.isdc_registers,
            row.isdc_time_s,
            row.isdc_iterations,
        );
        rows.push(row);
    }

    println!("{}", "-".repeat(126));
    let gm = |f: &dyn Fn(&TableRow) -> f64| geomean(rows.iter().map(f));
    let sdc_slack = gm(&|r| r.sdc_slack_ps);
    let sdc_stages = gm(&|r| r.sdc_stages as f64);
    let sdc_regs = gm(&|r| r.sdc_registers as f64);
    let sdc_time = gm(&|r| r.sdc_time_s * 1e3); // ms so tiny times don't clamp
    let isdc_slack = gm(&|r| r.isdc_slack_ps);
    let isdc_stages = gm(&|r| r.isdc_stages as f64);
    let isdc_regs = gm(&|r| r.isdc_registers as f64);
    let isdc_time = gm(&|r| r.isdc_time_s * 1e3);
    println!(
        "{:<28} {:>6} | {:>9.2} {:>6.2} {:>8.1} {:>9.3} | {:>9.2} {:>6.2} {:>8.1} {:>9.3}",
        "Geo. Mean",
        "",
        sdc_slack,
        sdc_stages,
        sdc_regs,
        sdc_time / 1e3,
        isdc_slack,
        isdc_stages,
        isdc_regs,
        isdc_time / 1e3,
    );
    println!(
        "{:<28} {:>6} | {:>9} {:>6} {:>8} {:>9} | {:>8.1}% {:>5.1}% {:>7.1}% {:>8.1}%",
        "Ratio",
        "",
        "100.0%",
        "100.0%",
        "100.0%",
        "100.0%",
        100.0 * isdc_slack / sdc_slack,
        100.0 * isdc_stages / sdc_stages,
        100.0 * isdc_regs / sdc_regs,
        100.0 * isdc_time / sdc_time,
    );
    println!();
    println!(
        "Register reduction: {:.1}% (paper reports 28.5%); runtime overhead: {:.1}x (paper reports 40.8x)",
        100.0 * (1.0 - isdc_regs / sdc_regs),
        isdc_time / sdc_time,
    );
}
