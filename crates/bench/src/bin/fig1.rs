//! Fig. 1: post-synthesis STA vs HLS-estimated critical path delay.
//!
//! The paper profiles 6912 design points of an HLS design and shows the
//! tool's sum-of-op-delay estimates scattering far above the post-synthesis
//! ground truth. This harness sweeps generated design points, prints the
//! scatter as CSV rows plus summary statistics (mean overestimation factor,
//! correlation).
//!
//! Usage: `cargo run -p isdc-bench --bin fig1 --release [num_points]`

use isdc_bench::{linear_fit, pearson};
use isdc_core::DelayMatrix;
use isdc_synth::{DelayOracle, OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn main() {
    let num_points: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(400);

    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    let mut estimated: Vec<f64> = Vec::new();
    let mut measured: Vec<f64> = Vec::new();
    println!("design_point,estimated_ps,sta_ps");
    for point in isdc_benchsuite::design_points(num_points) {
        let g = &point.graph;
        let delays = DelayMatrix::initialize(g, &model.all_node_delays(g));
        // The HLS tool's view: worst pairwise critical-path estimate.
        let mut est: f64 = 0.0;
        for u in g.node_ids() {
            for v in g.node_ids() {
                if let Some(d) = delays.get(u, v) {
                    est = est.max(d);
                }
            }
        }
        // Ground truth: synthesize and time the whole design.
        let all: Vec<_> = g.node_ids().collect();
        let sta = oracle.evaluate(g, &all).delay_ps;
        if sta <= 0.0 {
            continue;
        }
        println!("{},{est:.1},{sta:.1}", point.seed);
        estimated.push(est);
        measured.push(sta);
    }

    let ratios: Vec<f64> = estimated.iter().zip(&measured).map(|(&e, &m)| e / m).collect();
    let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max_ratio = ratios.iter().copied().fold(0.0, f64::max);
    let overestimates = ratios.iter().filter(|&&r| r >= 1.0 - 1e-9).count();
    let (slope, intercept) = linear_fit(&measured, &estimated);
    println!("# points: {}", estimated.len());
    println!("# mean estimate/STA ratio: {mean_ratio:.2}x (max {max_ratio:.2}x)");
    println!(
        "# estimates at or above STA: {}/{} ({:.1}%)",
        overestimates,
        ratios.len(),
        100.0 * overestimates as f64 / ratios.len() as f64
    );
    println!("# pearson(STA, estimate) = {:.3}", pearson(&measured, &estimated));
    println!("# linear fit: estimate = {slope:.2} * STA + {intercept:.0}ps");
    println!("# paper's Fig. 1 shape: estimates deviate far above the STA ground-truth line,");
    println!("# creating the unused slack ISDC harvests.");
}
