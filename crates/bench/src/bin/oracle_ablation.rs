//! Oracle ablation (§V.3): full synthesis + STA feedback vs the AIG-depth
//! shortcut vs the no-gain control, across the benchmark suite.
//!
//! The paper proposes (as future work) driving the loop with AIG depth to
//! skip technology mapping and post-synthesis STA; Fig. 8 shows depth and
//! STA delay correlate linearly. This harness quantifies the trade:
//! register quality and scheduling runtime per oracle.
//!
//! Usage: `cargo run -p isdc-bench --bin oracle_ablation --release`

use isdc_core::{run_isdc, IsdcConfig};
use isdc_synth::{AigDepthOracle, DelayOracle, NaiveSumOracle, OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn main() {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let synthesis = SynthesisOracle::new(lib.clone());
    // Calibrated from the fig8 linear fit.
    let depth = AigDepthOracle::new(56.0);
    let naive = NaiveSumOracle::new(OpDelayModel::new(lib));

    println!(
        "{:<28} {:>9} | {:>10} {:>8} | {:>10} {:>8} | {:>10} {:>8}",
        "benchmark", "baseline", "synth", "time", "aig-depth", "time", "naive", "time"
    );
    let mut totals = [0.0f64; 4];
    let mut count = 0usize;
    for b in isdc_benchsuite::suite() {
        if b.graph.len() > 200 {
            continue;
        }
        let mut config = IsdcConfig::paper_defaults(b.clock_period_ps);
        config.max_iterations = 10;
        let oracles: [&dyn DelayOracle; 3] = [&synthesis, &depth, &naive];
        let mut cells = Vec::new();
        let mut baseline = 0u64;
        for oracle in oracles {
            let r = run_isdc(&b.graph, &model, oracle, &config)
                .unwrap_or_else(|e| panic!("{}: {e}", b.name));
            baseline = r.history[0].register_bits;
            cells.push((r.final_record().register_bits, r.total_time.as_secs_f64()));
        }
        println!(
            "{:<28} {:>9} | {:>10} {:>7.3}s | {:>10} {:>7.3}s | {:>10} {:>7.3}s",
            b.name,
            baseline,
            cells[0].0,
            cells[0].1,
            cells[1].0,
            cells[1].1,
            cells[2].0,
            cells[2].1
        );
        totals[0] += baseline as f64;
        totals[1] += cells[0].0 as f64;
        totals[2] += cells[1].0 as f64;
        totals[3] += cells[2].0 as f64;
        count += 1;
    }
    println!(
        "# totals over {count} benchmarks: baseline {:.0}, synth {:.0} ({:.1}%), depth {:.0} ({:.1}%), naive {:.0} ({:.1}%)",
        totals[0],
        totals[1],
        100.0 * totals[1] / totals[0],
        totals[2],
        100.0 * totals[2] / totals[0],
        totals[3],
        100.0 * totals[3] / totals[0],
    );
    println!("# expected shape: synth <= depth << naive == baseline.");
}
