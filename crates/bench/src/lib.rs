//! # isdc-bench — harness that regenerates every table and figure
//!
//! Each binary in `src/bin/` reproduces one artifact of the paper's
//! evaluation:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table I: SDC vs ISDC on the 17 benchmarks |
//! | `fig1` | Fig. 1: estimated vs post-synthesis delay scatter |
//! | `fig5` | Fig. 5: delay-driven vs fanout-driven ablation |
//! | `fig6` | Fig. 6: path vs cone vs window ablation |
//! | `fig7` | Fig. 7: estimation error across iterations |
//! | `fig8` | Fig. 8: STA delay vs AIG depth correlation |
//! | `alg2_accuracy` | §IV-B: Alg. 2 vs Floyd-Warshall reformulation |
//!
//! This library holds the shared row structures and statistics helpers.

#![warn(missing_docs)]

use isdc_core::metrics::post_synthesis_slack;
use isdc_core::{run_isdc, run_sdc, IsdcConfig, IsdcResult, ScheduleError};
use isdc_synth::{DelayOracle, OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;
use std::time::Instant;

/// One Table I row: baseline and ISDC numbers for one benchmark.
#[derive(Clone, Debug)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Target clock period (ps).
    pub clock_ps: f64,
    /// Baseline post-synthesis slack (ps).
    pub sdc_slack_ps: f64,
    /// Baseline pipeline stages.
    pub sdc_stages: u32,
    /// Baseline register bits.
    pub sdc_registers: u64,
    /// Baseline scheduling time (seconds).
    pub sdc_time_s: f64,
    /// ISDC post-synthesis slack (ps).
    pub isdc_slack_ps: f64,
    /// ISDC pipeline stages.
    pub isdc_stages: u32,
    /// ISDC register bits.
    pub isdc_registers: u64,
    /// ISDC scheduling time (seconds).
    pub isdc_time_s: f64,
    /// Feedback iterations executed.
    pub isdc_iterations: usize,
}

/// Runs baseline SDC and full ISDC on one benchmark and assembles the row.
///
/// # Errors
///
/// Propagates scheduling failures (which indicate an invalid benchmark/clock
/// combination).
pub fn run_table_row(
    name: &str,
    graph: &isdc_ir::Graph,
    clock_ps: f64,
    config: &IsdcConfig,
) -> Result<TableRow, ScheduleError> {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);

    let t0 = Instant::now();
    let (baseline, _) = run_sdc(graph, &model, clock_ps)?;
    let sdc_time_s = t0.elapsed().as_secs_f64();

    let result: IsdcResult = run_isdc(graph, &model, &oracle, config)?;

    Ok(TableRow {
        name: name.to_string(),
        clock_ps,
        sdc_slack_ps: post_synthesis_slack(graph, &baseline, &oracle, clock_ps),
        sdc_stages: baseline.num_stages(),
        sdc_registers: baseline.register_bits(graph),
        sdc_time_s,
        isdc_slack_ps: post_synthesis_slack(graph, &result.schedule, &oracle, clock_ps),
        isdc_stages: result.schedule.num_stages(),
        isdc_registers: result.schedule.register_bits(graph),
        isdc_time_s: result.total_time.as_secs_f64(),
        isdc_iterations: result.iterations(),
    })
}

/// Geometric mean of positive values; zero entries are clamped to 1 so rows
/// with zero cost (single-stage pipelines) do not zero the mean — matching
/// how such tables are usually aggregated.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for v in values {
        log_sum += v.max(1.0).ln();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (log_sum / count as f64).exp()
    }
}

/// Pearson correlation coefficient of two equal-length series.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    assert!(!x.is_empty());
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// Least-squares slope and intercept of `y = slope * x + intercept`.
///
/// # Panics
///
/// Panics if the series lengths differ or are empty.
pub fn linear_fit(x: &[f64], y: &[f64]) -> (f64, f64) {
    assert_eq!(x.len(), y.len());
    assert!(!x.is_empty());
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
    }
    let slope = if vx == 0.0 { 0.0 } else { cov / vx };
    (slope, my - slope * mx)
}

/// Runs the per-iteration register-usage series for an ablation
/// configuration (the Fig. 5 / Fig. 6 data): returns `history[i] =
/// register_bits after iteration i` padded to `iterations + 1` entries by
/// repeating the converged value.
pub fn ablation_series<O: DelayOracle + ?Sized>(
    graph: &isdc_ir::Graph,
    model: &OpDelayModel,
    oracle: &O,
    config: &IsdcConfig,
) -> Vec<u64> {
    let result = run_isdc(graph, model, oracle, config).expect("benchmark schedules");
    let mut series: Vec<u64> = result.history.iter().map(|r| r.register_bits).collect();
    let last = *series.last().expect("non-empty history");
    series.resize(config.max_iterations + 1, last);
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([4.0, 9.0]) - 6.0).abs() < 1e-9);
        assert_eq!(geomean(std::iter::empty::<f64>()), 0.0);
        // Zeros clamp to 1.
        assert!((geomean([0.0, 4.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = y.iter().map(|v| -v).collect();
        assert!((pearson(&x, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [5.0, 7.0, 9.0, 11.0];
        let (slope, intercept) = linear_fit(&x, &y);
        assert!((slope - 2.0).abs() < 1e-12);
        assert!((intercept - 5.0).abs() < 1e-12);
    }

    #[test]
    fn table_row_on_tiny_benchmark() {
        let suite = isdc_benchsuite::suite();
        let b = &suite[0]; // ml_core_datapath1, small
        let mut config = IsdcConfig::paper_defaults(b.clock_period_ps);
        config.threads = 1;
        config.max_iterations = 3;
        let row = run_table_row(b.name, &b.graph, b.clock_period_ps, &config).unwrap();
        assert!(row.isdc_registers <= row.sdc_registers);
        assert!(row.sdc_slack_ps >= 0.0);
    }
}
