//! Cached-vs-uncached oracle benchmarks: the isdc-cache payoff.
//!
//! `cold` evaluates a batch of subgraphs through a fresh cache (all misses,
//! so it pays canonicalization on top of synthesis); `warm` reuses a
//! pre-populated cache (all hits — canonicalization + lookup only);
//! `uncached` is the raw oracle baseline. Warm must be far below the other
//! two.
//!
//! Besides the criterion groups, the run writes `BENCH_cache.json` at the
//! workspace root (uncached/cold/warm nanoseconds per batch and the warm
//! speedups), so the cache perf trajectory is tracked across PRs next to
//! `BENCH_solver.json` and `BENCH_sweep.json`. `ISDC_BENCH_QUICK=1` (CI)
//! reduces the timing repetitions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isdc_cache::CachingOracle;
use isdc_ir::NodeId;
use isdc_synth::{evaluate_parallel, SynthesisOracle};
use isdc_techlib::TechLibrary;
use std::path::Path;
use std::time::Instant;

/// 16 overlapping node windows of a mid-size benchmark, like an ISDC
/// iteration would extract.
fn subgraph_batch() -> (isdc_ir::Graph, Vec<Vec<NodeId>>) {
    let suite = isdc_benchsuite::suite();
    let bench = suite.into_iter().find(|b| b.name == "ml_core_datapath2").expect("present");
    let subgraphs: Vec<Vec<NodeId>> = (0..16)
        .map(|k| bench.graph.node_ids().skip(k * 3).take(6).collect::<Vec<_>>())
        .filter(|s| !s.is_empty())
        .collect();
    (bench.graph, subgraphs)
}

fn bench_oracle_caching(c: &mut Criterion) {
    let lib = TechLibrary::sky130();
    let oracle = SynthesisOracle::new(lib);
    let (graph, subgraphs) = subgraph_batch();
    let mut group = c.benchmark_group("oracle_cache");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("uncached"), &subgraphs, |b, subs| {
        b.iter(|| evaluate_parallel(&oracle, &graph, subs, 1));
    });
    group.bench_with_input(BenchmarkId::from_parameter("cold"), &subgraphs, |b, subs| {
        b.iter(|| {
            let caching = CachingOracle::new(&oracle);
            evaluate_parallel(&caching, &graph, subs, 1)
        });
    });
    let warm = CachingOracle::new(&oracle);
    evaluate_parallel(&warm, &graph, &subgraphs, 1);
    group.bench_with_input(BenchmarkId::from_parameter("warm"), &subgraphs, |b, subs| {
        b.iter(|| evaluate_parallel(&warm, &graph, subs, 1));
    });
    group.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    let (graph, subgraphs) = subgraph_batch();
    let mut group = c.benchmark_group("fingerprint");
    group.bench_with_input(BenchmarkId::from_parameter("16_windows"), &subgraphs, |b, subs| {
        b.iter(|| {
            subs.iter().map(|s| isdc_cache::canonicalize(&graph, s).fingerprint).collect::<Vec<_>>()
        });
    });
    group.finish();
}

/// Minimum wall time of `runs` executions, in nanoseconds.
fn time_min_ns<R>(runs: usize, mut f: impl FnMut() -> R) -> u128 {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .min()
        .expect("runs > 0")
}

/// The tracked-artifact pass: times the same batch outside criterion and
/// writes `BENCH_cache.json` at the workspace root.
fn emit_cache_json(_c: &mut Criterion) {
    let quick = std::env::var_os("ISDC_BENCH_QUICK").is_some();
    let runs = if quick { 3 } else { 7 };
    let lib = TechLibrary::sky130();
    let oracle = SynthesisOracle::new(lib);
    let (graph, subgraphs) = subgraph_batch();
    let uncached_ns = time_min_ns(runs, || evaluate_parallel(&oracle, &graph, &subgraphs, 1));
    let cold_ns = time_min_ns(runs, || {
        let caching = CachingOracle::new(&oracle);
        evaluate_parallel(&caching, &graph, &subgraphs, 1)
    });
    let warm_oracle = CachingOracle::new(&oracle);
    evaluate_parallel(&warm_oracle, &graph, &subgraphs, 1);
    let warm_ns = time_min_ns(runs, || evaluate_parallel(&warm_oracle, &graph, &subgraphs, 1));
    let stats = warm_oracle.stats();
    let json = format!(
        "{{\n  \"bench\": \"cache\",\n  \"mode\": \"{}\",\n  \"design\": \"ml_core_datapath2\",\n  \
         \"subgraphs\": {},\n  \"unit\": \"ns per 16-window batch evaluation\",\n  \
         \"uncached_ns\": {},\n  \"cold_ns\": {},\n  \"warm_ns\": {},\n  \
         \"warm_speedup_vs_uncached\": {:.2},\n  \"warm_speedup_vs_cold\": {:.2},\n  \
         \"cold_overhead_vs_uncached\": {:.3},\n  \"entries\": {},\n  \"hits\": {},\n  \
         \"cache_evictions\": {}\n}}\n",
        if quick { "quick" } else { "full" },
        subgraphs.len(),
        uncached_ns,
        cold_ns,
        warm_ns,
        uncached_ns as f64 / warm_ns.max(1) as f64,
        cold_ns as f64 / warm_ns.max(1) as f64,
        cold_ns as f64 / uncached_ns.max(1) as f64,
        warm_oracle.cache().len(),
        stats.hits,
        stats.evictions,
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_cache.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

criterion_group!(benches, bench_oracle_caching, bench_fingerprint, emit_cache_json);
criterion_main!(benches);
