//! Cached-vs-uncached oracle benchmarks: the isdc-cache payoff.
//!
//! `cold` evaluates a batch of subgraphs through a fresh cache (all misses,
//! so it pays canonicalization on top of synthesis); `warm` reuses a
//! pre-populated cache (all hits — canonicalization + lookup only);
//! `uncached` is the raw oracle baseline. Warm must be far below the other
//! two.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isdc_cache::CachingOracle;
use isdc_ir::NodeId;
use isdc_synth::{evaluate_parallel, SynthesisOracle};
use isdc_techlib::TechLibrary;

/// 16 overlapping node windows of a mid-size benchmark, like an ISDC
/// iteration would extract.
fn subgraph_batch() -> (isdc_ir::Graph, Vec<Vec<NodeId>>) {
    let suite = isdc_benchsuite::suite();
    let bench = suite.into_iter().find(|b| b.name == "ml_core_datapath2").expect("present");
    let subgraphs: Vec<Vec<NodeId>> = (0..16)
        .map(|k| bench.graph.node_ids().skip(k * 3).take(6).collect::<Vec<_>>())
        .filter(|s| !s.is_empty())
        .collect();
    (bench.graph, subgraphs)
}

fn bench_oracle_caching(c: &mut Criterion) {
    let lib = TechLibrary::sky130();
    let oracle = SynthesisOracle::new(lib);
    let (graph, subgraphs) = subgraph_batch();
    let mut group = c.benchmark_group("oracle_cache");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("uncached"), &subgraphs, |b, subs| {
        b.iter(|| evaluate_parallel(&oracle, &graph, subs, 1));
    });
    group.bench_with_input(BenchmarkId::from_parameter("cold"), &subgraphs, |b, subs| {
        b.iter(|| {
            let caching = CachingOracle::new(&oracle);
            evaluate_parallel(&caching, &graph, subs, 1)
        });
    });
    let warm = CachingOracle::new(&oracle);
    evaluate_parallel(&warm, &graph, &subgraphs, 1);
    group.bench_with_input(BenchmarkId::from_parameter("warm"), &subgraphs, |b, subs| {
        b.iter(|| evaluate_parallel(&warm, &graph, subs, 1));
    });
    group.finish();
}

fn bench_fingerprint(c: &mut Criterion) {
    let (graph, subgraphs) = subgraph_batch();
    let mut group = c.benchmark_group("fingerprint");
    group.bench_with_input(BenchmarkId::from_parameter("16_windows"), &subgraphs, |b, subs| {
        b.iter(|| {
            subs.iter().map(|s| isdc_cache::canonicalize(&graph, s).fingerprint).collect::<Vec<_>>()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_oracle_caching, bench_fingerprint);
criterion_main!(benches);
