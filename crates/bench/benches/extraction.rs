//! Subgraph-extraction benchmarks: the per-iteration cost of candidate
//! enumeration, scoring and expansion across the strategy matrix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isdc_core::{extract_subgraphs, run_sdc, ExtractionConfig, ScoringStrategy, ShapeStrategy};
use isdc_synth::OpDelayModel;
use isdc_techlib::TechLibrary;

fn bench_extraction_strategies(c: &mut Criterion) {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib);
    let suite = isdc_benchsuite::suite();
    let mut group = c.benchmark_group("extraction");
    for name in ["ml_core_datapath2", "crc32", "sha256"] {
        let b = suite.iter().find(|b| b.name == name).expect("benchmark");
        let (schedule, delays) = run_sdc(&b.graph, &model, b.clock_period_ps).expect("schedules");
        for (label, scoring, shape) in [
            ("dd_path", ScoringStrategy::DelayDriven, ShapeStrategy::Path),
            ("fd_path", ScoringStrategy::FanoutDriven, ShapeStrategy::Path),
            ("fd_cone", ScoringStrategy::FanoutDriven, ShapeStrategy::Cone),
            ("fd_window", ScoringStrategy::FanoutDriven, ShapeStrategy::Window),
        ] {
            let config = ExtractionConfig {
                scoring,
                shape,
                max_subgraphs: 16,
                clock_period_ps: b.clock_period_ps,
            };
            group.bench_with_input(BenchmarkId::new(label, name), &config, |bencher, config| {
                bencher.iter(|| extract_subgraphs(&b.graph, &schedule, &delays, config));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_extraction_strategies);
criterion_main!(benches);
