//! Scheduling-runtime benchmarks — the data behind Table I's two
//! "Schedule Time" columns: baseline SDC solves and full ISDC runs per
//! benchmark.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isdc_core::{run_isdc, run_sdc, IsdcConfig};
use isdc_synth::{OpDelayModel, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn bench_sdc_baseline(c: &mut Criterion) {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib);
    let mut group = c.benchmark_group("sdc_baseline");
    group.sample_size(10);
    for b in isdc_benchsuite::suite() {
        if b.graph.len() > 200 {
            continue; // keep the harness fast; table1 covers the big ones
        }
        // Warm the characterization cache outside the timed region.
        let _ = model.all_node_delays(&b.graph);
        group.bench_with_input(BenchmarkId::from_parameter(b.name), &b, |bencher, b| {
            bencher.iter(|| run_sdc(&b.graph, &model, b.clock_period_ps).expect("schedules"));
        });
    }
    group.finish();
}

fn bench_isdc_full(c: &mut Criterion) {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib.clone());
    let oracle = SynthesisOracle::new(lib);
    let mut group = c.benchmark_group("isdc_full");
    group.sample_size(10);
    for b in isdc_benchsuite::suite() {
        if b.graph.len() > 120 {
            continue;
        }
        let mut config = IsdcConfig::paper_defaults(b.clock_period_ps);
        config.max_iterations = 5;
        config.threads = 1;
        let _ = model.all_node_delays(&b.graph);
        group.bench_with_input(BenchmarkId::from_parameter(b.name), &b, |bencher, b| {
            bencher.iter(|| run_isdc(&b.graph, &model, &oracle, &config).expect("schedules"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sdc_baseline, bench_isdc_full);
criterion_main!(benches);
