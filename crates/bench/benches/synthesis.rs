//! Downstream-simulator benchmarks: bit-blasting, optimization passes and
//! STA — the per-subgraph cost that dominates ISDC's iteration time (the
//! paper evaluates 16 subgraphs per iteration in parallel to amortize it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isdc_ir::{Graph, OpKind};
use isdc_netlist::lower_graph;
use isdc_synth::{evaluate_parallel, sta, SynthScript, SynthesisOracle};
use isdc_techlib::TechLibrary;

fn adder_chain(n: usize, width: u32) -> Graph {
    let mut g = Graph::new("chain");
    let mut acc = g.param("p0", width);
    for i in 1..=n {
        let p = g.param(format!("p{i}"), width);
        acc = g.binary(OpKind::Add, acc, p).expect("add");
    }
    g.set_output(acc);
    g
}

fn bench_lowering(c: &mut Criterion) {
    let mut group = c.benchmark_group("lowering");
    for width in [8u32, 16, 32] {
        let mut g = Graph::new("mul");
        let a = g.param("a", width);
        let b = g.param("b", width);
        let m = g.binary(OpKind::Mul, a, b).expect("mul");
        g.set_output(m);
        group.bench_with_input(BenchmarkId::new("mul", width), &g, |bencher, g| {
            bencher.iter(|| lower_graph(g));
        });
    }
    group.finish();
}

fn bench_passes(c: &mut Criterion) {
    let mut group = c.benchmark_group("synth_passes");
    for n in [4usize, 8, 16] {
        let g = adder_chain(n, 16);
        let lowered = lower_graph(&g);
        group.bench_with_input(
            BenchmarkId::new("resyn_adder_chain", n),
            &lowered.aig,
            |bencher, aig| {
                bencher.iter(|| SynthScript::resyn().run(aig));
            },
        );
    }
    group.finish();
}

fn bench_sta(c: &mut Criterion) {
    let lib = TechLibrary::sky130();
    let mut group = c.benchmark_group("sta");
    for n in [4usize, 16] {
        let g = adder_chain(n, 16);
        let aig = SynthScript::resyn().run(&lower_graph(&g).aig);
        group.bench_with_input(BenchmarkId::new("adder_chain", n), &aig, |bencher, aig| {
            bencher.iter(|| sta::analyze(aig, &lib));
        });
    }
    group.finish();
}

fn bench_parallel_oracle(c: &mut Criterion) {
    let lib = TechLibrary::sky130();
    let oracle = SynthesisOracle::new(lib);
    let suite = isdc_benchsuite::suite();
    let bench = suite.iter().find(|b| b.name == "ml_core_datapath2").expect("present");
    // 16 singleton-ish subgraphs: consecutive node windows.
    let subgraphs: Vec<Vec<isdc_ir::NodeId>> = (0..16)
        .map(|k| bench.graph.node_ids().skip(k * 3).take(6).collect())
        .filter(|s: &Vec<_>| !s.is_empty())
        .collect();
    let mut group = c.benchmark_group("oracle_16_subgraphs");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |bencher, &threads| {
                bencher.iter(|| evaluate_parallel(&oracle, &bench.graph, &subgraphs, threads));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lowering, bench_passes, bench_sta, bench_parallel_oracle);
criterion_main!(benches);
