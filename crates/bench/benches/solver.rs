//! LP-solver scaling benchmarks: Bellman-Ford feasibility and min-cost-flow
//! optimization over growing difference-constraint systems, the Alg. 2 vs
//! exhaustive-fixpoint reformulation cost (§III-D's O(n^2) vs O(n^3) trade),
//! and the headline cold-vs-warm comparison: a from-scratch LP rebuild +
//! cold solve against the incremental engine's dirty re-emission +
//! warm-started re-solve, per ISDC iteration, on every Table I design.
//!
//! The cold-vs-warm pass also writes `BENCH_solver.json` at the workspace
//! root with per-design per-iteration solve times, so the perf trajectory
//! of the solver is tracked across PRs. Set `ISDC_BENCH_QUICK=1` (CI does)
//! to run a reduced design subset with fewer rounds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isdc_benchsuite::{random_dag, Benchmark, RandomDagConfig};
use isdc_core::{
    schedule_with_matrix, DelayMatrix, DirtySet, IncrementalScheduler, ScheduleOptions,
};
use isdc_ir::NodeId;
use isdc_sdc::{minimize, DifferenceSystem, VarId};
use isdc_synth::OpDelayModel;
use isdc_techlib::TechLibrary;
use std::path::Path;
use std::time::Instant;

/// Builds a feasible chain-plus-random system of `n` variables.
fn build_system(n: usize) -> (DifferenceSystem, Vec<i64>) {
    let mut sys = DifferenceSystem::new(n);
    let mut state = 0x5eed_5eedu64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for i in 1..n {
        sys.add_constraint(VarId(i as u32 - 1), VarId(i as u32), 0);
    }
    for _ in 0..2 * n {
        let u = rng() % n;
        let v = rng() % n;
        if u < v {
            sys.add_constraint(VarId(u as u32), VarId(v as u32), -((rng() % 3) as i64));
        }
    }
    // Minimize the span end - start: balanced weights.
    let mut weights = vec![0i64; n];
    weights[0] = -1;
    weights[n - 1] = 1;
    (sys, weights)
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("bellman_ford_feasibility");
    for n in [50usize, 200, 800] {
        let (sys, _) = build_system(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sys, |bencher, sys| {
            bencher.iter(|| sys.solve_feasible().expect("feasible"));
        });
    }
    group.finish();
}

fn bench_lp_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcf_minimize");
    for n in [50usize, 200, 800] {
        let (sys, weights) = build_system(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sys, |bencher, sys| {
            bencher.iter(|| minimize(sys, &weights).expect("solvable"));
        });
    }
    group.finish();
}

fn bench_reformulation(c: &mut Criterion) {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib);
    let mut group = c.benchmark_group("reformulation");
    group.sample_size(10);
    for num_ops in [50usize, 150, 400] {
        let g = random_dag(
            &RandomDagConfig { num_ops, num_params: 6, widths: vec![8, 16], with_muls: true },
            7,
        );
        let base = DelayMatrix::initialize(&g, &model.all_node_delays(&g));
        let members: Vec<_> = g.node_ids().take(num_ops / 2).collect();
        group.bench_with_input(BenchmarkId::new("alg2", num_ops), &g, |bencher, g| {
            bencher.iter(|| {
                let mut m = base.clone();
                m.apply_subgraph_feedback(&members, 500.0);
                m.reformulate(g)
            });
        });
        group.bench_with_input(BenchmarkId::new("alg2_worklist", num_ops), &g, |bencher, g| {
            bencher.iter(|| {
                let mut m = base.clone();
                let dirty = m.apply_subgraph_feedback(&members, 500.0);
                m.reformulate_incremental(g, &dirty)
            });
        });
        group.bench_with_input(BenchmarkId::new("exact_fixpoint", num_ops), &g, |bencher, g| {
            bencher.iter(|| {
                let mut m = base.clone();
                m.apply_subgraph_feedback(&members, 500.0);
                m.reformulate_exact(g)
            });
        });
    }
    group.finish();
}

/// A synthetic-but-shaped ISDC feedback trace: per round, eight overlapping
/// windows report 80% of their current worst pair delay (always a pure
/// relaxation, like Alg. 1 guarantees), followed by an incremental Alg. 2
/// pass with the dirty carry the driver uses.
struct FeedbackTrace {
    /// Matrix state after round `r` (index 0 = initial).
    matrices: Vec<DelayMatrix>,
    /// Dirty set accompanying the transition into `matrices[r + 1]`.
    dirties: Vec<DirtySet>,
}

fn feedback_trace(bench: &Benchmark, model: &OpDelayModel, rounds: usize) -> FeedbackTrace {
    let g = &bench.graph;
    let n = g.len();
    let mut m = DelayMatrix::initialize(g, &model.all_node_delays(g));
    let mut matrices = vec![m.clone()];
    let mut dirties = Vec::new();
    let mut carry = DirtySet::new(n);
    for r in 0..rounds {
        let mut dirty = DirtySet::new(n);
        for k in 0..8usize {
            let start = (r * 31 + k * 7) % n;
            let members: Vec<NodeId> =
                (start..(start + 6).min(n)).map(|i| NodeId(i as u32)).collect();
            let worst = members
                .iter()
                .flat_map(|&u| members.iter().map(move |&v| (u, v)))
                .filter_map(|(u, v)| m.get(u, v))
                .fold(0.0f64, f64::max);
            dirty.union(&m.apply_subgraph_feedback(&members, worst * 0.8));
        }
        dirty.union(&carry);
        carry = m.reformulate_incremental(g, &dirty);
        dirty.union(&carry);
        matrices.push(m.clone());
        dirties.push(dirty);
    }
    FeedbackTrace { matrices, dirties }
}

/// Minimum wall time of `runs` executions, in nanoseconds.
fn time_min_ns<R>(runs: usize, mut f: impl FnMut() -> R) -> u128 {
    (0..runs)
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .min()
        .expect("runs > 0")
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let quick = std::env::var_os("ISDC_BENCH_QUICK").is_some();
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib);
    let suite = isdc_benchsuite::suite();
    let largest = suite.iter().map(|b| b.graph.len()).max().unwrap_or(0);
    let designs: Vec<&Benchmark> = suite
        .iter()
        .filter(|b| !quick || b.graph.len() < 150 || b.graph.len() == largest)
        .collect();
    let rounds = if quick { 3 } else { 6 };
    let timing_runs = if quick { 3 } else { 5 };

    let mut group = c.benchmark_group("solver_cold_vs_warm");
    group.sample_size(10);
    let mut rows = Vec::new();
    for b in designs {
        let n = b.graph.len();
        let options = ScheduleOptions { clock_period_ps: b.clock_period_ps, max_stages: None };
        let trace = feedback_trace(b, &model, rounds);
        let last = trace.matrices.len() - 1;
        let final_m = &trace.matrices[last];
        let final_dirty = &trace.dirties[last - 1];
        // Prime the engine up to the state *before* the final round, so each
        // timed warm solve applies one genuine iteration's worth of deltas.
        let mut engine =
            IncrementalScheduler::new(&b.graph, &trace.matrices[0], &options).expect("schedulable");
        engine.reschedule(&b.graph, &trace.matrices[0], &DirtySet::new(n)).unwrap();
        for r in 0..last - 1 {
            engine.reschedule(&b.graph, &trace.matrices[r + 1], &trace.dirties[r]).unwrap();
        }
        let primed = engine;
        // Sanity: the timed paths must agree before we compare their speed.
        let cold_reference = schedule_with_matrix(&b.graph, final_m, b.clock_period_ps).unwrap();
        {
            let mut e = primed.clone();
            let warm = e.reschedule(&b.graph, final_m, final_dirty).unwrap();
            assert!(e.last_solve_was_warm(), "{}: final round should warm-start", b.name);
            assert_eq!(warm, cold_reference, "{}: warm diverged from cold", b.name);
        }
        group.bench_with_input(BenchmarkId::new("cold", b.name), b, |bencher, b| {
            bencher.iter(|| schedule_with_matrix(&b.graph, final_m, b.clock_period_ps).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("warm", b.name), b, |bencher, b| {
            bencher.iter(|| {
                // The clone (pure memcpy) stands in for state the driver
                // keeps alive; it biases against the warm path if anything.
                let mut e = primed.clone();
                e.reschedule(&b.graph, final_m, final_dirty).unwrap()
            });
        });
        let cold_ns = time_min_ns(timing_runs, || {
            schedule_with_matrix(&b.graph, final_m, b.clock_period_ps).unwrap()
        });
        let warm_ns = time_min_ns(timing_runs, || {
            let mut e = primed.clone();
            e.reschedule(&b.graph, final_m, final_dirty).unwrap()
        });
        let speedup = cold_ns as f64 / warm_ns.max(1) as f64;
        rows.push(format!(
            "    {{\"name\": \"{}\", \"nodes\": {}, \"clock_ps\": {}, \
             \"cold_solve_ns\": {}, \"warm_solve_ns\": {}, \"speedup\": {:.2}}}",
            b.name, n, b.clock_period_ps, cold_ns, warm_ns, speedup
        ));
    }
    group.finish();

    let json = format!(
        "{{\n  \"bench\": \"solver\",\n  \"mode\": \"{}\",\n  \"feedback_rounds\": {},\n  \
         \"unit\": \"ns per ISDC iteration re-solve (constraint emission + LP solve)\",\n  \
         \"designs\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        rounds,
        rows.join(",\n")
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_solver.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

criterion_group!(
    benches,
    bench_feasibility,
    bench_lp_optimization,
    bench_reformulation,
    bench_cold_vs_warm
);
criterion_main!(benches);
