//! LP-solver scaling benchmarks: Bellman-Ford feasibility and min-cost-flow
//! optimization over growing difference-constraint systems, the Alg. 2 vs
//! exhaustive-fixpoint reformulation cost (§III-D's O(n^2) vs O(n^3) trade),
//! and the headline cold-vs-warm comparison: a from-scratch LP rebuild +
//! cold solve against the incremental engine's dirty re-emission +
//! warm-started re-solve, per ISDC iteration, on every Table I design.
//!
//! The cold-vs-warm pass also writes `BENCH_solver.json` at the workspace
//! root with per-design per-iteration solve times, so the perf trajectory
//! of the solver is tracked across PRs. Set `ISDC_BENCH_QUICK=1` (CI does)
//! to run a reduced design subset with fewer rounds. The recorded
//! `speedup` fields come from the **median** of `repeats` timing runs
//! (min values are kept alongside); set `ISDC_BENCH_REPEAT=N` to change
//! the repeat count — criterion owns this binary's argv, so the repeat
//! knob is an environment variable rather than a `--repeat` flag.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isdc_benchsuite::{random_dag, Benchmark, RandomDagConfig};
use isdc_core::{
    schedule_with_matrix, DelayMatrix, DirtySet, IncrementalScheduler, ScheduleOptions,
};
use isdc_ir::NodeId;
use isdc_sdc::{minimize, DifferenceSystem, IncrementalSolver, VarId};
use isdc_synth::OpDelayModel;
use isdc_techlib::TechLibrary;
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Row stores for the two passes that feed `BENCH_solver.json` — criterion
/// runs the groups sequentially in one process, and whichever pass finishes
/// later rewrites the document with everything collected so far.
static DESIGN_ROWS: Mutex<Vec<String>> = Mutex::new(Vec::new());
static DRAIN_ROWS: Mutex<Vec<String>> = Mutex::new(Vec::new());

/// Feedback rounds driven (and recorded) per mode — one definition so the
/// JSON's `feedback_rounds` always matches what `feedback_trace` ran.
fn feedback_rounds(quick: bool) -> usize {
    if quick {
        3
    } else {
        6
    }
}

/// Timing repetitions per measurement: `ISDC_BENCH_REPEAT` if set (min 1),
/// else 3 in quick mode and 5 in full mode. Recorded as `repeats` in the
/// document so the gate knows its floors were evaluated on medians.
fn timing_repeats(quick: bool) -> usize {
    std::env::var("ISDC_BENCH_REPEAT")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or(if quick { 3 } else { 5 })
}

/// (Re)writes `BENCH_solver.json` from the accumulated row stores.
fn write_solver_json(quick: bool) {
    let rounds = feedback_rounds(quick);
    let designs = DESIGN_ROWS.lock().unwrap().join(",\n");
    let drains = DRAIN_ROWS.lock().unwrap().join(",\n");
    let json = format!(
        "{{\n  \"bench\": \"solver\",\n  \"mode\": \"{}\",\n  \"feedback_rounds\": {},\n  \
         \"repeats\": {},\n  \
         \"unit\": \"ns per ISDC iteration re-solve (constraint emission + LP solve)\",\n  \
         \"designs\": [\n{}\n  ],\n  \"drain\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        rounds,
        timing_repeats(quick),
        designs,
        drains,
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_solver.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

/// Builds a feasible chain-plus-random system of `n` variables.
fn build_system(n: usize) -> (DifferenceSystem, Vec<i64>) {
    let mut sys = DifferenceSystem::new(n);
    let mut state = 0x5eed_5eedu64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for i in 1..n {
        sys.add_constraint(VarId(i as u32 - 1), VarId(i as u32), 0);
    }
    for _ in 0..2 * n {
        let u = rng() % n;
        let v = rng() % n;
        if u < v {
            sys.add_constraint(VarId(u as u32), VarId(v as u32), -((rng() % 3) as i64));
        }
    }
    // Minimize the span end - start: balanced weights.
    let mut weights = vec![0i64; n];
    weights[0] = -1;
    weights[n - 1] = 1;
    (sys, weights)
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("bellman_ford_feasibility");
    for n in [50usize, 200, 800] {
        let (sys, _) = build_system(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sys, |bencher, sys| {
            bencher.iter(|| sys.solve_feasible().expect("feasible"));
        });
    }
    group.finish();
}

fn bench_lp_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcf_minimize");
    for n in [50usize, 200, 800] {
        let (sys, weights) = build_system(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sys, |bencher, sys| {
            bencher.iter(|| minimize(sys, &weights).expect("solvable"));
        });
    }
    group.finish();
}

fn bench_reformulation(c: &mut Criterion) {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib);
    let mut group = c.benchmark_group("reformulation");
    group.sample_size(10);
    for num_ops in [50usize, 150, 400] {
        let g = random_dag(
            &RandomDagConfig { num_ops, num_params: 6, widths: vec![8, 16], with_muls: true },
            7,
        );
        let base = DelayMatrix::initialize(&g, &model.all_node_delays(&g));
        let members: Vec<_> = g.node_ids().take(num_ops / 2).collect();
        group.bench_with_input(BenchmarkId::new("alg2", num_ops), &g, |bencher, g| {
            bencher.iter(|| {
                let mut m = base.clone();
                m.apply_subgraph_feedback(&members, 500.0);
                m.reformulate(g)
            });
        });
        group.bench_with_input(BenchmarkId::new("alg2_worklist", num_ops), &g, |bencher, g| {
            bencher.iter(|| {
                let mut m = base.clone();
                let dirty = m.apply_subgraph_feedback(&members, 500.0);
                m.reformulate_incremental(g, &dirty)
            });
        });
        group.bench_with_input(BenchmarkId::new("exact_fixpoint", num_ops), &g, |bencher, g| {
            bencher.iter(|| {
                let mut m = base.clone();
                m.apply_subgraph_feedback(&members, 500.0);
                m.reformulate_exact(g)
            });
        });
    }
    group.finish();
}

/// A synthetic-but-shaped ISDC feedback trace: per round, eight overlapping
/// windows report 80% of their current worst pair delay (always a pure
/// relaxation, like Alg. 1 guarantees), followed by an incremental Alg. 2
/// pass with the dirty carry the driver uses.
struct FeedbackTrace {
    /// Matrix state after round `r` (index 0 = initial).
    matrices: Vec<DelayMatrix>,
    /// Dirty set accompanying the transition into `matrices[r + 1]`.
    dirties: Vec<DirtySet>,
}

fn feedback_trace(bench: &Benchmark, model: &OpDelayModel, rounds: usize) -> FeedbackTrace {
    let g = &bench.graph;
    let n = g.len();
    let mut m = DelayMatrix::initialize(g, &model.all_node_delays(g));
    let mut matrices = vec![m.clone()];
    let mut dirties = Vec::new();
    let mut carry = DirtySet::new(n);
    for r in 0..rounds {
        let mut dirty = DirtySet::new(n);
        for k in 0..8usize {
            let start = (r * 31 + k * 7) % n;
            let members: Vec<NodeId> =
                (start..(start + 6).min(n)).map(|i| NodeId(i as u32)).collect();
            let worst = members
                .iter()
                .flat_map(|&u| members.iter().map(move |&v| (u, v)))
                .filter_map(|(u, v)| m.get(u, v))
                .fold(0.0f64, f64::max);
            dirty.union(&m.apply_subgraph_feedback(&members, worst * 0.8));
        }
        dirty.union(&carry);
        carry = m.reformulate_incremental(g, &dirty);
        dirty.union(&carry);
        matrices.push(m.clone());
        dirties.push(dirty);
    }
    FeedbackTrace { matrices, dirties }
}

/// Sorted wall times of `runs` executions, in nanoseconds. Index 0 is the
/// min; `[len / 2]` the (upper) median the recorded speedups use.
fn sample_ns<R>(runs: usize, mut f: impl FnMut() -> R) -> Vec<u128> {
    let mut samples: Vec<u128> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            std::hint::black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples
}

/// The (upper) median of a sorted sample set.
fn median(samples: &[u128]) -> u128 {
    samples[samples.len() / 2]
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let quick = std::env::var_os("ISDC_BENCH_QUICK").is_some();
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib);
    let suite = isdc_benchsuite::suite();
    let largest = suite.iter().map(|b| b.graph.len()).max().unwrap_or(0);
    let designs: Vec<&Benchmark> = suite
        .iter()
        .filter(|b| !quick || b.graph.len() < 150 || b.graph.len() == largest)
        .collect();
    let rounds = feedback_rounds(quick);
    let timing_runs = timing_repeats(quick);

    let mut group = c.benchmark_group("solver_cold_vs_warm");
    group.sample_size(10);
    let mut rows = Vec::new();
    for b in designs {
        let n = b.graph.len();
        let options = ScheduleOptions { clock_period_ps: b.clock_period_ps, max_stages: None };
        let trace = feedback_trace(b, &model, rounds);
        let last = trace.matrices.len() - 1;
        let final_m = &trace.matrices[last];
        let final_dirty = &trace.dirties[last - 1];
        // Prime the engine up to the state *before* the final round, so each
        // timed warm solve applies one genuine iteration's worth of deltas.
        let mut engine =
            IncrementalScheduler::new(&b.graph, &trace.matrices[0], &options).expect("schedulable");
        engine.reschedule(&b.graph, &trace.matrices[0], &DirtySet::new(n)).unwrap();
        for r in 0..last - 1 {
            engine.reschedule(&b.graph, &trace.matrices[r + 1], &trace.dirties[r]).unwrap();
        }
        let primed = engine;
        // Sanity: the timed paths must agree before we compare their speed.
        let cold_reference = schedule_with_matrix(&b.graph, final_m, b.clock_period_ps).unwrap();
        {
            let mut e = primed.clone();
            let warm = e.reschedule(&b.graph, final_m, final_dirty).unwrap();
            assert!(e.last_solve_was_warm(), "{}: final round should warm-start", b.name);
            assert_eq!(warm, cold_reference, "{}: warm diverged from cold", b.name);
        }
        group.bench_with_input(BenchmarkId::new("cold", b.name), b, |bencher, b| {
            bencher.iter(|| schedule_with_matrix(&b.graph, final_m, b.clock_period_ps).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("warm", b.name), b, |bencher, b| {
            bencher.iter(|| {
                // The clone (pure memcpy) stands in for state the driver
                // keeps alive; it biases against the warm path if anything.
                let mut e = primed.clone();
                e.reschedule(&b.graph, final_m, final_dirty).unwrap()
            });
        });
        let cold = sample_ns(timing_runs, || {
            schedule_with_matrix(&b.graph, final_m, b.clock_period_ps).unwrap()
        });
        let warm = sample_ns(timing_runs, || {
            let mut e = primed.clone();
            e.reschedule(&b.graph, final_m, final_dirty).unwrap()
        });
        let (cold_ns, warm_ns) = (cold[0], warm[0]);
        let (cold_median_ns, warm_median_ns) = (median(&cold), median(&warm));
        let speedup = cold_median_ns as f64 / warm_median_ns.max(1) as f64;
        // Sparsification composition of the LP this design solves: a fresh
        // build at the final (feedback-relaxed) matrix, so emitted + pruned
        // equals what the dense Eq. 2 emission would have carried.
        let sparsity = IncrementalScheduler::new(&b.graph, final_m, &options)
            .expect("schedulable")
            .sparsify_stats();
        rows.push(format!(
            "    {{\"name\": \"{}\", \"nodes\": {}, \"clock_ps\": {}, \
             \"cold_solve_ns\": {}, \"warm_solve_ns\": {}, \
             \"cold_solve_median_ns\": {cold_median_ns}, \
             \"warm_solve_median_ns\": {warm_median_ns}, \"speedup\": {:.2}, \
             \"constraints_emitted\": {}, \"constraints_pruned\": {}, \
             \"pruning_ratio\": {:.3}}}",
            b.name,
            n,
            b.clock_period_ps,
            cold_ns,
            warm_ns,
            speedup,
            sparsity.constraints_emitted,
            sparsity.pruned(),
            sparsity.pruning_ratio()
        ));
    }
    group.finish();

    *DESIGN_ROWS.lock().unwrap() = rows;
    write_solver_json(quick);
}

/// A retarget-shaped difference system: a dependency chain of 0-bounds plus
/// sliding-window timing constraints that force spacing (Eq. 2 at a tight
/// clock), under a many-sourced register-style objective (`-1` on the first
/// half, `+1` on the second), so the dual routes `n/2` units of flow over
/// the timing arcs.
fn drain_workload(n: usize) -> (DifferenceSystem, Vec<i64>, Vec<usize>) {
    assert!(n.is_multiple_of(2), "balanced halves need an even n");
    let mut sys = DifferenceSystem::new(n);
    for i in 1..n {
        sys.add_constraint(VarId(i as u32 - 1), VarId(i as u32), 0);
    }
    let mut timing = Vec::new();
    for w in [2usize, 3, 5] {
        for i in 0..n - w {
            timing.push(sys.add_constraint(
                VarId(i as u32),
                VarId((i + w) as u32),
                -((w - 1) as i64),
            ));
        }
    }
    let weights: Vec<i64> = (0..n).map(|i| if i < n / 2 { -1 } else { 1 }).collect();
    (sys, weights, timing)
}

/// The tentpole measurement: a **bulk retarget** (every timing bound
/// relaxed one notch at once, exactly what a clock-period step does to the
/// warm engine) re-drained by the old serial single-source SSP versus the
/// batched multi-source drain. Both paths produce bit-identical solutions;
/// rows (`serial_ns`, `batched_ns`, Dijkstra/path counts) go into
/// `BENCH_solver.json`'s `drain` section for the regression gate.
fn bench_drain(c: &mut Criterion) {
    let quick = std::env::var_os("ISDC_BENCH_QUICK").is_some();
    let sizes: &[usize] = if quick { &[200, 600] } else { &[200, 600, 1600] };
    let timing_runs = timing_repeats(quick);
    let mut group = c.benchmark_group("drain");
    group.sample_size(10);
    let mut rows = Vec::new();
    for &n in sizes {
        let (sys, weights, timing) = drain_workload(n);
        let mut primed = IncrementalSolver::new(sys.clone(), weights.clone()).expect("balanced");
        primed.solve().expect("solvable");
        let relax = |solver: &mut IncrementalSolver| {
            for &ci in &timing {
                let b = solver.bound(ci);
                solver.update_bound(ci, (b + 1).min(0));
            }
        };
        // Sanity + counters: both drains agree bit-for-bit on the retarget.
        let (batched_stats, serial_stats) = {
            let mut b = primed.clone();
            relax(&mut b);
            let batched = b.solve().unwrap();
            let mut s = primed.clone();
            s.use_reference_drain(true);
            relax(&mut s);
            let serial = s.solve().unwrap();
            assert_eq!(batched, serial, "n={n}: drains must be bit-identical");
            assert!(b.last_solve_was_warm() && s.last_solve_was_warm());
            (b.last_drain_stats(), s.last_drain_stats())
        };
        assert!(
            batched_stats.dijkstras <= batched_stats.paths,
            "n={n}: batching invariant broken: {batched_stats:?}"
        );
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bencher, _| {
            bencher.iter(|| {
                let mut s = primed.clone();
                s.use_reference_drain(true);
                relax(&mut s);
                s.solve().unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &n, |bencher, _| {
            bencher.iter(|| {
                let mut s = primed.clone();
                relax(&mut s);
                s.solve().unwrap()
            });
        });
        let serial = sample_ns(timing_runs, || {
            let mut s = primed.clone();
            s.use_reference_drain(true);
            relax(&mut s);
            s.solve().unwrap()
        });
        let batched = sample_ns(timing_runs, || {
            let mut s = primed.clone();
            relax(&mut s);
            s.solve().unwrap()
        });
        let (serial_ns, batched_ns) = (serial[0], batched[0]);
        let (serial_median_ns, batched_median_ns) = (median(&serial), median(&batched));
        let speedup = serial_median_ns as f64 / batched_median_ns.max(1) as f64;
        rows.push(format!(
            "    {{\"n\": {n}, \"relaxed_arcs\": {}, \"serial_ns\": {serial_ns}, \
             \"batched_ns\": {batched_ns}, \"serial_median_ns\": {serial_median_ns}, \
             \"batched_median_ns\": {batched_median_ns}, \"speedup\": {speedup:.2}, \
             \"dijkstras_serial\": {}, \"dijkstras_batched\": {}, \"paths\": {}}}",
            timing.len(),
            serial_stats.dijkstras,
            batched_stats.dijkstras,
            batched_stats.paths,
        ));
    }
    group.finish();

    *DRAIN_ROWS.lock().unwrap() = rows;
    write_solver_json(quick);
}

criterion_group!(
    benches,
    bench_feasibility,
    bench_lp_optimization,
    bench_reformulation,
    bench_cold_vs_warm,
    bench_drain
);
criterion_main!(benches);
