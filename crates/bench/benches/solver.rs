//! LP-solver scaling benchmarks: Bellman-Ford feasibility and min-cost-flow
//! optimization over growing difference-constraint systems, plus the Alg. 2
//! vs exhaustive-fixpoint reformulation cost (§III-D's O(n^2) vs O(n^3)
//! trade).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use isdc_benchsuite::{random_dag, RandomDagConfig};
use isdc_core::DelayMatrix;
use isdc_sdc::{minimize, DifferenceSystem, VarId};
use isdc_synth::OpDelayModel;
use isdc_techlib::TechLibrary;

/// Builds a feasible chain-plus-random system of `n` variables.
fn build_system(n: usize) -> (DifferenceSystem, Vec<i64>) {
    let mut sys = DifferenceSystem::new(n);
    let mut state = 0x5eed_5eedu64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for i in 1..n {
        sys.add_constraint(VarId(i as u32 - 1), VarId(i as u32), 0);
    }
    for _ in 0..2 * n {
        let u = rng() % n;
        let v = rng() % n;
        if u < v {
            sys.add_constraint(VarId(u as u32), VarId(v as u32), -((rng() % 3) as i64));
        }
    }
    // Minimize the span end - start: balanced weights.
    let mut weights = vec![0i64; n];
    weights[0] = -1;
    weights[n - 1] = 1;
    (sys, weights)
}

fn bench_feasibility(c: &mut Criterion) {
    let mut group = c.benchmark_group("bellman_ford_feasibility");
    for n in [50usize, 200, 800] {
        let (sys, _) = build_system(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sys, |bencher, sys| {
            bencher.iter(|| sys.solve_feasible().expect("feasible"));
        });
    }
    group.finish();
}

fn bench_lp_optimization(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcf_minimize");
    for n in [50usize, 200, 800] {
        let (sys, weights) = build_system(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sys, |bencher, sys| {
            bencher.iter(|| minimize(sys, &weights).expect("solvable"));
        });
    }
    group.finish();
}

fn bench_reformulation(c: &mut Criterion) {
    let lib = TechLibrary::sky130();
    let model = OpDelayModel::new(lib);
    let mut group = c.benchmark_group("reformulation");
    group.sample_size(10);
    for num_ops in [50usize, 150, 400] {
        let g = random_dag(
            &RandomDagConfig { num_ops, num_params: 6, widths: vec![8, 16], with_muls: true },
            7,
        );
        let base = DelayMatrix::initialize(&g, &model.all_node_delays(&g));
        let members: Vec<_> = g.node_ids().take(num_ops / 2).collect();
        group.bench_with_input(BenchmarkId::new("alg2", num_ops), &g, |bencher, g| {
            bencher.iter(|| {
                let mut m = base.clone();
                m.apply_subgraph_feedback(&members, 500.0);
                m.reformulate(g)
            });
        });
        group.bench_with_input(BenchmarkId::new("exact_fixpoint", num_ops), &g, |bencher, g| {
            bencher.iter(|| {
                let mut m = base.clone();
                m.apply_subgraph_feedback(&members, 500.0);
                m.reformulate_exact(g)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_feasibility, bench_lp_optimization, bench_reformulation);
criterion_main!(benches);
