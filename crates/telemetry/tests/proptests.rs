//! Property-based tests for the metrics registry: the algebraic laws of
//! [`MetricsFrame::merge`] (the `DelayCache::merge` contract —
//! commutative, associative, idempotent, with the empty frame as
//! identity) and the partition-invariance that makes batch fleet totals
//! bit-identical across thread counts.

use isdc_telemetry::{
    parse_jsonl, render_jsonl, ArgValue, Event, EventKind, MetricValue, MetricsFrame, OwnedArg,
    Trace, HISTOGRAM_BUCKETS,
};
use proptest::prelude::*;

/// Deterministic helper RNG (same recipe the sibling crates' proptests use).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// A random frame: a handful of keys drawn from a small shared pool (so
/// two frames collide on some keys and differ on others), with values
/// of random kinds — including deliberate kind mismatches across
/// frames, which the join must still resolve lawfully.
fn arbitrary_frame() -> impl Strategy<Value = MetricsFrame> {
    any::<u64>().prop_map(|seed| {
        let mut state = seed;
        let mut frame = MetricsFrame::new();
        let keys = ["cache/hits", "drain/paths", "run/iterations", "points", "shard0/points"];
        let entries = 1 + lcg(&mut state) as usize % keys.len();
        for _ in 0..entries {
            let key = keys[lcg(&mut state) as usize % keys.len()];
            let value = match lcg(&mut state) % 4 {
                0 => MetricValue::Counter(lcg(&mut state)),
                1 => MetricValue::Gauge(lcg(&mut state) as i64 - (1 << 30)),
                2 => MetricValue::Histogram(
                    (0..HISTOGRAM_BUCKETS).map(|_| lcg(&mut state) % 16).collect(),
                ),
                // Short histogram: exercises the zero-padding in join.
                _ => MetricValue::Histogram((0..7).map(|_| lcg(&mut state) % 16).collect()),
            };
            frame.insert(key, value);
        }
        frame
    })
}

/// Span-name and argument pools. [`Event`] names spans with `&'static
/// str` literals, so random traces draw from literal pools; the string
/// pools deliberately include every escape class the JSONL renderer
/// handles (quotes, backslashes, newlines, tabs, control chars, and
/// multi-byte UTF-8).
const SPAN_NAMES: [&str; 5] = ["run", "solve", "mark", "fault", "emit \"q\""];
const ARG_KEYS: [&str; 5] = ["n", "delta", "rate", "site", "design"];
const ARG_STRS: [&str; 5] = ["crc\"32", "line\nbreak", "back\\slash\there", "ctl\u{1}", "πlain μs"];
const TRACK_NAMES: [&str; 4] = ["main", "batch-worker-0", "worker \"τ\"", "t\n2"];

/// A random arg value covering every [`ArgValue`] kind, including
/// negative/positive integers, fractional/huge/negative floats, and the
/// non-finite floats that render as `null`.
fn arbitrary_arg(state: &mut u64) -> ArgValue {
    match lcg(state) % 8 {
        0 => ArgValue::U64(lcg(state)),
        1 => ArgValue::I64(-((lcg(state) % (1 << 40)) as i64)),
        // Non-negative I64: renders identically to a U64 and must
        // re-classify as one.
        2 => ArgValue::I64((lcg(state) % (1 << 40)) as i64),
        3 => ArgValue::F64(lcg(state) as f64 / 256.0 - (1 << 22) as f64),
        // Integral-valued float: must stay a float through the trip.
        4 => ArgValue::F64((lcg(state) % 10_000) as f64),
        5 => ArgValue::F64(if lcg(state).is_multiple_of(2) { f64::INFINITY } else { f64::NAN }),
        6 => ArgValue::F64(1e300 * if lcg(state).is_multiple_of(2) { 1.0 } else { -1.0 }),
        _ => ArgValue::Str(ARG_STRS[lcg(state) as usize % ARG_STRS.len()].to_string()),
    }
}

/// A random multi-track trace with notes (instant events) mixed in.
fn arbitrary_trace() -> impl Strategy<Value = Trace> {
    any::<u64>().prop_map(|seed| {
        let mut state = seed;
        let num_tracks = 1 + lcg(&mut state) as usize % 3;
        let tracks: Vec<String> =
            (0..num_tracks).map(|i| TRACK_NAMES[i % TRACK_NAMES.len()].to_string()).collect();
        let mut t_ns = 0u64;
        let events: Vec<Event> = (0..1 + lcg(&mut state) % 24)
            .map(|seq| {
                t_ns += lcg(&mut state) % 1000;
                let kind = match lcg(&mut state) % 3 {
                    0 => EventKind::Begin,
                    1 => EventKind::End,
                    _ => EventKind::Instant,
                };
                let args = (0..lcg(&mut state) % 3)
                    .map(|i| (ARG_KEYS[i as usize], arbitrary_arg(&mut state)))
                    .collect();
                Event {
                    seq,
                    track: (lcg(&mut state) as usize % num_tracks) as u32,
                    kind,
                    name: SPAN_NAMES[lcg(&mut state) as usize % SPAN_NAMES.len()],
                    t_ns,
                    args,
                }
            })
            .collect();
        Trace { events, tracks }
    })
}

/// What [`parse_jsonl`] must hand back for a rendered [`ArgValue`]: JSON
/// numbers don't carry their Rust source type, so non-negative signed
/// integers normalize to `U64` and non-finite floats to `Null`;
/// everything else round-trips exactly (floats via shortest-round-trip
/// formatting).
fn expected_arg(v: &ArgValue) -> OwnedArg {
    match v {
        ArgValue::U64(n) => OwnedArg::U64(*n),
        ArgValue::I64(n) if *n >= 0 => OwnedArg::U64(*n as u64),
        ArgValue::I64(n) => OwnedArg::I64(*n),
        ArgValue::F64(x) if !x.is_finite() => OwnedArg::Null,
        ArgValue::F64(x) => OwnedArg::F64(*x),
        ArgValue::Str(s) => OwnedArg::Str(s.clone()),
    }
}

fn merged(a: &MetricsFrame, b: &MetricsFrame) -> MetricsFrame {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// merge(A, B) == merge(B, A): the batch aggregator folds shard
    /// frames in slot order, but the result must not depend on it.
    #[test]
    fn merge_is_commutative((a, b) in (arbitrary_frame(), arbitrary_frame())) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// (A ∨ B) ∨ C == A ∨ (B ∨ C): folding is grouping-insensitive, so
    /// hierarchical aggregation (per-job, then fleet) matches flat.
    #[test]
    fn merge_is_associative((a, b, c) in (arbitrary_frame(), arbitrary_frame(), arbitrary_frame())) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// A ∨ A == A, and re-folding an already-folded frame is a no-op —
    /// republishing a shard snapshot must not double-count.
    #[test]
    fn merge_is_idempotent((a, b) in (arbitrary_frame(), arbitrary_frame())) {
        let ab = merged(&a, &b);
        prop_assert_eq!(merged(&ab, &a), ab.clone());
        prop_assert_eq!(merged(&ab, &b), ab.clone());
        prop_assert_eq!(merged(&a, &a), a);
    }

    /// The empty frame is the identity element.
    #[test]
    fn empty_frame_is_identity(a in arbitrary_frame()) {
        prop_assert_eq!(merged(&a, &MetricsFrame::new()), a.clone());
        prop_assert_eq!(merged(&MetricsFrame::new(), &a), a);
    }

    /// Fleet totals are partition-invariant: take a fixed list of
    /// per-point counter contributions (what a deterministic scheduler
    /// produces), shard it any way, snapshot each shard under a
    /// disjoint scope, fold in any of several orders — the summed
    /// totals are bit-identical to the serial (single-shard) fold.
    /// This is the algebraic core of the batch engine's cross-thread-
    /// count determinism test.
    #[test]
    fn totals_are_partition_invariant((seed, points) in (any::<u64>(), 1usize..40)) {
        let mut state = seed;
        let contributions: Vec<(u64, u64)> =
            (0..points).map(|_| (lcg(&mut state) % 1000, lcg(&mut state) % 2)).collect();

        let fleet_totals = |shards: usize| {
            let mut fleet = MetricsFrame::new();
            // Round-robin sharding: shard boundaries differ per count.
            for s in 0..shards {
                let mut shard = MetricsFrame::new();
                let mut bits = 0u64;
                let mut feasible = 0u64;
                for (i, (b, f)) in contributions.iter().enumerate() {
                    if i % shards == s {
                        bits += b;
                        feasible += f;
                    }
                }
                shard.insert(format!("shard{s}/register_bits"), MetricValue::Counter(bits));
                shard.insert(format!("shard{s}/feasible"), MetricValue::Counter(feasible));
                fleet.merge(&shard);
            }
            fleet.totals()
        };

        let serial = fleet_totals(1);
        for shards in [2usize, 3, 4, 7] {
            prop_assert_eq!(fleet_totals(shards), serial.clone(), "shards = {}", shards);
        }
    }

    /// `parse_jsonl(render_jsonl(trace))` is lossless for every event
    /// field and every [`ArgValue`] kind (up to the documented number
    /// normalization), across multiple tracks and instant-event notes.
    #[test]
    fn jsonl_round_trips_arbitrary_traces(trace in arbitrary_trace()) {
        let text = render_jsonl(&trace);
        let (events, tracks) = parse_jsonl(&text).expect("own output must parse");
        prop_assert_eq!(&tracks, &trace.tracks);
        prop_assert_eq!(events.len(), trace.events.len());
        for (got, want) in events.iter().zip(&trace.events) {
            prop_assert_eq!(got.seq, want.seq);
            prop_assert_eq!(got.track, want.track);
            prop_assert_eq!(got.kind, want.kind);
            prop_assert_eq!(&got.name, want.name);
            prop_assert_eq!(got.t_ns, want.t_ns);
            let expected: Vec<(String, OwnedArg)> =
                want.args.iter().map(|(k, v)| (k.to_string(), expected_arg(v))).collect();
            prop_assert_eq!(&got.args, &expected);
        }
    }

    /// Cutting the rendered text anywhere strictly inside its final line
    /// must be rejected with an error naming that line — a truncated
    /// flight dump or trace file fails loudly, not by silently dropping
    /// the tail.
    #[test]
    fn jsonl_rejects_truncation_with_the_line_number((trace, cut_seed) in (arbitrary_trace(), any::<u64>())) {
        let text = render_jsonl(&trace);
        // Pick a line, then a cut point strictly inside it: past the
        // opening `{` (so the line is non-empty) and before the closing
        // `}` (so what remains cannot be a complete object).
        let lines: Vec<&str> = text.lines().collect();
        let mut state = cut_seed;
        let line_idx = lcg(&mut state) as usize % lines.len();
        let line = lines[line_idx];
        let offset = 1 + lcg(&mut state) as usize % (line.len() - 1);
        let line_start = lines[..line_idx].iter().map(|l| l.len() + 1).sum::<usize>();
        // Back off to a UTF-8 boundary; the line opens with an ASCII
        // `{`, so the cut stays strictly past the line start.
        let mut cut = line_start + offset;
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        prop_assert!(cut > line_start && cut < line_start + line.len());
        let truncated = &text[..cut];
        let err = parse_jsonl(truncated).expect_err("truncated input must not parse");
        let tag = format!("line {}:", line_idx + 1);
        prop_assert!(err.starts_with(&tag), "error {:?} should start with {:?}", err, tag);
    }
}
