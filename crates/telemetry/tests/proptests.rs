//! Property-based tests for the metrics registry: the algebraic laws of
//! [`MetricsFrame::merge`] (the `DelayCache::merge` contract —
//! commutative, associative, idempotent, with the empty frame as
//! identity) and the partition-invariance that makes batch fleet totals
//! bit-identical across thread counts.

use isdc_telemetry::{MetricValue, MetricsFrame, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// Deterministic helper RNG (same recipe the sibling crates' proptests use).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// A random frame: a handful of keys drawn from a small shared pool (so
/// two frames collide on some keys and differ on others), with values
/// of random kinds — including deliberate kind mismatches across
/// frames, which the join must still resolve lawfully.
fn arbitrary_frame() -> impl Strategy<Value = MetricsFrame> {
    any::<u64>().prop_map(|seed| {
        let mut state = seed;
        let mut frame = MetricsFrame::new();
        let keys = ["cache/hits", "drain/paths", "run/iterations", "points", "shard0/points"];
        let entries = 1 + lcg(&mut state) as usize % keys.len();
        for _ in 0..entries {
            let key = keys[lcg(&mut state) as usize % keys.len()];
            let value = match lcg(&mut state) % 4 {
                0 => MetricValue::Counter(lcg(&mut state)),
                1 => MetricValue::Gauge(lcg(&mut state) as i64 - (1 << 30)),
                2 => MetricValue::Histogram(
                    (0..HISTOGRAM_BUCKETS).map(|_| lcg(&mut state) % 16).collect(),
                ),
                // Short histogram: exercises the zero-padding in join.
                _ => MetricValue::Histogram((0..7).map(|_| lcg(&mut state) % 16).collect()),
            };
            frame.insert(key, value);
        }
        frame
    })
}

fn merged(a: &MetricsFrame, b: &MetricsFrame) -> MetricsFrame {
    let mut out = a.clone();
    out.merge(b);
    out
}

proptest! {
    /// merge(A, B) == merge(B, A): the batch aggregator folds shard
    /// frames in slot order, but the result must not depend on it.
    #[test]
    fn merge_is_commutative((a, b) in (arbitrary_frame(), arbitrary_frame())) {
        prop_assert_eq!(merged(&a, &b), merged(&b, &a));
    }

    /// (A ∨ B) ∨ C == A ∨ (B ∨ C): folding is grouping-insensitive, so
    /// hierarchical aggregation (per-job, then fleet) matches flat.
    #[test]
    fn merge_is_associative((a, b, c) in (arbitrary_frame(), arbitrary_frame(), arbitrary_frame())) {
        prop_assert_eq!(merged(&merged(&a, &b), &c), merged(&a, &merged(&b, &c)));
    }

    /// A ∨ A == A, and re-folding an already-folded frame is a no-op —
    /// republishing a shard snapshot must not double-count.
    #[test]
    fn merge_is_idempotent((a, b) in (arbitrary_frame(), arbitrary_frame())) {
        let ab = merged(&a, &b);
        prop_assert_eq!(merged(&ab, &a), ab.clone());
        prop_assert_eq!(merged(&ab, &b), ab.clone());
        prop_assert_eq!(merged(&a, &a), a);
    }

    /// The empty frame is the identity element.
    #[test]
    fn empty_frame_is_identity(a in arbitrary_frame()) {
        prop_assert_eq!(merged(&a, &MetricsFrame::new()), a.clone());
        prop_assert_eq!(merged(&MetricsFrame::new(), &a), a);
    }

    /// Fleet totals are partition-invariant: take a fixed list of
    /// per-point counter contributions (what a deterministic scheduler
    /// produces), shard it any way, snapshot each shard under a
    /// disjoint scope, fold in any of several orders — the summed
    /// totals are bit-identical to the serial (single-shard) fold.
    /// This is the algebraic core of the batch engine's cross-thread-
    /// count determinism test.
    #[test]
    fn totals_are_partition_invariant((seed, points) in (any::<u64>(), 1usize..40)) {
        let mut state = seed;
        let contributions: Vec<(u64, u64)> =
            (0..points).map(|_| (lcg(&mut state) % 1000, lcg(&mut state) % 2)).collect();

        let fleet_totals = |shards: usize| {
            let mut fleet = MetricsFrame::new();
            // Round-robin sharding: shard boundaries differ per count.
            for s in 0..shards {
                let mut shard = MetricsFrame::new();
                let mut bits = 0u64;
                let mut feasible = 0u64;
                for (i, (b, f)) in contributions.iter().enumerate() {
                    if i % shards == s {
                        bits += b;
                        feasible += f;
                    }
                }
                shard.insert(format!("shard{s}/register_bits"), MetricValue::Counter(bits));
                shard.insert(format!("shard{s}/feasible"), MetricValue::Counter(feasible));
                fleet.merge(&shard);
            }
            fleet.totals()
        };

        let serial = fleet_totals(1);
        for shards in [2usize, 3, 4, 7] {
            prop_assert_eq!(fleet_totals(shards), serial.clone(), "shards = {}", shards);
        }
    }
}
