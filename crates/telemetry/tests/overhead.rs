//! The overhead guard: when tracing is disabled, the span hot path must
//! not allocate and must cost no more than a few relaxed atomic loads.
//!
//! This file is its own test binary so it can install a counting global
//! allocator without affecting any other test process. The timing bound
//! is deliberately loose (tests run unoptimized under `cargo test`);
//! the precise claim — and the one that regresses first if someone adds
//! work before the enabled check — is the *zero allocations* assertion.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Both tests toggle the global enabled flag; running them in parallel
/// would flip it out from under the measured loop.
static SERIAL: Mutex<()> = Mutex::new(());

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

std::thread_local! {
    /// Per-thread allocation count: the zero-alloc assertion must not
    /// trip on allocations made concurrently by other threads (the
    /// libtest harness thread prints results while tests run).
    static THREAD_ALLOCATIONS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        // try_with: TLS may be mid-destruction on thread exit.
        let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

#[test]
fn disabled_spans_allocate_nothing() {
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    isdc_telemetry::set_enabled(false);
    // Warm up any lazy statics outside the measured window.
    {
        let _s = isdc_telemetry::span("warmup");
    }
    const CALLS: u64 = 100_000;
    let before = allocations();
    let t = Instant::now();
    for i in 0..CALLS {
        let _run = isdc_telemetry::span("run");
        let _iter = isdc_telemetry::span_u64("iteration", "i", i);
        let _stage = isdc_telemetry::span_f64("stage", "clock_ps", 2500.0);
    }
    let elapsed = t.elapsed();
    let after = allocations();

    assert_eq!(after - before, 0, "disabled span hot path must not allocate");
    assert!(isdc_telemetry::take_trace().events.is_empty(), "no events recorded while disabled");

    // 3 guards per iteration. Even unoptimized, a relaxed load + None
    // guard is tens of ns; 2µs per call of headroom keeps this safe on
    // loaded CI while still catching accidental clock reads / locks /
    // formatting sneaking in front of the enabled check.
    let per_call_ns = elapsed.as_nanos() as u64 / (CALLS * 3);
    assert!(per_call_ns < 2_000, "disabled span cost {per_call_ns}ns/call — hot path regressed");
}

#[test]
fn enabled_span_cost_is_bounded_and_buffers_drain() {
    // Not a benchmark — a sanity bound that the enabled path works at
    // volume from several threads without losing events.
    let _serial = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    isdc_telemetry::set_enabled(true);
    const PER_THREAD: u64 = 1_000;
    std::thread::scope(|scope| {
        for w in 0..4u64 {
            scope.spawn(move || {
                isdc_telemetry::set_thread_track(format!("overhead-worker-{w}"));
                for i in 0..PER_THREAD {
                    let _s = isdc_telemetry::span_u64("work", "i", i);
                }
            });
        }
    });
    isdc_telemetry::set_enabled(false);
    let trace = isdc_telemetry::take_trace();
    assert_eq!(trace.events.len() as u64, 4 * PER_THREAD * 2, "every Begin/End retained");
    trace.validate().expect("well-formed under concurrency");
}
