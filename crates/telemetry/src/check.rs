//! Trace well-formedness checking.
//!
//! A trace is well-formed when, per track: Begin/End events nest as a
//! LIFO with matching names (so every span is closed and every parent
//! opened before its children — nesting plus the global sequence order
//! implies parent-before-child), timestamps never decrease, and no span
//! is left open at the end. [`validate_events`] is generic over the
//! event source so it runs both on live [`crate::Trace`]s and on
//! re-parsed JSONL files (`isdc-cli trace check`).

use crate::trace::EventKind;
use std::collections::BTreeMap;
use std::fmt;

/// Summary statistics of a well-formed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceSummary {
    /// Total events seen (Begin + End + Instant).
    pub events: usize,
    /// Completed spans (matched Begin/End pairs).
    pub spans: usize,
    /// Instant events.
    pub instants: usize,
    /// Distinct tracks with at least one event.
    pub tracks: usize,
    /// Deepest nesting level reached on any track.
    pub max_depth: usize,
    /// Span of time covered: latest minus earliest timestamp, ns.
    pub duration_ns: u64,
}

/// A violation of trace well-formedness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// An `End` arrived on a track with no span open.
    UnmatchedEnd {
        /// Track the stray `End` arrived on.
        track: u32,
        /// Name carried by the stray `End`.
        name: String,
    },
    /// An `End`'s name differs from the innermost open span's.
    NameMismatch {
        /// Track the mismatch occurred on.
        track: u32,
        /// Name of the innermost open span.
        open: String,
        /// Name carried by the closing event.
        closed: String,
    },
    /// Spans still open when the trace ended.
    UnclosedSpans {
        /// Track with open spans.
        track: u32,
        /// Names still open, outermost first.
        open: Vec<String>,
    },
    /// A track's timestamps went backwards.
    NonMonotonicTime {
        /// Track with the regression.
        track: u32,
        /// Name of the offending event.
        name: String,
        /// Timestamp of the previous event on the track.
        prev_ns: u64,
        /// Timestamp of the offending event.
        t_ns: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::UnmatchedEnd { track, name } => {
                write!(f, "track {track}: End({name:?}) with no span open")
            }
            TraceError::NameMismatch { track, open, closed } => {
                write!(f, "track {track}: End({closed:?}) while {open:?} is innermost")
            }
            TraceError::UnclosedSpans { track, open } => {
                write!(f, "track {track}: {} span(s) left open: {open:?}", open.len())
            }
            TraceError::NonMonotonicTime { track, name, prev_ns, t_ns } => {
                write!(f, "track {track}: {name:?} at {t_ns}ns after {prev_ns}ns")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Validates an event stream (in global sequence order). See the module
/// docs for the rules. Items are `(track, kind, name, t_ns)`.
pub fn validate_events<'a, I>(events: I) -> Result<TraceSummary, TraceError>
where
    I: IntoIterator<Item = (u32, EventKind, &'a str, u64)>,
{
    struct TrackState {
        stack: Vec<String>,
        last_ns: u64,
    }
    let mut tracks: BTreeMap<u32, TrackState> = BTreeMap::new();
    let mut summary = TraceSummary::default();
    let mut first_ns: Option<u64> = None;
    let mut last_ns: u64 = 0;

    for (track, kind, name, t_ns) in events {
        summary.events += 1;
        first_ns = Some(first_ns.map_or(t_ns, |f| f.min(t_ns)));
        last_ns = last_ns.max(t_ns);
        let state =
            tracks.entry(track).or_insert_with(|| TrackState { stack: Vec::new(), last_ns: 0 });
        if t_ns < state.last_ns {
            return Err(TraceError::NonMonotonicTime {
                track,
                name: name.to_string(),
                prev_ns: state.last_ns,
                t_ns,
            });
        }
        state.last_ns = t_ns;
        match kind {
            EventKind::Begin => {
                state.stack.push(name.to_string());
                summary.max_depth = summary.max_depth.max(state.stack.len());
            }
            EventKind::End => match state.stack.pop() {
                None => {
                    return Err(TraceError::UnmatchedEnd { track, name: name.to_string() });
                }
                Some(open) if open != name => {
                    return Err(TraceError::NameMismatch { track, open, closed: name.to_string() });
                }
                Some(_) => summary.spans += 1,
            },
            EventKind::Instant => summary.instants += 1,
        }
    }

    for (track, state) in &tracks {
        if !state.stack.is_empty() {
            return Err(TraceError::UnclosedSpans { track: *track, open: state.stack.clone() });
        }
    }
    summary.tracks = tracks.len();
    summary.duration_ns = last_ns.saturating_sub(first_ns.unwrap_or(0));
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventKind::{Begin, End, Instant};

    #[test]
    fn accepts_nested_and_interleaved_tracks() {
        let events = vec![
            (0, Begin, "session", 0),
            (0, Begin, "run", 10),
            (1, Begin, "shard", 12),
            (0, Instant, "mark", 15),
            (1, End, "shard", 20),
            (0, End, "run", 30),
            (0, End, "session", 40),
        ];
        let summary = validate_events(events).unwrap();
        assert_eq!(summary.spans, 3);
        assert_eq!(summary.instants, 1);
        assert_eq!(summary.tracks, 2);
        assert_eq!(summary.max_depth, 2);
        assert_eq!(summary.duration_ns, 40);
    }

    #[test]
    fn rejects_unclosed_span() {
        let events = vec![(0, Begin, "run", 0)];
        assert!(matches!(validate_events(events), Err(TraceError::UnclosedSpans { track: 0, .. })));
    }

    #[test]
    fn rejects_mismatched_end() {
        let events = vec![(0, Begin, "a", 0), (0, End, "b", 1)];
        assert!(matches!(validate_events(events), Err(TraceError::NameMismatch { .. })));
    }

    #[test]
    fn rejects_stray_end() {
        let events = vec![(0, End, "a", 0)];
        assert!(matches!(validate_events(events), Err(TraceError::UnmatchedEnd { .. })));
    }

    #[test]
    fn rejects_backwards_time_per_track() {
        let events = vec![(0, Begin, "a", 10), (0, End, "a", 5)];
        assert!(matches!(validate_events(events), Err(TraceError::NonMonotonicTime { .. })));
        // Cross-track skew is fine: only per-track order matters.
        let ok = vec![(0, Begin, "a", 10), (1, Begin, "b", 5), (1, End, "b", 6), (0, End, "a", 11)];
        validate_events(ok).unwrap();
    }
}
