//! The metrics registry: counters, gauges and histograms with a
//! deterministic, commutative, associative, idempotent snapshot merge.
//!
//! A [`Registry`] hands out cheap clonable handles ([`Counter`],
//! [`Gauge`], [`Histogram`]) backed by atomics; recording is lock-free.
//! [`Registry::snapshot`] freezes the current values into a
//! [`MetricsFrame`] — an ordered name → value map — and frames combine
//! with [`MetricsFrame::merge`], which follows the same contract as
//! `DelayCache::merge`: a semilattice join, so folding any number of
//! frames in any order and with any duplication yields bit-identical
//! results. Concretely, same-kind values join elementwise by `max` and a
//! kind mismatch (impossible between frames produced by one codebase,
//! but the join must still be lawful) resolves to the higher-ranked
//! kind's value.
//!
//! Because `max` is the join, **fleet aggregation uses disjoint keys**:
//! each batch worker snapshots under a scope prefix unique to its shard
//! (`job3/shard1/points`), so the fold is a disjoint union and
//! [`MetricsFrame::totals`] then *sums* counters grouped by leaf name to
//! produce fleet totals. Determinism across thread counts holds exactly
//! for counters whose per-shard values are themselves deterministic
//! (scheduled points, register bits, iterations) — cache hits and drain
//! work are honest measurements that depend on interleaving and are
//! reported, not asserted.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of power-of-two buckets in a [`Histogram`]: bucket 0 counts
/// zeros, bucket `k ≥ 1` counts values with bit length `k` (i.e. in
/// `[2^(k-1), 2^k)`), up to the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The kind of a metric cell. Order defines the mismatch-resolution
/// rank used by [`MetricValue::join`] (highest wins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-written `i64` level.
    Gauge,
    /// Power-of-two bucketed distribution of `u64` samples.
    Histogram,
}

enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<Buckets>),
}

impl Cell {
    fn kind(&self) -> MetricKind {
        match self {
            Cell::Counter(_) => MetricKind::Counter,
            Cell::Gauge(_) => MetricKind::Gauge,
            Cell::Histogram(_) => MetricKind::Histogram,
        }
    }

    fn value(&self) -> MetricValue {
        match self {
            Cell::Counter(c) => MetricValue::Counter(c.load(Ordering::Relaxed)),
            Cell::Gauge(g) => MetricValue::Gauge(g.load(Ordering::Relaxed)),
            Cell::Histogram(h) => {
                MetricValue::Histogram(h.0.iter().map(|b| b.load(Ordering::Relaxed)).collect())
            }
        }
    }
}

struct Buckets([AtomicU64; HISTOGRAM_BUCKETS]);

/// A monotonically increasing counter handle. Clones share the cell.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (useful as a default).
    pub fn detached() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A last-write-wins level handle. Clones share the cell.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if below it (high-water mark).
    #[inline]
    pub fn raise(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// A power-of-two bucketed histogram handle. Clones share the cell.
#[derive(Clone)]
pub struct Histogram(Arc<Buckets>);

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Self {
        Histogram(Arc::new(Buckets(std::array::from_fn(|_| AtomicU64::new(0)))))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.0 .0[Self::bucket(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Bucket index for a value: 0 for 0, else the bit length.
    pub fn bucket(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.0 .0.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram(n={})", self.count())
    }
}

/// A frozen metric value inside a [`MetricsFrame`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Histogram bucket counts (normally [`HISTOGRAM_BUCKETS`] long;
    /// the join pads shorter vectors with zeros).
    Histogram(Vec<u64>),
}

impl MetricValue {
    /// The value's kind (and join rank).
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }

    /// Semilattice join of two values: same-kind values join
    /// elementwise by `max`; on a kind mismatch the higher-ranked kind
    /// wins outright. Commutative, associative, idempotent — proven by
    /// the proptests in `tests/proptests.rs`.
    pub fn join(&self, other: &MetricValue) -> MetricValue {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => MetricValue::Counter(*a.max(b)),
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => MetricValue::Gauge(*a.max(b)),
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                let n = a.len().max(b.len());
                MetricValue::Histogram(
                    (0..n)
                        .map(|i| a.get(i).copied().unwrap_or(0).max(b.get(i).copied().unwrap_or(0)))
                        .collect(),
                )
            }
            _ => {
                if self.kind() >= other.kind() {
                    self.clone()
                } else {
                    other.clone()
                }
            }
        }
    }

    /// Counter reading, if this value is a counter.
    pub fn as_counter(&self) -> Option<u64> {
        match self {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }
}

/// An ordered snapshot of metric names to frozen values. Frames are the
/// unit of aggregation: workers snapshot locally (under a scope prefix)
/// and the aggregator folds them with [`merge`](Self::merge).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MetricsFrame {
    /// Name → value, in deterministic (lexicographic) order.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsFrame {
    /// The empty frame (identity element of [`merge`](Self::merge)).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `other` into `self` key by key with [`MetricValue::join`].
    /// Commutative, associative, idempotent; the empty frame is the
    /// identity — the `DelayCache::merge` contract.
    pub fn merge(&mut self, other: &MetricsFrame) {
        for (name, value) in &other.metrics {
            match self.metrics.get_mut(name) {
                Some(mine) => *mine = mine.join(value),
                None => {
                    self.metrics.insert(name.clone(), value.clone());
                }
            }
        }
    }

    /// Inserts (or joins onto an existing) value under `name`.
    pub fn insert(&mut self, name: impl Into<String>, value: MetricValue) {
        let name = name.into();
        match self.metrics.get_mut(&name) {
            Some(mine) => *mine = mine.join(&value),
            None => {
                self.metrics.insert(name, value);
            }
        }
    }

    /// Counter reading under exactly `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics.get(name).and_then(MetricValue::as_counter)
    }

    /// Counter reading under exactly `name`, or 0.
    pub fn counter_or_zero(&self, name: &str) -> u64 {
        self.counter(name).unwrap_or(0)
    }

    /// Sums counters grouped by leaf name (the part after the last
    /// `/`). Because fleet frames use disjoint per-shard scope prefixes
    /// (`job3/shard1/points`), this turns the max-join fold back into
    /// the fleet-wide *sum* per metric. Deterministic whenever each
    /// shard's own counters are.
    pub fn totals(&self) -> BTreeMap<String, u64> {
        let mut totals = BTreeMap::new();
        for (name, value) in &self.metrics {
            if let MetricValue::Counter(v) = value {
                let leaf = name.rsplit('/').next().unwrap_or(name);
                *totals.entry(leaf.to_string()).or_insert(0) += v;
            }
        }
        totals
    }

    /// Sums counters whose name ends with `/{leaf}` (or equals `leaf`).
    pub fn total_of(&self, leaf: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(name, _)| name.as_str() == leaf || name.ends_with(&format!("/{leaf}")))
            .filter_map(|(_, v)| v.as_counter())
            .sum()
    }
}

/// Estimates the `q`-quantile (`0.0 ..= 1.0`) of a power-of-two bucketed
/// histogram (see [`HISTOGRAM_BUCKETS`] for the bucket layout).
///
/// The estimate is the **lower bound** of the bucket containing the
/// rank-`max(1, ⌈q·n⌉)` sample: `0` for the zero bucket, else
/// `2^(k-1)` for bucket `k`.
///
/// **Error bound:** the true rank-`⌈q·n⌉` sample lies in the same
/// bucket, i.e. in `[estimate, 2·estimate)` — the estimate never
/// overshoots and undershoots by strictly less than 2×. When every
/// sample is an exact power of two (a bucket boundary) the estimate is
/// exact. Returns `None` for an empty histogram.
pub fn histogram_quantile(buckets: &[u64], q: f64) -> Option<u64> {
    let n: u64 = buckets.iter().sum();
    if n == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).clamp(1, n);
    let mut cum = 0u64;
    for (k, &count) in buckets.iter().enumerate() {
        cum += count;
        if cum >= rank {
            return Some(if k == 0 { 0 } else { 1u64 << (k - 1) });
        }
    }
    None
}

/// A collection of named metric cells. Handle registration takes a
/// short-lived lock; recording through handles is lock-free.
#[derive(Default)]
pub struct Registry {
    cells: Mutex<BTreeMap<String, Cell>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or registers the counter `name`. Panics if `name` is
    /// already registered as a different kind (a code bug: metric names
    /// are static within one build).
    pub fn counter(&self, name: &str) -> Counter {
        let mut cells = self.cells.lock().unwrap();
        match cells
            .entry(name.to_string())
            .or_insert_with(|| Cell::Counter(Arc::new(AtomicU64::new(0))))
        {
            Cell::Counter(c) => Counter(Arc::clone(c)),
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Gets or registers the gauge `name`. Panics on kind mismatch.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut cells = self.cells.lock().unwrap();
        match cells
            .entry(name.to_string())
            .or_insert_with(|| Cell::Gauge(Arc::new(AtomicI64::new(0))))
        {
            Cell::Gauge(g) => Gauge(Arc::clone(g)),
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Gets or registers the histogram `name`. Panics on kind mismatch.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut cells = self.cells.lock().unwrap();
        match cells.entry(name.to_string()).or_insert_with(|| {
            Cell::Histogram(Arc::new(Buckets(std::array::from_fn(|_| AtomicU64::new(0)))))
        }) {
            Cell::Histogram(h) => Histogram(Arc::clone(h)),
            other => panic!("metric {name:?} already registered as {:?}", other.kind()),
        }
    }

    /// Freezes all cells into a frame.
    pub fn snapshot(&self) -> MetricsFrame {
        self.snapshot_scoped("")
    }

    /// Freezes all cells into a frame with every name prefixed by
    /// `scope` + `/` (no prefix when `scope` is empty). Batch shards
    /// snapshot under disjoint scopes so fleet folds are disjoint
    /// unions; see [`MetricsFrame::totals`].
    pub fn snapshot_scoped(&self, scope: &str) -> MetricsFrame {
        let cells = self.cells.lock().unwrap();
        let mut frame = MetricsFrame::new();
        for (name, cell) in cells.iter() {
            let key = if scope.is_empty() { name.clone() } else { format!("{scope}/{name}") };
            frame.metrics.insert(key, cell.value());
        }
        frame
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cells = self.cells.lock().unwrap();
        write!(f, "Registry({} cells)", cells.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells() {
        let reg = Registry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.add(2);
        b.incr();
        assert_eq!(reg.snapshot().counter("hits"), Some(3));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        let _c = reg.counter("x");
        let _g = reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket(0), 0);
        assert_eq!(Histogram::bucket(1), 1);
        assert_eq!(Histogram::bucket(2), 2);
        assert_eq!(Histogram::bucket(3), 2);
        assert_eq!(Histogram::bucket(4), 3);
        assert_eq!(Histogram::bucket(u64::MAX), 64);
        let h = Histogram::detached();
        h.record(0);
        h.record(7);
        h.record(8);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn scoped_totals_sum_by_leaf() {
        let mut fleet = MetricsFrame::new();
        for shard in 0..3u64 {
            let reg = Registry::new();
            reg.counter("points").add(shard + 1);
            reg.counter("feasible").add(1);
            fleet.merge(&reg.snapshot_scoped(&format!("job0/shard{shard}")));
        }
        assert_eq!(fleet.totals()["points"], 6);
        assert_eq!(fleet.totals()["feasible"], 3);
        assert_eq!(fleet.total_of("points"), 6);
    }

    /// Exact rank-`⌈q·n⌉` quantile of a sample set, the reference the
    /// bucketed estimator is compared against.
    fn exact_quantile(samples: &mut [u64], q: f64) -> u64 {
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        samples[rank - 1]
    }

    #[test]
    fn quantiles_are_exact_at_bucket_boundaries() {
        // Every sample is a power of two (a bucket boundary) — the
        // lower-bound estimator is exact by construction. Duplicate some
        // samples so bucket counts exceed one.
        let mut samples: Vec<u64> = (0..20).map(|j| 1u64 << j).collect();
        samples.extend([1u64, 8, 8, 1 << 19]);
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for &s in &samples {
            buckets[Histogram::bucket(s)] += 1;
        }
        for q in [0.5, 0.95, 0.99] {
            assert_eq!(
                histogram_quantile(&buckets, q),
                Some(exact_quantile(&mut samples, q)),
                "q = {q}"
            );
        }
    }

    #[test]
    fn quantiles_stay_within_the_documented_bound() {
        let mut samples: Vec<u64> = vec![0, 3, 5, 6, 7, 100, 1000, 1001, 4095, 4096, 70000];
        let mut buckets = vec![0u64; HISTOGRAM_BUCKETS];
        for &s in &samples {
            buckets[Histogram::bucket(s)] += 1;
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = histogram_quantile(&buckets, q).unwrap();
            let exact = exact_quantile(&mut samples, q);
            if exact == 0 {
                assert_eq!(est, 0, "q = {q}");
            } else {
                assert!(est <= exact && exact < 2 * est, "q = {q}: est {est}, exact {exact}");
            }
        }
    }

    #[test]
    fn quantile_edge_cases() {
        assert_eq!(histogram_quantile(&[], 0.5), None);
        assert_eq!(histogram_quantile(&vec![0u64; HISTOGRAM_BUCKETS], 0.5), None);
        // All zeros: every quantile is the zero bucket.
        let mut zeros = vec![0u64; HISTOGRAM_BUCKETS];
        zeros[0] = 5;
        assert_eq!(histogram_quantile(&zeros, 0.99), Some(0));
        // Top bucket: values with bit length 64.
        let mut top = vec![0u64; HISTOGRAM_BUCKETS];
        top[64] = 1;
        assert_eq!(histogram_quantile(&top, 0.5), Some(1u64 << 63));
    }

    #[test]
    fn merge_is_idempotent_on_equal_frames() {
        let reg = Registry::new();
        reg.counter("a").add(5);
        reg.gauge("b").set(-2);
        reg.histogram("c").record(9);
        let frame = reg.snapshot();
        let mut twice = frame.clone();
        twice.merge(&frame);
        assert_eq!(twice, frame);
    }
}
