//! The span collector: a global, sharded, thread-safe event buffer.
//!
//! Design constraints, in priority order:
//!
//! 1. **Disabled cost ≈ zero.** [`span`] when tracing is off records
//!    nothing into the trace buffers — only a fixed-size entry into the
//!    always-on flight-recorder ring (`crate::recorder`): no allocation,
//!    no unbounded growth. Instrumentation can therefore sit on warm
//!    paths (per-iteration, per-solve) without a feature gate; the
//!    allocation-counting overhead guard in `tests/overhead.rs` enforces
//!    the budget.
//! 2. **No unbalanced spans.** The only way to record a `Begin` is to
//!    hold a [`SpanGuard`]; its `Drop` records the matching `End`, so
//!    early returns and `?` propagation cannot leak an open span.
//! 3. **Thread-safe without a global bottleneck.** Events land in one of
//!    a fixed set of mutex-protected shards picked by the recording
//!    thread's track id; a global atomic sequence number gives a total
//!    order for reassembly.
//!
//! Timestamps are monotonic nanoseconds since a process-wide epoch
//! (first telemetry touch), so traces from one process share a timeline.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of mutex-protected event-buffer shards. Tracks hash onto
/// shards by id, so up to this many threads record without contention.
const SHARDS: usize = 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static BUFFERS: [Mutex<Vec<Event>>; SHARDS] = [const { Mutex::new(Vec::new()) }; SHARDS];
/// Registered track names; a track's id is its index here. Track 0 is
/// pre-registered as "main" lazily on first use.
static TRACKS: Mutex<Vec<String>> = Mutex::new(Vec::new());
/// Bumped whenever the track table is cleared ([`take_trace`]/[`reset`])
/// so threads holding a cached track id re-register instead of recording
/// onto a reassigned id.
static TRACK_GEN: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's `(track generation, track id)`, or `u32::MAX` if
    /// not yet assigned. A stale generation invalidates the cached id.
    static THREAD_TRACK: Cell<(u64, u32)> = const { Cell::new((0, u32::MAX)) };
}

/// A typed span/event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument (ids, counts).
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Floating-point argument (clock periods, rates).
    F64(f64),
    /// String argument (design names).
    Str(String),
}

/// What an [`Event`] marks: the start of a span, its end, or a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened (Chrome `ph: "B"`).
    Begin,
    /// Span closed (Chrome `ph: "E"`).
    End,
    /// Instantaneous point event (Chrome `ph: "i"`).
    Instant,
}

/// One recorded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number: a total order across all tracks.
    pub seq: u64,
    /// Track (≈ thread) the event was recorded on.
    pub track: u32,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Span name. Static because instrumentation sites name their spans
    /// with literals; parsed traces use [`crate::OwnedEvent`] instead.
    pub name: &'static str,
    /// Monotonic nanoseconds since the process telemetry epoch.
    pub t_ns: u64,
    /// Key/value arguments attached at `Begin` (empty on `End`).
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A drained trace: every event recorded since the last [`take_trace`]
/// or [`reset`], in global sequence order, plus the track-name table.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in ascending `seq` order.
    pub events: Vec<Event>,
    /// Track names; index = track id.
    pub tracks: Vec<String>,
}

impl Trace {
    /// Checks well-formedness: per-track LIFO nesting with name-matched
    /// ends, monotone timestamps, and no span left open.
    pub fn validate(&self) -> Result<crate::TraceSummary, crate::TraceError> {
        crate::validate_events(self.events.iter().map(|e| (e.track, e.kind, e.name, e.t_ns)))
    }

    /// Name of `track`, or a synthesized placeholder if unregistered.
    pub fn track_name(&self, track: u32) -> String {
        self.tracks.get(track as usize).cloned().unwrap_or_else(|| format!("track-{track}"))
    }
}

/// Returns whether span recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables span recording. Disabling does not drop
/// already-buffered events; live guards still record their `End` so a
/// mid-run toggle cannot unbalance the trace.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Monotonic nanoseconds since the process telemetry epoch.
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Names the calling thread's track (shown as the thread name in
/// Perfetto). Returns the track id. Batch workers call this once at
/// spawn (`batch-worker-{i}`); unnamed threads get `thread-{id}` on
/// their first recorded event.
pub fn set_thread_track(name: impl Into<String>) -> u32 {
    let (generation, id) = register_track(name.into());
    THREAD_TRACK.with(|t| t.set((generation, id)));
    id
}

/// Registers `name`, returning `(generation, id)` read under the table
/// lock so a concurrent clear cannot hand out an id from the wrong
/// generation.
fn register_track(name: String) -> (u64, u32) {
    let mut tracks = TRACKS.lock().unwrap();
    let generation = TRACK_GEN.load(Ordering::Relaxed);
    if tracks.is_empty() {
        tracks.push("main".to_string());
    }
    if name == "main" {
        return (generation, 0);
    }
    if let Some(pos) = tracks.iter().position(|t| *t == name) {
        return (generation, pos as u32);
    }
    tracks.push(name);
    (generation, (tracks.len() - 1) as u32)
}

/// The calling thread's track id, assigning a fresh one if needed.
pub(crate) fn current_track() -> u32 {
    THREAD_TRACK.with(|t| {
        let (generation, id) = t.get();
        if id != u32::MAX && generation == TRACK_GEN.load(Ordering::Relaxed) {
            return id;
        }
        // First event from an unnamed thread (or one whose cached id
        // predates a track-table clear): the thread that touches
        // telemetry first claims track 0 ("main"), others get a
        // synthesized name.
        let mut tracks = TRACKS.lock().unwrap();
        let generation = TRACK_GEN.load(Ordering::Relaxed);
        let id = if tracks.is_empty() {
            tracks.push("main".to_string());
            0
        } else {
            let id = tracks.len();
            tracks.push(format!("thread-{id}"));
            id as u32
        };
        drop(tracks);
        t.set((generation, id));
        id
    })
}

fn record(kind: EventKind, name: &'static str, track: u32, args: Vec<(&'static str, ArgValue)>) {
    let event =
        Event { seq: SEQ.fetch_add(1, Ordering::Relaxed), track, kind, name, t_ns: now_ns(), args };
    let shard = track as usize % SHARDS;
    BUFFERS[shard].lock().unwrap().push(event);
}

/// A scoped span: records `Begin` on creation and the matching `End` on
/// drop. The flight recorder sees both regardless of the tracing switch;
/// the full trace buffers only see them while tracing is enabled.
#[must_use = "a span guard records its End when dropped; binding it to _ closes it immediately"]
pub struct SpanGuard {
    name: &'static str,
    track: u32,
    /// `true` iff a `Begin` was recorded into the full trace buffers.
    live: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        crate::recorder::flight_record(self.track, EventKind::End, self.name, None);
        // Record the End even if tracing was disabled mid-span: an open
        // Begin with no End would fail trace validation.
        if self.live {
            record(EventKind::End, self.name, self.track, Vec::new());
        }
    }
}

/// Opens a span named `name` on the calling thread's track.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let track = current_track();
    crate::recorder::flight_record(track, EventKind::Begin, name, None);
    if !enabled() {
        return SpanGuard { name, track, live: false };
    }
    span_slow(name, track, Vec::new())
}

/// Opens a span with one `u64` argument.
#[inline]
pub fn span_u64(name: &'static str, key: &'static str, value: u64) -> SpanGuard {
    let track = current_track();
    crate::recorder::flight_record(
        track,
        EventKind::Begin,
        name,
        Some(crate::FlightArg::U64(key, value)),
    );
    if !enabled() {
        return SpanGuard { name, track, live: false };
    }
    span_slow(name, track, vec![(key, ArgValue::U64(value))])
}

/// Opens a span with one `f64` argument.
#[inline]
pub fn span_f64(name: &'static str, key: &'static str, value: f64) -> SpanGuard {
    let track = current_track();
    crate::recorder::flight_record(
        track,
        EventKind::Begin,
        name,
        Some(crate::FlightArg::F64(key, value)),
    );
    if !enabled() {
        return SpanGuard { name, track, live: false };
    }
    span_slow(name, track, vec![(key, ArgValue::F64(value))])
}

/// Opens a span with one string argument. The flight recorder keeps the
/// span but drops the argument (its ring entries cannot own a string).
#[inline]
pub fn span_str(name: &'static str, key: &'static str, value: &str) -> SpanGuard {
    let track = current_track();
    crate::recorder::flight_record(track, EventKind::Begin, name, None);
    if !enabled() {
        return SpanGuard { name, track, live: false };
    }
    span_slow(name, track, vec![(key, ArgValue::Str(value.to_string()))])
}

#[cold]
fn span_slow(name: &'static str, track: u32, args: Vec<(&'static str, ArgValue)>) -> SpanGuard {
    record(EventKind::Begin, name, track, args);
    SpanGuard { name, track, live: true }
}

/// The first scalar argument, converted for the flight recorder; string
/// arguments are not representable there.
fn flight_arg(args: &[(&'static str, ArgValue)]) -> Option<crate::FlightArg> {
    args.iter().find_map(|(k, v)| match v {
        ArgValue::U64(v) => Some(crate::FlightArg::U64(k, *v)),
        ArgValue::I64(v) => Some(crate::FlightArg::I64(k, *v)),
        ArgValue::F64(v) => Some(crate::FlightArg::F64(k, *v)),
        ArgValue::Str(_) => None,
    })
}

impl SpanGuard {
    /// Attaches extra arguments to an already-open span by recording an
    /// instant event inside it (Chrome `ph: "i"`). Useful for values
    /// only known after the span opened (e.g. drain counters).
    pub fn note(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) {
        crate::recorder::flight_record(self.track, EventKind::Instant, name, flight_arg(&args));
        if self.live {
            record(EventKind::Instant, name, self.track, args);
        }
    }
}

/// Drains all buffered events (sorted by global sequence number) and the
/// track-name table. Buffered events are removed and the track table is
/// cleared (its snapshot lives on in the returned [`Trace`]), so
/// back-to-back in-process runs do not accumulate stale
/// `batch-worker-*`/`thread-*` tracks; long-lived threads re-register
/// lazily on their next event.
pub fn take_trace() -> Trace {
    let mut events = Vec::new();
    for shard in &BUFFERS {
        events.append(&mut shard.lock().unwrap());
    }
    events.sort_by_key(|e| e.seq);
    let tracks = {
        let mut table = TRACKS.lock().unwrap();
        TRACK_GEN.fetch_add(1, Ordering::Relaxed);
        std::mem::take(&mut *table)
    };
    crate::recorder::flight_clear();
    Trace { events, tracks }
}

/// Clears all buffered events without returning them, along with the
/// track table and the flight-recorder rings. The epoch persists.
pub fn reset() {
    for shard in &BUFFERS {
        shard.lock().unwrap().clear();
    }
    {
        let mut table = TRACKS.lock().unwrap();
        TRACK_GEN.fetch_add(1, Ordering::Relaxed);
        table.clear();
    }
    crate::recorder::flight_clear();
}

/// The collector is global, so tests that enable tracing, drain it, or
/// inspect flight rings must not interleave; this lock serializes them
/// across the crate's unit tests.
#[cfg(test)]
pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        {
            let _s = span("nothing");
            let _t = span_u64("nested", "i", 3);
        }
        assert!(take_trace().events.is_empty());
    }

    #[test]
    fn spans_nest_and_balance() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        set_enabled(true);
        {
            let outer = span("outer");
            outer.note("mark", vec![("k", ArgValue::U64(7))]);
            let _inner = span_str("inner", "design", "crc32");
        }
        set_enabled(false);
        let trace = take_trace();
        let kinds: Vec<EventKind> = trace.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Begin,
                EventKind::Instant,
                EventKind::Begin,
                EventKind::End,
                EventKind::End
            ]
        );
        // Inner closes before outer (LIFO), names match.
        assert_eq!(trace.events[3].name, "inner");
        assert_eq!(trace.events[4].name, "outer");
        let summary = trace.validate().expect("balanced trace");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.max_depth, 2);
    }

    #[test]
    fn mid_span_disable_still_closes() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        set_enabled(true);
        let s = span("survivor");
        set_enabled(false);
        drop(s);
        let trace = take_trace();
        assert_eq!(trace.events.len(), 2);
        trace.validate().expect("End recorded despite disable");
    }

    #[test]
    fn threads_get_distinct_tracks() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        set_enabled(true);
        let main_span = span("parent");
        std::thread::scope(|scope| {
            for i in 0..3 {
                scope.spawn(move || {
                    set_thread_track(format!("worker-{i}"));
                    let _s = span_u64("work", "i", i);
                });
            }
        });
        drop(main_span);
        set_enabled(false);
        let trace = take_trace();
        let mut tracks: Vec<u32> = trace.events.iter().map(|e| e.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        assert_eq!(tracks.len(), 4, "main + 3 workers");
        for i in 0..3 {
            assert!(trace.tracks.iter().any(|t| t == &format!("worker-{i}")));
        }
        trace.validate().expect("per-track balance across threads");
    }
}
