//! The span collector: a global, sharded, thread-safe event buffer.
//!
//! Design constraints, in priority order:
//!
//! 1. **Disabled cost ≈ zero.** [`span`] when tracing is off is one
//!    relaxed atomic load and a `None` guard — no clock read, no lock,
//!    no allocation. Instrumentation can therefore sit on warm paths
//!    (per-iteration, per-solve) without a feature gate.
//! 2. **No unbalanced spans.** The only way to record a `Begin` is to
//!    hold a [`SpanGuard`]; its `Drop` records the matching `End`, so
//!    early returns and `?` propagation cannot leak an open span.
//! 3. **Thread-safe without a global bottleneck.** Events land in one of
//!    a fixed set of mutex-protected shards picked by the recording
//!    thread's track id; a global atomic sequence number gives a total
//!    order for reassembly.
//!
//! Timestamps are monotonic nanoseconds since a process-wide epoch
//! (first telemetry touch), so traces from one process share a timeline.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Number of mutex-protected event-buffer shards. Tracks hash onto
/// shards by id, so up to this many threads record without contention.
const SHARDS: usize = 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(0);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static BUFFERS: [Mutex<Vec<Event>>; SHARDS] = [const { Mutex::new(Vec::new()) }; SHARDS];
/// Registered track names; a track's id is its index here. Track 0 is
/// pre-registered as "main" lazily on first use.
static TRACKS: Mutex<Vec<String>> = Mutex::new(Vec::new());

thread_local! {
    /// This thread's track id, or `u32::MAX` if not yet assigned.
    static THREAD_TRACK: Cell<u32> = const { Cell::new(u32::MAX) };
}

/// A typed span/event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument (ids, counts).
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Floating-point argument (clock periods, rates).
    F64(f64),
    /// String argument (design names).
    Str(String),
}

/// What an [`Event`] marks: the start of a span, its end, or a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Span opened (Chrome `ph: "B"`).
    Begin,
    /// Span closed (Chrome `ph: "E"`).
    End,
    /// Instantaneous point event (Chrome `ph: "i"`).
    Instant,
}

/// One recorded telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number: a total order across all tracks.
    pub seq: u64,
    /// Track (≈ thread) the event was recorded on.
    pub track: u32,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Span name. Static because instrumentation sites name their spans
    /// with literals; parsed traces use [`crate::OwnedEvent`] instead.
    pub name: &'static str,
    /// Monotonic nanoseconds since the process telemetry epoch.
    pub t_ns: u64,
    /// Key/value arguments attached at `Begin` (empty on `End`).
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A drained trace: every event recorded since the last [`take_trace`]
/// or [`reset`], in global sequence order, plus the track-name table.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in ascending `seq` order.
    pub events: Vec<Event>,
    /// Track names; index = track id.
    pub tracks: Vec<String>,
}

impl Trace {
    /// Checks well-formedness: per-track LIFO nesting with name-matched
    /// ends, monotone timestamps, and no span left open.
    pub fn validate(&self) -> Result<crate::TraceSummary, crate::TraceError> {
        crate::validate_events(self.events.iter().map(|e| (e.track, e.kind, e.name, e.t_ns)))
    }

    /// Name of `track`, or a synthesized placeholder if unregistered.
    pub fn track_name(&self, track: u32) -> String {
        self.tracks.get(track as usize).cloned().unwrap_or_else(|| format!("track-{track}"))
    }
}

/// Returns whether span recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables span recording. Disabling does not drop
/// already-buffered events; live guards still record their `End` so a
/// mid-run toggle cannot unbalance the trace.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Monotonic nanoseconds since the process telemetry epoch.
pub fn now_ns() -> u64 {
    let epoch = EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos() as u64
}

/// Names the calling thread's track (shown as the thread name in
/// Perfetto). Returns the track id. Batch workers call this once at
/// spawn (`batch-worker-{i}`); unnamed threads get `thread-{id}` on
/// their first recorded event.
pub fn set_thread_track(name: impl Into<String>) -> u32 {
    let id = register_track(name.into());
    THREAD_TRACK.with(|t| t.set(id));
    id
}

fn register_track(name: String) -> u32 {
    let mut tracks = TRACKS.lock().unwrap();
    if tracks.is_empty() {
        tracks.push("main".to_string());
    }
    if name == "main" {
        return 0;
    }
    if let Some(pos) = tracks.iter().position(|t| *t == name) {
        return pos as u32;
    }
    tracks.push(name);
    (tracks.len() - 1) as u32
}

/// The calling thread's track id, assigning a fresh one if needed.
fn thread_track() -> u32 {
    THREAD_TRACK.with(|t| {
        let id = t.get();
        if id != u32::MAX {
            return id;
        }
        // First event from an unnamed thread: the main thread (the one
        // that touched telemetry first) claims track 0, others get a
        // synthesized name.
        let mut tracks = TRACKS.lock().unwrap();
        let id = if tracks.is_empty() {
            tracks.push("main".to_string());
            0
        } else {
            let id = tracks.len();
            tracks.push(format!("thread-{id}"));
            id as u32
        };
        drop(tracks);
        t.set(id);
        id
    })
}

fn record(kind: EventKind, name: &'static str, track: u32, args: Vec<(&'static str, ArgValue)>) {
    let event =
        Event { seq: SEQ.fetch_add(1, Ordering::Relaxed), track, kind, name, t_ns: now_ns(), args };
    let shard = track as usize % SHARDS;
    BUFFERS[shard].lock().unwrap().push(event);
}

/// A scoped span: records `Begin` on creation (when tracing is enabled)
/// and the matching `End` on drop. When tracing is disabled the guard is
/// inert and costs nothing.
#[must_use = "a span guard records its End when dropped; binding it to _ closes it immediately"]
pub struct SpanGuard {
    /// `Some((name, track))` iff a `Begin` was recorded.
    live: Option<(&'static str, u32)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Record the End even if tracing was disabled mid-span: an open
        // Begin with no End would fail trace validation.
        if let Some((name, track)) = self.live.take() {
            record(EventKind::End, name, track, Vec::new());
        }
    }
}

/// Opens a span named `name` on the calling thread's track.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    span_slow(name, Vec::new())
}

/// Opens a span with one `u64` argument.
#[inline]
pub fn span_u64(name: &'static str, key: &'static str, value: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    span_slow(name, vec![(key, ArgValue::U64(value))])
}

/// Opens a span with one `f64` argument.
#[inline]
pub fn span_f64(name: &'static str, key: &'static str, value: f64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    span_slow(name, vec![(key, ArgValue::F64(value))])
}

/// Opens a span with one string argument.
#[inline]
pub fn span_str(name: &'static str, key: &'static str, value: &str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: None };
    }
    span_slow(name, vec![(key, ArgValue::Str(value.to_string()))])
}

#[cold]
fn span_slow(name: &'static str, args: Vec<(&'static str, ArgValue)>) -> SpanGuard {
    let track = thread_track();
    record(EventKind::Begin, name, track, args);
    SpanGuard { live: Some((name, track)) }
}

impl SpanGuard {
    /// Attaches extra arguments to an already-open span by recording an
    /// instant event inside it (Chrome `ph: "i"`). Useful for values
    /// only known after the span opened (e.g. drain counters).
    pub fn note(&self, name: &'static str, args: Vec<(&'static str, ArgValue)>) {
        if let Some((_, track)) = self.live {
            record(EventKind::Instant, name, track, args);
        }
    }
}

/// Drains all buffered events (sorted by global sequence number) and the
/// track-name table. Buffered events are removed; track registrations
/// persist so long-lived threads keep their names across drains.
pub fn take_trace() -> Trace {
    let mut events = Vec::new();
    for shard in &BUFFERS {
        events.append(&mut shard.lock().unwrap());
    }
    events.sort_by_key(|e| e.seq);
    let tracks = TRACKS.lock().unwrap().clone();
    Trace { events, tracks }
}

/// Clears all buffered events without returning them. Track
/// registrations and the epoch persist.
pub fn reset() {
    for shard in &BUFFERS {
        shard.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The collector is global, so tests that enable tracing must not
    /// interleave; this lock serializes them (also used by integration
    /// tests via the public API contract: enable → run → take → disable).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_span_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        {
            let _s = span("nothing");
            let _t = span_u64("nested", "i", 3);
        }
        assert!(take_trace().events.is_empty());
    }

    #[test]
    fn spans_nest_and_balance() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        set_enabled(true);
        {
            let outer = span("outer");
            outer.note("mark", vec![("k", ArgValue::U64(7))]);
            let _inner = span_str("inner", "design", "crc32");
        }
        set_enabled(false);
        let trace = take_trace();
        let kinds: Vec<EventKind> = trace.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Begin,
                EventKind::Instant,
                EventKind::Begin,
                EventKind::End,
                EventKind::End
            ]
        );
        // Inner closes before outer (LIFO), names match.
        assert_eq!(trace.events[3].name, "inner");
        assert_eq!(trace.events[4].name, "outer");
        let summary = trace.validate().expect("balanced trace");
        assert_eq!(summary.spans, 2);
        assert_eq!(summary.max_depth, 2);
    }

    #[test]
    fn mid_span_disable_still_closes() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        set_enabled(true);
        let s = span("survivor");
        set_enabled(false);
        drop(s);
        let trace = take_trace();
        assert_eq!(trace.events.len(), 2);
        trace.validate().expect("End recorded despite disable");
    }

    #[test]
    fn threads_get_distinct_tracks() {
        let _guard = TEST_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        set_enabled(true);
        let main_span = span("parent");
        std::thread::scope(|scope| {
            for i in 0..3 {
                scope.spawn(move || {
                    set_thread_track(format!("worker-{i}"));
                    let _s = span_u64("work", "i", i);
                });
            }
        });
        drop(main_span);
        set_enabled(false);
        let trace = take_trace();
        let mut tracks: Vec<u32> = trace.events.iter().map(|e| e.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        assert_eq!(tracks.len(), 4, "main + 3 workers");
        for i in 0..3 {
            assert!(trace.tracks.iter().any(|t| t == &format!("worker-{i}")));
        }
        trace.validate().expect("per-track balance across threads");
    }
}
