//! The flight recorder: an always-on, bounded, per-track ring buffer of
//! the most recent span/note events.
//!
//! Full tracing ([`crate::set_enabled`]) is opt-in because it buffers an
//! unbounded event stream; the flight recorder is the complement — it is
//! **always live**, keeps only the last [`FLIGHT_CAPACITY`] events per
//! track, and never allocates on the record path, so a worker that dies
//! can always explain what it was doing. The batch engine snapshots the
//! failing worker's tail into its `JobError`; the CLI prints it and dumps
//! it to `<out>.flight.jsonl`.
//!
//! Cost model (the reason this can be always-on): recording one event is
//! a thread-local track lookup, one atomic fetch-add, one monotonic clock
//! read, and one uncontended per-track mutex — no heap allocation, which
//! the allocation-counting overhead guard in `tests/overhead.rs`
//! enforces. Entries store only `&'static str` names and scalar
//! arguments; string arguments from the full-trace API are dropped here.

use crate::trace::{current_track, now_ns, EventKind};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Events retained per track. A shard run records dozens of events per
/// iteration, so 64 covers the last iteration or two — the part that
/// explains a failure.
pub const FLIGHT_CAPACITY: usize = 64;

/// Tracks with a ring. Track ids above this are not recorded (they would
/// need allocation to store); ids stay small because
/// [`crate::take_trace`]/[`crate::reset`] clear the track table.
const FLIGHT_TRACKS: usize = 64;

/// Flight-recorder sequence numbers are separate from the full-trace
/// sequence so always-on recording never perturbs trace output.
static FLIGHT_SEQ: AtomicU64 = AtomicU64::new(0);

static RINGS: [Mutex<Ring>; FLIGHT_TRACKS] = [const { Mutex::new(Ring::new()) }; FLIGHT_TRACKS];

/// A scalar argument attached to a flight event. Only `Copy` payloads
/// with `'static` keys are representable — the record path may not
/// allocate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlightArg {
    /// Unsigned integer argument (ids, counts).
    U64(&'static str, u64),
    /// Signed integer argument.
    I64(&'static str, i64),
    /// Floating-point argument (clock periods).
    F64(&'static str, f64),
    /// Static string argument (fault sites).
    Str(&'static str, &'static str),
}

/// One event in a flight-recorder tail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Flight sequence number (its own counter, not the trace one).
    pub seq: u64,
    /// Track the event was recorded on.
    pub track: u32,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Span or note name.
    pub name: &'static str,
    /// Monotonic nanoseconds since the process telemetry epoch.
    pub t_ns: u64,
    /// Optional scalar argument.
    pub arg: Option<FlightArg>,
}

impl FlightEvent {
    const EMPTY: FlightEvent =
        FlightEvent { seq: 0, track: 0, kind: EventKind::Instant, name: "", t_ns: 0, arg: None };

    /// Renders the event as one JSONL object line (no trailing newline),
    /// the same dialect as [`crate::render_jsonl`] event lines.
    pub fn render_jsonl_line(&self, out: &mut String) {
        use std::fmt::Write;
        let kind = match self.kind {
            EventKind::Begin => "B",
            EventKind::End => "E",
            EventKind::Instant => "i",
        };
        let _ = write!(
            out,
            "{{\"kind\":\"{kind}\",\"seq\":{},\"track\":{},\"name\":\"{}\",\"t_ns\":{}",
            self.seq,
            self.track,
            crate::export::escaped(self.name),
            self.t_ns
        );
        match self.arg {
            Some(FlightArg::U64(k, v)) => {
                let _ = write!(out, ",\"args\":{{\"{}\":{v}}}", crate::export::escaped(k));
            }
            Some(FlightArg::I64(k, v)) => {
                let _ = write!(out, ",\"args\":{{\"{}\":{v}}}", crate::export::escaped(k));
            }
            Some(FlightArg::F64(k, v)) => {
                if v.is_finite() {
                    let _ = write!(out, ",\"args\":{{\"{}\":{v:?}}}", crate::export::escaped(k));
                } else {
                    let _ = write!(out, ",\"args\":{{\"{}\":null}}", crate::export::escaped(k));
                }
            }
            Some(FlightArg::Str(k, v)) => {
                let _ = write!(
                    out,
                    ",\"args\":{{\"{}\":\"{}\"}}",
                    crate::export::escaped(k),
                    crate::export::escaped(v)
                );
            }
            None => {}
        }
        out.push('}');
    }
}

impl fmt::Display for FlightEvent {
    /// Compact single-token form for status tables:
    /// `name(B)`, `name(E)`, `name[k=v]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            EventKind::Begin => write!(f, "{}(B", self.name)?,
            EventKind::End => write!(f, "{}(E", self.name)?,
            EventKind::Instant => write!(f, "{}(i", self.name)?,
        }
        match self.arg {
            Some(FlightArg::U64(k, v)) => write!(f, " {k}={v})"),
            Some(FlightArg::I64(k, v)) => write!(f, " {k}={v})"),
            Some(FlightArg::F64(k, v)) => write!(f, " {k}={v})"),
            Some(FlightArg::Str(k, v)) => write!(f, " {k}={v})"),
            None => write!(f, ")"),
        }
    }
}

/// Fixed-capacity ring: `entries[(head + i) % CAP]` for `i < len` is the
/// tail in chronological order.
struct Ring {
    entries: [FlightEvent; FLIGHT_CAPACITY],
    head: usize,
    len: usize,
}

impl Ring {
    const fn new() -> Self {
        Ring { entries: [FlightEvent::EMPTY; FLIGHT_CAPACITY], head: 0, len: 0 }
    }

    fn push(&mut self, event: FlightEvent) {
        let pos = (self.head + self.len) % FLIGHT_CAPACITY;
        self.entries[pos] = event;
        if self.len < FLIGHT_CAPACITY {
            self.len += 1;
        } else {
            self.head = (self.head + 1) % FLIGHT_CAPACITY;
        }
    }

    fn tail(&self) -> Vec<FlightEvent> {
        (0..self.len).map(|i| self.entries[(self.head + i) % FLIGHT_CAPACITY]).collect()
    }
}

/// Records one event into `track`'s ring. Never allocates; events on
/// tracks past the fixed ring table are dropped.
pub(crate) fn flight_record(
    track: u32,
    kind: EventKind,
    name: &'static str,
    arg: Option<FlightArg>,
) {
    let slot = track as usize;
    if slot >= FLIGHT_TRACKS {
        return;
    }
    let event = FlightEvent {
        seq: FLIGHT_SEQ.fetch_add(1, Ordering::Relaxed),
        track,
        kind,
        name,
        t_ns: now_ns(),
        arg,
    };
    RINGS[slot].lock().unwrap_or_else(|p| p.into_inner()).push(event);
}

/// Records an instantaneous `fault` event naming an injected-fault site
/// on the calling thread's track. Called by the fault-injection layer at
/// the moment a fault trips, so post-mortem tails name the exact site.
pub fn flight_fault(site: &'static str) {
    flight_record(current_track(), EventKind::Instant, "fault", Some(FlightArg::Str("site", site)));
}

/// Snapshots `track`'s event tail (oldest → newest). Allocates — this is
/// the post-mortem read path, not the record path.
pub fn flight_tail(track: u32) -> Vec<FlightEvent> {
    let slot = track as usize;
    if slot >= FLIGHT_TRACKS {
        return Vec::new();
    }
    RINGS[slot].lock().unwrap_or_else(|p| p.into_inner()).tail()
}

/// Snapshots the calling thread's own event tail — what the batch engine
/// attaches to a `JobError` right after catching a shard failure.
pub fn flight_tail_current() -> Vec<FlightEvent> {
    flight_tail(current_track())
}

/// Clears every ring. Called when the track table is cleared
/// ([`crate::take_trace`] / [`crate::reset`]) so reused track ids cannot
/// inherit a previous run's tail.
pub(crate) fn flight_clear() {
    for ring in &RINGS {
        let mut ring = ring.lock().unwrap_or_else(|p| p.into_inner());
        ring.head = 0;
        ring.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{set_thread_track, span, span_u64};

    #[test]
    fn ring_keeps_only_the_tail() {
        let mut ring = Ring::new();
        for i in 0..(FLIGHT_CAPACITY as u64 + 10) {
            ring.push(FlightEvent { seq: i, ..FlightEvent::EMPTY });
        }
        let tail = ring.tail();
        assert_eq!(tail.len(), FLIGHT_CAPACITY);
        assert_eq!(tail.first().unwrap().seq, 10);
        assert_eq!(tail.last().unwrap().seq, FLIGHT_CAPACITY as u64 + 9);
    }

    #[test]
    fn disabled_tracing_still_records_a_tail() {
        let _guard = crate::trace::TEST_LOCK.lock().unwrap();
        crate::set_enabled(false);
        // Runs on its own named thread so other tests' events (the
        // collector is global) cannot interleave into the ring under test.
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let id = set_thread_track("recorder-test");
                    {
                        let _outer = span("flight-outer");
                        let _inner = span_u64("flight-inner", "i", 7);
                    }
                    flight_fault("test/site");
                    let tail = flight_tail(id);
                    let names: Vec<&str> = tail.iter().map(|e| e.name).collect();
                    let outer = names.iter().position(|n| *n == "flight-outer").unwrap();
                    assert_eq!(
                        &names[outer..outer + 5],
                        &["flight-outer", "flight-inner", "flight-inner", "flight-outer", "fault"]
                    );
                    let fault = tail.last().unwrap();
                    assert_eq!(fault.arg, Some(FlightArg::Str("site", "test/site")));
                    assert_eq!(
                        tail[outer + 1].arg,
                        Some(FlightArg::U64("i", 7)),
                        "span argument survives into the ring"
                    );
                })
                .join()
                .unwrap();
        });
    }

    #[test]
    fn jsonl_line_shape() {
        let mut out = String::new();
        FlightEvent {
            seq: 3,
            track: 1,
            kind: EventKind::Instant,
            name: "fault",
            t_ns: 42,
            arg: Some(FlightArg::Str("site", "batch/shard")),
        }
        .render_jsonl_line(&mut out);
        assert_eq!(
            out,
            "{\"kind\":\"i\",\"seq\":3,\"track\":1,\"name\":\"fault\",\"t_ns\":42,\
             \"args\":{\"site\":\"batch/shard\"}}"
        );
    }
}
