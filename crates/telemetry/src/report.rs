//! Run reports and regression attribution.
//!
//! A [`RunReport`] is the structured summary of one run (or one fleet):
//! per-stage wall-clock, cache hit rate, LP emission mix, drain stats,
//! and histogram quantiles — extracted from [`MetricsFrame`]s and
//! rendered as text (the CLI `--profile` table) or JSON (the `isdc
//! report` artifact). [`attribute`] then answers "why is this run slower
//! than that one": it diffs two flat metric maps and ranks per-stage and
//! per-metric deltas by their contribution to the total wall-clock
//! delta, which is also what `bench_gate` prints when a floor fails.
//!
//! Frames arrive in two shapes and both are handled by suffix matching:
//! a list of per-point frames from a sweep (keys like `stage/solve/ns`),
//! or one fleet frame whose keys carry per-job scopes
//! (`job3/pt1/stage/solve/ns`). Counters are **summed** across frames
//! and scopes (each frame is an independent run snapshot), histogram
//! buckets likewise.

use crate::registry::{histogram_quantile, MetricValue, MetricsFrame};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Key groups that identify a metric regardless of its fleet scope
/// prefix. A key's canonical name is its suffix starting at the first
/// segment-aligned occurrence of one of these.
const GROUPS: [&str; 8] = ["stage/", "cache/", "drain/", "lp/", "run/", "solve/", "fault/", "job/"];

fn canonical(key: &str) -> Option<&str> {
    for group in GROUPS {
        if let Some(pos) = key.find(group) {
            if pos == 0 || key.as_bytes()[pos - 1] == b'/' {
                return Some(&key[pos..]);
            }
        }
    }
    None
}

/// One row of the per-stage wall-clock table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageRow {
    /// Stage name (`extract`, `solve`, ...).
    pub name: String,
    /// Total nanoseconds spent in the stage.
    pub ns: u64,
    /// Number of stage invocations.
    pub calls: u64,
}

/// Histogram quantile summary for one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantileRow {
    /// Canonical metric name (e.g. `solve/ns`).
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Estimated p50 (see [`histogram_quantile`] for the error bound).
    pub p50: u64,
    /// Estimated p95.
    pub p95: u64,
    /// Estimated p99.
    pub p99: u64,
}

/// A structured per-run (or per-fleet) report.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunReport {
    /// Per-stage wall-clock rows, descending by time.
    pub stages: Vec<StageRow>,
    /// Total scheduling wall-clock in nanoseconds: `run/total_ns` when
    /// recorded, otherwise the sum of stage times.
    pub total_ns: u64,
    /// All summed counters by canonical name (the raw material of the
    /// sections below, kept for JSON export and attribution).
    pub counters: BTreeMap<String, u64>,
    /// Histogram quantiles by canonical name.
    pub quantiles: Vec<QuantileRow>,
}

impl RunReport {
    /// Builds a report from one frame (a single run, or a fleet frame
    /// with per-job scopes).
    pub fn from_frame(frame: &MetricsFrame) -> RunReport {
        Self::from_frames([frame])
    }

    /// Builds a report from independent per-run frames (e.g. one per
    /// sweep point): counters and histogram buckets are summed.
    pub fn from_frames<'a, I>(frames: I) -> RunReport
    where
        I: IntoIterator<Item = &'a MetricsFrame>,
    {
        let mut counters: BTreeMap<String, u64> = BTreeMap::new();
        let mut histograms: BTreeMap<String, Vec<u64>> = BTreeMap::new();
        for frame in frames {
            for (key, value) in &frame.metrics {
                let Some(name) = canonical(key) else { continue };
                match value {
                    MetricValue::Counter(v) => *counters.entry(name.to_string()).or_insert(0) += v,
                    MetricValue::Histogram(buckets) => {
                        let acc = histograms.entry(name.to_string()).or_default();
                        if acc.len() < buckets.len() {
                            acc.resize(buckets.len(), 0);
                        }
                        for (a, b) in acc.iter_mut().zip(buckets) {
                            *a += b;
                        }
                    }
                    MetricValue::Gauge(_) => {}
                }
            }
        }

        let mut stages: Vec<StageRow> = Vec::new();
        for (key, &ns) in &counters {
            if let Some(name) = key.strip_prefix("stage/").and_then(|r| r.strip_suffix("/ns")) {
                let calls = counters.get(&format!("stage/{name}/calls")).copied().unwrap_or(0);
                stages.push(StageRow { name: name.to_string(), ns, calls });
            }
        }
        stages.sort_by(|a, b| b.ns.cmp(&a.ns).then_with(|| a.name.cmp(&b.name)));

        let total_ns = match counters.get("run/total_ns") {
            Some(&t) if t > 0 => t,
            _ => stages.iter().map(|s| s.ns).sum(),
        };

        let quantiles = histograms
            .iter()
            .filter_map(|(name, buckets)| {
                let count: u64 = buckets.iter().sum();
                Some(QuantileRow {
                    name: name.clone(),
                    count,
                    p50: histogram_quantile(buckets, 0.50)?,
                    p95: histogram_quantile(buckets, 0.95)?,
                    p99: histogram_quantile(buckets, 0.99)?,
                })
            })
            .collect();

        RunReport { stages, total_ns, counters, quantiles }
    }

    fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Cache hit rate in `[0, 1]`, or `None` when no lookups happened.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits = self.counter("cache/hits");
        let total = hits + self.counter("cache/misses");
        if total == 0 {
            None
        } else {
            Some(hits as f64 / total as f64)
        }
    }

    /// Renders the human-readable report (the `--profile` table).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile: total {} | iterations {} | subgraphs {}",
            fmt_ns(self.total_ns),
            self.counter("run/iterations"),
            self.counter("run/subgraphs_evaluated"),
        );
        if !self.stages.is_empty() {
            let _ = writeln!(out, "  {:<14} {:>12} {:>7} {:>9}", "stage", "time", "%", "calls");
            for s in &self.stages {
                let pct = if self.total_ns > 0 {
                    100.0 * s.ns as f64 / self.total_ns as f64
                } else {
                    0.0
                };
                let _ = writeln!(
                    out,
                    "  {:<14} {:>12} {:>6.1}% {:>9}",
                    s.name,
                    fmt_ns(s.ns),
                    pct,
                    s.calls
                );
            }
        }
        let _ = write!(
            out,
            "  cache: hits {} misses {} inserts {}",
            self.counter("cache/hits"),
            self.counter("cache/misses"),
            self.counter("cache/inserts"),
        );
        match self.cache_hit_rate() {
            Some(rate) => {
                let _ = writeln!(out, " (hit rate {:.1}%)", 100.0 * rate);
            }
            None => {
                let _ = writeln!(out);
            }
        }
        let _ = writeln!(
            out,
            "  lp: pairs_scanned {} emitted {} dominance_pruned {} bucket_deduped {}",
            self.counter("lp/pairs_scanned"),
            self.counter("lp/constraints_emitted"),
            self.counter("lp/dominance_pruned"),
            self.counter("lp/bucket_deduped"),
        );
        let _ = writeln!(
            out,
            "  drain: dijkstras {} paths {} nodes_settled {} flow_pushed {}",
            self.counter("drain/dijkstras"),
            self.counter("drain/paths"),
            self.counter("drain/nodes_settled"),
            self.counter("drain/flow_pushed"),
        );
        for q in &self.quantiles {
            let _ = writeln!(
                out,
                "  {}: n {} p50 {} p95 {} p99 {}",
                q.name,
                q.count,
                fmt_ns(q.p50),
                fmt_ns(q.p95),
                fmt_ns(q.p99),
            );
        }
        out
    }

    /// Renders the report as a JSON object (one `isdc report` artifact).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"kind\": \"isdc_report\",\n");
        let _ = writeln!(out, "  \"total_ns\": {},", self.total_ns);
        out.push_str("  \"stages\": [");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"ns\": {}, \"calls\": {}}}",
                crate::export::escaped(&s.name),
                s.ns,
                s.calls
            );
        }
        out.push_str("\n  ],\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{}\": {v}", crate::export::escaped(name));
        }
        out.push_str("\n  },\n  \"quantiles\": [");
        for (i, q) in self.quantiles.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"name\": \"{}\", \"count\": {}, \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                crate::export::escaped(&q.name),
                q.count,
                q.p50,
                q.p95,
                q.p99
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Formats nanoseconds with a readable unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// One ranked row of a regression attribution.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionRow {
    /// Flat metric key (e.g. `stage/solve/ns`, `cache/hits`).
    pub key: String,
    /// Baseline value.
    pub old: f64,
    /// Current value.
    pub new: f64,
    /// `new - old`.
    pub delta: f64,
    /// For wall-clock keys: this key's fraction of the total wall-clock
    /// delta (signed; can exceed 1 when other keys moved the other
    /// way). `None` for non-time metrics, which are ranked by relative
    /// change instead.
    pub share: Option<f64>,
}

/// Whether a flat key measures wall-clock nanoseconds (contributes to
/// the total-delta denominator). Only `ns` keys qualify so the
/// denominator never mixes units; a bare `ends_with("ns")` would also
/// match keys like `run/iterations`.
fn is_time_key(key: &str) -> bool {
    let last = key.rsplit('/').next().unwrap_or(key);
    last == "ns" || last.ends_with("_ns")
}

/// Whether a time key is a per-component contributor rather than an
/// aggregate total (totals are excluded from the denominator fallback so
/// components are not double counted).
fn is_component_time_key(key: &str) -> bool {
    is_time_key(key) && !key.rsplit('/').next().unwrap_or(key).contains("total")
}

/// Diffs two flat metric maps (`key → value`) and ranks the deltas by
/// contribution to the total wall-clock delta.
///
/// The total is taken from a key whose leaf contains `total` and ends in
/// a time suffix when both maps carry one (preferring `total_ns`);
/// otherwise it is the summed delta of all component time keys.
/// Wall-clock keys are ranked first, by absolute delta; other metrics
/// follow, ranked by relative change. Keys present in only one map
/// contribute with the missing side as 0.
///
/// Returns `(total_wall_clock_delta_ns_like, ranked_rows)`.
pub fn attribute(
    old: &BTreeMap<String, f64>,
    new: &BTreeMap<String, f64>,
) -> (f64, Vec<AttributionRow>) {
    let mut keys: Vec<&String> = old.keys().chain(new.keys()).collect();
    keys.sort();
    keys.dedup();

    let total_key = {
        let mut candidates: Vec<&String> = keys
            .iter()
            .copied()
            .filter(|k| {
                is_time_key(k)
                    && k.rsplit('/').next().unwrap_or(k).contains("total")
                    && old.contains_key(*k)
                    && new.contains_key(*k)
            })
            .collect();
        // Prefer the shortest (least scoped) total, then `_ns` totals.
        candidates.sort_by_key(|k| (k.len(), !k.ends_with("ns")));
        candidates.first().copied()
    };
    let total_delta = match total_key {
        Some(k) => new[k] - old[k],
        None => keys
            .iter()
            .filter(|k| is_component_time_key(k))
            .map(|k| new.get(*k).copied().unwrap_or(0.0) - old.get(*k).copied().unwrap_or(0.0))
            .sum(),
    };

    let mut rows: Vec<AttributionRow> = keys
        .into_iter()
        .map(|key| {
            let o = old.get(key).copied().unwrap_or(0.0);
            let n = new.get(key).copied().unwrap_or(0.0);
            let delta = n - o;
            let share = if is_time_key(key) && total_delta != 0.0 {
                Some(delta / total_delta)
            } else if is_time_key(key) {
                Some(0.0)
            } else {
                None
            };
            AttributionRow { key: key.clone(), old: o, new: n, delta, share }
        })
        .filter(|row| row.delta != 0.0)
        .collect();
    rows.sort_by(|a, b| {
        let rank = |r: &AttributionRow| if r.share.is_some() { 0u8 } else { 1u8 };
        rank(a).cmp(&rank(b)).then_with(|| {
            let weight = |r: &AttributionRow| {
                if r.share.is_some() {
                    r.delta.abs()
                } else {
                    r.delta.abs() / r.old.abs().max(1.0)
                }
            };
            weight(b).partial_cmp(&weight(a)).unwrap_or(std::cmp::Ordering::Equal)
        })
    });
    (total_delta, rows)
}

/// Renders an attribution as a ranked text table (what `isdc report
/// --baseline` prints, and what `bench_gate` prints on a red floor).
pub fn render_attribution(total_delta: f64, rows: &[AttributionRow], limit: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "attribution: total wall-clock delta {}{}",
        if total_delta >= 0.0 { "+" } else { "-" },
        fmt_ns(total_delta.abs() as u64)
    );
    if rows.is_empty() {
        let _ = writeln!(out, "  (no metric moved)");
        return out;
    }
    for row in rows.iter().take(limit) {
        match row.share {
            Some(share) => {
                let _ = writeln!(
                    out,
                    "  {:<32} {:>12} -> {:>12}  {}{:<12} {:>6.1}% of delta",
                    row.key,
                    fmt_ns(row.old as u64),
                    fmt_ns(row.new as u64),
                    if row.delta >= 0.0 { "+" } else { "-" },
                    fmt_ns(row.delta.abs() as u64),
                    100.0 * share,
                );
            }
            None => {
                let rel = 100.0 * row.delta / row.old.abs().max(1.0);
                let _ = writeln!(
                    out,
                    "  {:<32} {:>12} -> {:>12}  ({rel:+.1}%)",
                    row.key, row.old, row.new,
                );
            }
        }
    }
    if rows.len() > limit {
        let _ = writeln!(out, "  ... {} more unchanged-or-smaller deltas", rows.len() - limit);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(entries: &[(&str, u64)]) -> MetricsFrame {
        let mut f = MetricsFrame::new();
        for (k, v) in entries {
            f.insert(*k, MetricValue::Counter(*v));
        }
        f
    }

    #[test]
    fn report_sums_counters_across_frames_and_scopes() {
        let a = frame(&[
            ("stage/solve/ns", 800),
            ("stage/solve/calls", 2),
            ("cache/hits", 3),
            ("run/total_ns", 1000),
        ]);
        // A fleet-scoped frame: the same canonical keys under job/pt.
        let b = frame(&[
            ("job0/pt1/stage/solve/ns", 200),
            ("job0/pt1/stage/solve/calls", 1),
            ("job0/pt1/cache/hits", 1),
            ("job0/pt1/cache/misses", 4),
            ("job0/pt1/run/total_ns", 500),
        ]);
        let report = RunReport::from_frames(&[a, b]);
        assert_eq!(report.total_ns, 1500);
        assert_eq!(report.stages, vec![StageRow { name: "solve".into(), ns: 1000, calls: 3 }]);
        assert_eq!(report.counter("cache/hits"), 4);
        assert!((report.cache_hit_rate().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn report_joins_histograms_and_estimates_quantiles() {
        let mut a = MetricsFrame::new();
        let mut buckets = vec![0u64; crate::HISTOGRAM_BUCKETS];
        buckets[4] = 10; // ten samples in [8, 16)
        a.insert("solve/ns", MetricValue::Histogram(buckets.clone()));
        let mut b = MetricsFrame::new();
        b.insert("job1/pt0/solve/ns", MetricValue::Histogram(buckets));
        let report = RunReport::from_frames(&[a, b]);
        assert_eq!(report.quantiles.len(), 1);
        let q = &report.quantiles[0];
        assert_eq!((q.name.as_str(), q.count), ("solve/ns", 20));
        assert_eq!((q.p50, q.p95, q.p99), (8, 8, 8));
    }

    #[test]
    fn text_and_json_renders_contain_the_sections() {
        let report = RunReport::from_frame(&frame(&[
            ("stage/extract/ns", 250),
            ("stage/extract/calls", 5),
            ("run/iterations", 5),
        ]));
        let text = report.render_text();
        assert!(text.contains("stage"));
        assert!(text.contains("extract"));
        assert!(text.contains("lp:"));
        assert!(text.contains("drain:"));
        let json = report.render_json();
        assert!(json.contains("\"kind\": \"isdc_report\""));
        assert!(json.contains("\"stage/extract/ns\": 250"));
    }

    #[test]
    fn attribution_ranks_by_contribution_to_wall_clock_delta() {
        let mut old = BTreeMap::new();
        let mut new = BTreeMap::new();
        old.insert("total_ns".to_string(), 1000.0);
        new.insert("total_ns".to_string(), 2000.0);
        old.insert("stage/solve/ns".to_string(), 600.0);
        new.insert("stage/solve/ns".to_string(), 1500.0);
        old.insert("stage/extract/ns".to_string(), 400.0);
        new.insert("stage/extract/ns".to_string(), 500.0);
        old.insert("cache/hits".to_string(), 100.0);
        new.insert("cache/hits".to_string(), 10.0);

        let (total, rows) = attribute(&old, &new);
        assert_eq!(total, 1000.0);
        // total_ns itself is a time key and ranks first (|delta| 1000),
        // then solve (900, 90% of the delta), then extract.
        let keys: Vec<&str> = rows.iter().map(|r| r.key.as_str()).collect();
        assert_eq!(keys, vec!["total_ns", "stage/solve/ns", "stage/extract/ns", "cache/hits"]);
        let solve = &rows[1];
        assert!((solve.share.unwrap() - 0.9).abs() < 1e-12);
        assert!(rows[3].share.is_none(), "counters carry no wall-clock share");

        let text = render_attribution(total, &rows, 10);
        assert!(text.contains("stage/solve/ns"));
        assert!(text.contains("90.0% of delta"));
    }

    #[test]
    fn attribution_without_a_total_key_sums_component_time_keys() {
        let mut old = BTreeMap::new();
        let mut new = BTreeMap::new();
        old.insert("stage/solve/ns".to_string(), 100.0);
        new.insert("stage/solve/ns".to_string(), 300.0);
        old.insert("stage/feedback/ns".to_string(), 50.0);
        new.insert("stage/feedback/ns".to_string(), 50.0);
        let (total, rows) = attribute(&old, &new);
        assert_eq!(total, 200.0);
        assert_eq!(rows.len(), 1, "unchanged keys are dropped");
        assert_eq!(rows[0].key, "stage/solve/ns");
        assert!((rows[0].share.unwrap() - 1.0).abs() < 1e-12);
    }
}
