//! # isdc-telemetry — unified observability for the ISDC workspace
//!
//! One coherent layer replacing the scattered counters that used to live
//! in four crates: hierarchical **spans** (`session → run → iteration →
//! stage → solver drain phase`) recorded into a sharded, thread-safe
//! event buffer; a **metrics registry** of counters, gauges and
//! histograms whose snapshots merge with a deterministic, commutative,
//! associative and idempotent join (the same contract as
//! `DelayCache::merge`, so batch workers record locally and the
//! aggregator folds fleet totals bit-deterministically); and
//! **exporters** to JSON-lines and Chrome `trace_event` format (loadable
//! in [Perfetto](https://ui.perfetto.dev) or `chrome://tracing`).
//!
//! Tracing is globally off by default. When disabled, the span hot path
//! records nothing into the trace buffers — only a fixed-size entry into
//! the always-on **flight recorder** (a bounded per-track ring of the
//! most recent events, the post-mortem tail attached to batch
//! `JobError`s) — no allocation, no unbounded growth, so instrumented
//! code pays almost nothing in production runs (the overhead-guard test
//! in `tests/overhead.rs` enforces the budget). Enable with
//! [`set_enabled`]; spans are scoped guards, so they cannot be left
//! unbalanced even on early return:
//!
//! ```
//! isdc_telemetry::set_enabled(true);
//! {
//!     let _run = isdc_telemetry::span("run");
//!     let _iter = isdc_telemetry::span_u64("iteration", "i", 0);
//! } // guards close in reverse order
//! let trace = isdc_telemetry::take_trace();
//! isdc_telemetry::set_enabled(false);
//! assert!(trace.validate().is_ok());
//! ```
#![warn(missing_docs)]

mod check;
mod export;
mod recorder;
mod registry;
mod report;
mod trace;

pub use check::{validate_events, TraceError, TraceSummary};
pub use export::{parse_jsonl, render_chrome_trace, render_jsonl, OwnedArg, OwnedEvent};
pub use recorder::{
    flight_fault, flight_tail, flight_tail_current, FlightArg, FlightEvent, FLIGHT_CAPACITY,
};
pub use registry::{
    histogram_quantile, Counter, Gauge, Histogram, MetricKind, MetricValue, MetricsFrame, Registry,
    HISTOGRAM_BUCKETS,
};
pub use report::{attribute, render_attribution, AttributionRow, QuantileRow, RunReport, StageRow};
pub use trace::{
    enabled, now_ns, reset, set_enabled, set_thread_track, span, span_f64, span_str, span_u64,
    take_trace, ArgValue, Event, EventKind, SpanGuard, Trace,
};
