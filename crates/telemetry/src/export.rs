//! Trace exporters and the JSONL re-importer.
//!
//! Two on-disk formats, both hand-rolled (this crate has zero deps):
//!
//! - **JSON-lines** ([`render_jsonl`]): one event per line, preceded by
//!   one `track` metadata line per registered track. Round-trippable via
//!   [`parse_jsonl`], which is what `isdc-cli trace check` uses.
//! - **Chrome `trace_event`** ([`render_chrome_trace`]): the JSON-array
//!   form understood by [Perfetto](https://ui.perfetto.dev) and
//!   `chrome://tracing`. Tracks map to threads (`tid`), so each batch
//!   worker renders as its own named row.

use crate::trace::{ArgValue, EventKind, Trace};

fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_str_value(out: &mut String, s: &str) {
    out.push('"');
    escape_json(s, out);
    out.push('"');
}

/// Allocating form of [`escape_json`], shared with the flight recorder's
/// and run report's line renderers.
pub(crate) fn escaped(s: &str) -> String {
    let mut out = String::new();
    escape_json(s, &mut out);
    out
}

fn push_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => out.push_str(&n.to_string()),
        ArgValue::I64(n) => out.push_str(&n.to_string()),
        // Debug formatting keeps a trailing `.0` on integral floats so a
        // re-read classifies them as floats again (still valid JSON).
        ArgValue::F64(x) if x.is_finite() => out.push_str(&format!("{x:?}")),
        ArgValue::F64(_) => out.push_str("null"),
        ArgValue::Str(s) => push_str_value(out, s),
    }
}

fn push_args(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_value(out, k);
        out.push(':');
        push_arg_value(out, v);
    }
    out.push('}');
}

fn kind_code(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Begin => "B",
        EventKind::End => "E",
        EventKind::Instant => "i",
    }
}

/// Renders a trace as JSON-lines: first one `{"kind":"track",...}` line
/// per registered track, then one line per event in sequence order.
pub fn render_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for (id, name) in trace.tracks.iter().enumerate() {
        out.push_str(&format!("{{\"kind\":\"track\",\"track\":{id},\"name\":"));
        push_str_value(&mut out, name);
        out.push_str("}\n");
    }
    for e in &trace.events {
        out.push_str(&format!(
            "{{\"kind\":\"{}\",\"seq\":{},\"track\":{},\"name\":",
            kind_code(e.kind),
            e.seq,
            e.track
        ));
        push_str_value(&mut out, e.name);
        out.push_str(&format!(",\"t_ns\":{}", e.t_ns));
        if !e.args.is_empty() {
            out.push_str(",\"args\":");
            push_args(&mut out, &e.args);
        }
        out.push_str("}\n");
    }
    out
}

/// Renders a trace in Chrome `trace_event` JSON-array format. Load the
/// file in Perfetto or `chrome://tracing`; each track appears as a
/// named thread under one `isdc` process, and span arguments show in
/// the selection panel. Timestamps are microseconds with nanosecond
/// fraction preserved.
pub fn render_chrome_trace(trace: &Trace) -> String {
    let mut out = String::from("[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"isdc\"}}",
    );
    for (id, name) in trace.tracks.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{id},\"name\":\"thread_name\",\"args\":{{\"name\":"
        ));
        push_str_value(&mut out, name);
        out.push_str("}}");
    }
    for e in &trace.events {
        let ts_us = e.t_ns as f64 / 1000.0;
        out.push_str(&format!(
            ",\n{{\"ph\":\"{}\",\"pid\":1,\"tid\":{},\"ts\":{ts_us:.3},\"name\":",
            kind_code(e.kind),
            e.track
        ));
        push_str_value(&mut out, e.name);
        // Instant events need a scope; "t" (thread) keeps them on their
        // track's row in Perfetto.
        if e.kind == EventKind::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":");
            push_args(&mut out, &e.args);
        }
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

/// An argument value re-read from a JSONL trace file. JSON numbers do
/// not carry their Rust source type, so integers are normalized: a
/// number that fits `u64` parses as [`OwnedArg::U64`], a negative
/// integer as [`OwnedArg::I64`], anything else as [`OwnedArg::F64`].
/// Non-finite floats render as `null` and re-read as [`OwnedArg::Null`].
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedArg {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Fractional, exponent-form, or out-of-integer-range number.
    F64(f64),
    /// String argument.
    Str(String),
    /// JSON `null` (a non-finite float was rendered).
    Null,
}

impl OwnedArg {
    /// Classifies a JSON number from its raw text, mirroring how
    /// [`render_jsonl`] prints the typed [`ArgValue`]s.
    fn classify(raw: &str, value: f64) -> OwnedArg {
        if let Ok(n) = raw.parse::<u64>() {
            OwnedArg::U64(n)
        } else if let Ok(n) = raw.parse::<i64>() {
            OwnedArg::I64(n)
        } else {
            OwnedArg::F64(value)
        }
    }
}

/// An event re-read from a JSONL trace file (names and arguments owned).
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// Global sequence number.
    pub seq: u64,
    /// Track id.
    pub track: u32,
    /// Begin / End / Instant.
    pub kind: EventKind,
    /// Span name.
    pub name: String,
    /// Nanoseconds since the trace epoch.
    pub t_ns: u64,
    /// Key/value arguments (empty when the line had none).
    pub args: Vec<(String, OwnedArg)>,
}

// ---------------------------------------------------------------------
// Minimal JSON value parser for re-reading our own JSONL output. Not a
// general-purpose parser: enough of RFC 8259 to round-trip what
// render_jsonl emits, with clear errors on anything malformed.

enum Json {
    Obj(Vec<(String, Json)>),
    // Array payloads are only traversed by tests (the chrome-trace
    // self-check); JSONL lines are all objects.
    Arr(#[allow(dead_code)] Vec<Json>),
    Str(String),
    // Numbers keep their raw text so argument values can be re-typed
    // (u64 vs i64 vs f64) without precision loss.
    Num(f64, String),
    // Booleans/nulls are parsed for completeness but nothing in the
    // trace schema reads their payload.
    Bool(#[allow(dead_code)] bool),
    Null,
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(_, raw) => raw.parse::<u64>().ok(),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(|v| Json::Num(v, text.to_string()))
            .map_err(|_| self.err("bad number"))
    }

    fn finish(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(self.err("trailing garbage"))
        }
    }
}

/// Parses a JSONL trace file produced by [`render_jsonl`] back into
/// events and the track-name table. Returns a line-tagged error for
/// anything malformed.
pub fn parse_jsonl(text: &str) -> Result<(Vec<OwnedEvent>, Vec<String>), String> {
    let mut events = Vec::new();
    let mut tracks: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parser = Parser::new(line);
        let value = parser
            .value()
            .and_then(|v| parser.finish().map(|()| v))
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {}: missing \"kind\"", lineno + 1))?;
        match kind {
            "track" => {
                let id = value
                    .get("track")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("line {}: track line missing id", lineno + 1))?
                    as usize;
                let name = value
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("line {}: track line missing name", lineno + 1))?;
                if tracks.len() <= id {
                    tracks.resize(id + 1, String::new());
                }
                tracks[id] = name.to_string();
            }
            "B" | "E" | "i" => {
                let event_kind = match kind {
                    "B" => EventKind::Begin,
                    "E" => EventKind::End,
                    _ => EventKind::Instant,
                };
                let field = |key: &str| {
                    value
                        .get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("line {}: missing \"{key}\"", lineno + 1))
                };
                let mut args = Vec::new();
                match value.get("args") {
                    None => {}
                    Some(Json::Obj(fields)) => {
                        for (key, v) in fields {
                            let arg = match v {
                                Json::Str(s) => OwnedArg::Str(s.clone()),
                                Json::Num(x, raw) => OwnedArg::classify(raw, *x),
                                Json::Null => OwnedArg::Null,
                                _ => {
                                    return Err(format!(
                                        "line {}: unsupported arg value for \"{key}\"",
                                        lineno + 1
                                    ))
                                }
                            };
                            args.push((key.clone(), arg));
                        }
                    }
                    Some(_) => {
                        return Err(format!("line {}: \"args\" must be an object", lineno + 1))
                    }
                }
                events.push(OwnedEvent {
                    seq: field("seq")?,
                    track: field("track")? as u32,
                    kind: event_kind,
                    name: value
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| format!("line {}: missing \"name\"", lineno + 1))?
                        .to_string(),
                    t_ns: field("t_ns")?,
                    args,
                });
            }
            other => {
                return Err(format!("line {}: unknown event kind {other:?}", lineno + 1));
            }
        }
    }
    events.sort_by_key(|e| e.seq);
    Ok((events, tracks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Event;

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                Event {
                    seq: 0,
                    track: 0,
                    kind: EventKind::Begin,
                    name: "run",
                    t_ns: 1000,
                    args: vec![
                        ("clock_ps", ArgValue::F64(2500.0)),
                        ("design", ArgValue::Str("crc\"32".into())),
                    ],
                },
                Event {
                    seq: 1,
                    track: 0,
                    kind: EventKind::Instant,
                    name: "mark",
                    t_ns: 1500,
                    args: vec![("n", ArgValue::U64(7))],
                },
                Event {
                    seq: 2,
                    track: 0,
                    kind: EventKind::End,
                    name: "run",
                    t_ns: 2000,
                    args: vec![],
                },
            ],
            tracks: vec!["main".into()],
        }
    }

    #[test]
    fn jsonl_round_trips() {
        let trace = sample_trace();
        let text = render_jsonl(&trace);
        let (events, tracks) = parse_jsonl(&text).expect("own output parses");
        assert_eq!(tracks, vec!["main".to_string()]);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].name, "run");
        assert_eq!(events[0].kind, EventKind::Begin);
        assert_eq!(events[2].kind, EventKind::End);
        assert_eq!(events[1].t_ns, 1500);
        assert_eq!(
            events[0].args,
            vec![
                ("clock_ps".to_string(), OwnedArg::F64(2500.0)),
                ("design".to_string(), OwnedArg::Str("crc\"32".to_string())),
            ]
        );
        assert_eq!(events[1].args, vec![("n".to_string(), OwnedArg::U64(7))]);
        assert!(events[2].args.is_empty());
        crate::validate_events(events.iter().map(|e| (e.track, e.kind, e.name.as_str(), e.t_ns)))
            .expect("round-tripped trace is well-formed");
    }

    #[test]
    fn chrome_trace_is_loadable_json() {
        let trace = sample_trace();
        let text = render_chrome_trace(&trace);
        // Parse with our own JSON parser: array of objects, metadata
        // first, microsecond timestamps.
        let mut parser = Parser::new(&text);
        let value = parser.value().and_then(|v| parser.finish().map(|()| v)).expect("valid JSON");
        let Json::Arr(items) = value else { panic!("chrome trace must be a JSON array") };
        assert_eq!(items.len(), 2 + 3, "process meta + thread meta + 3 events");
        assert_eq!(items[0].get("ph").and_then(Json::as_str), Some("M"));
        let begin = &items[2];
        assert_eq!(begin.get("ph").and_then(Json::as_str), Some("B"));
        match begin.get("ts") {
            Some(Json::Num(ts, _)) => assert!((ts - 1.0).abs() < 1e-9, "1000ns = 1.0us"),
            _ => panic!("ts missing"),
        }
        assert!(begin.get("args").is_some());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_jsonl("{\"kind\":\"B\"}").is_err());
        assert!(parse_jsonl("not json").is_err());
        assert!(parse_jsonl("{\"kind\":\"Z\",\"seq\":0}").is_err());
    }
}
