//! Static timing analysis over mapped AIGs.
//!
//! Plays the OpenSTA role in the paper's flow. Every AND node maps to a
//! NAND2 cell of the technology library (complemented edges are absorbed by
//! bubble pushing, the standard assumption for NAND-based mapping), and
//! arrival times propagate topologically with the library's linear
//! fanout-load model.

use isdc_netlist::{Aig, AigNode};
use isdc_techlib::{GateKind, Picos, TechLibrary};

/// The result of timing one netlist.
#[derive(Clone, Debug, PartialEq)]
pub struct TimingReport {
    /// Worst arrival time over all outputs, in picoseconds.
    pub critical_path_ps: Picos,
    /// Arrival time of each output, in output order.
    pub output_arrivals_ps: Vec<Picos>,
    /// AND-node count of the timed netlist.
    pub and_count: usize,
    /// AND-depth of the timed netlist.
    pub depth: u32,
}

/// Computes arrival times for every node and a [`TimingReport`].
///
/// Inputs arrive at time zero. Each AND node adds one NAND2 delay scaled by
/// its fanout. A netlist whose outputs are all inputs or constants reports a
/// zero-delay critical path.
///
/// # Examples
///
/// ```
/// use isdc_netlist::Aig;
/// use isdc_synth::sta::analyze;
/// use isdc_techlib::TechLibrary;
///
/// let mut aig = Aig::new();
/// let a = aig.input();
/// let b = aig.input();
/// let x = aig.and(a, b);
/// aig.push_output(x);
/// let report = analyze(&aig, &TechLibrary::sky130());
/// assert!(report.critical_path_ps > 0.0);
/// assert_eq!(report.depth, 1);
/// ```
pub fn analyze(aig: &Aig, lib: &TechLibrary) -> TimingReport {
    let fanouts = aig.fanouts();
    let nodes = aig.nodes();
    let mut arrival: Vec<Picos> = vec![0.0; nodes.len()];
    let mut and_count = 0usize;
    for (i, node) in nodes.iter().enumerate() {
        match node {
            AigNode::Input(_) => {
                // Whatever drives this input (a register Q pin or an
                // upstream gate) pays for its load; model that as the
                // *excess* buffer delay over a fanout-1 drive so unloaded
                // wires stay at time zero. Charging inputs keeps isolated
                // per-op characterization consistent with fused subgraph
                // evaluation — both see the same load on high-fanout nets.
                let f = fanouts[i] as usize;
                arrival[i] = lib.gate_delay(GateKind::Buf, f) - lib.gate_delay(GateKind::Buf, 1);
            }
            AigNode::And(a, b) => {
                and_count += 1;
                let input_arrival = arrival[a.node() as usize].max(arrival[b.node() as usize]);
                arrival[i] = input_arrival + lib.gate_delay(GateKind::Nand2, fanouts[i] as usize);
            }
            AigNode::Const => {}
        }
    }
    let output_arrivals_ps: Vec<Picos> =
        aig.outputs().iter().map(|l| arrival[l.node() as usize]).collect();
    let critical_path_ps = output_arrivals_ps.iter().copied().fold(0.0, f64::max);
    TimingReport { critical_path_ps, output_arrivals_ps, and_count, depth: aig.depth() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_netlist::AigLit;

    #[test]
    fn empty_netlist_has_zero_delay() {
        let mut aig = Aig::new();
        let a = aig.input();
        aig.push_output(a);
        aig.push_output(AigLit::TRUE);
        let r = analyze(&aig, &TechLibrary::sky130());
        assert_eq!(r.critical_path_ps, 0.0);
        assert_eq!(r.and_count, 0);
        assert_eq!(r.output_arrivals_ps, vec![0.0, 0.0]);
    }

    #[test]
    fn chain_delay_accumulates() {
        let lib = TechLibrary::uniform(10.0);
        let mut aig = Aig::new();
        let mut acc = aig.input();
        for _ in 0..5 {
            let b = aig.input();
            acc = aig.and(acc, b);
        }
        aig.push_output(acc);
        let r = analyze(&aig, &lib);
        assert_eq!(r.depth, 5);
        assert!((r.critical_path_ps - 50.0).abs() < 1e-9);
    }

    #[test]
    fn fanout_load_increases_delay() {
        let lib = TechLibrary::sky130();
        // One AND driving three consumers vs driving one.
        let build = |extra_consumers: usize| {
            let mut aig = Aig::new();
            let a = aig.input();
            let b = aig.input();
            let x = aig.and(a, b);
            let c = aig.input();
            let y = aig.and(x, c);
            aig.push_output(y);
            for k in 0..extra_consumers {
                let e = aig.input();
                let _ = k;
                let z = aig.and(x, e);
                aig.push_output(z);
            }
            analyze(&aig, &lib).critical_path_ps
        };
        assert!(build(3) > build(0));
    }

    #[test]
    fn complemented_edges_are_free() {
        let lib = TechLibrary::uniform(10.0);
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.and(a, b);
        aig.push_output(x.not());
        let r = analyze(&aig, &lib);
        assert!((r.critical_path_ps - 10.0).abs() < 1e-9);
    }

    #[test]
    fn high_fanout_inputs_pay_driver_load() {
        let lib = TechLibrary::sky130();
        // One input fanning out to many gates vs a single gate: the fanned
        // version must include the virtual driver's buffer-tree penalty.
        let build = |consumers: usize| {
            let mut aig = Aig::new();
            let s = aig.input();
            for _ in 0..consumers {
                let x = aig.input();
                let y = aig.and(s, x);
                aig.push_output(y);
            }
            analyze(&aig, &lib).critical_path_ps
        };
        assert!(build(64) > build(1), "64-way selector load must cost time");
    }

    #[test]
    fn report_counts_match_netlist() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor(a, b); // three ANDs, depth 2
        aig.push_output(x);
        let r = analyze(&aig, &TechLibrary::sky130());
        assert_eq!(r.and_count, 3);
        assert_eq!(r.depth, 2);
    }
}
