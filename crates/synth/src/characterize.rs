//! Per-operation delay pre-characterization.
//!
//! HLS schedulers estimate path delays by summing per-op delays that were
//! characterized *in isolation* through the downstream flow. This module
//! reproduces that methodology against our synthesis simulator: each
//! `(op kind, operand widths)` signature is lowered alone, optimized with the
//! default script, timed with STA, and cached.
//!
//! Because the same downstream model later times whole subgraphs, the
//! naive estimate and the feedback are mutually consistent — exactly the
//! setup of the paper — and the gap between them (path correlation, cross-op
//! sharing, rebalancing) is what ISDC's iterations harvest.

use crate::passes::SynthScript;
use crate::sta;
use isdc_ir::{Graph, Node, NodeId, OpKind};
use isdc_netlist::lower_graph;
use isdc_techlib::{Picos, TechLibrary};
use std::collections::HashMap;
use std::sync::RwLock;

/// A cache key: the op mnemonic with embedded attributes, plus operand widths.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct OpSignature {
    kind: String,
    operand_widths: Vec<u32>,
}

impl OpSignature {
    fn of(node: &Node, operand_widths: Vec<u32>) -> Self {
        // Attribute-carrying kinds fold their attributes into the key.
        let kind = match &node.kind {
            OpKind::BitSlice { start, width } => format!("bit_slice[{start},{width}]"),
            OpKind::ZeroExt { new_width } => format!("zero_ext[{new_width}]"),
            OpKind::SignExt { new_width } => format!("sign_ext[{new_width}]"),
            other => other.mnemonic().to_string(),
        };
        Self { kind, operand_widths }
    }
}

/// Pre-characterized per-operation delays.
///
/// Thread-safe: characterization results are cached behind a reader-writer
/// lock so a model shared across parallel subgraph evaluations serves the
/// read-mostly hot path without serializing readers.
///
/// # Examples
///
/// ```
/// use isdc_ir::{Graph, OpKind};
/// use isdc_synth::OpDelayModel;
/// use isdc_techlib::TechLibrary;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let model = OpDelayModel::new(TechLibrary::sky130());
/// let mut g = Graph::new("t");
/// let a = g.param("a", 32);
/// let b = g.param("b", 32);
/// let add = g.binary(OpKind::Add, a, b)?;
/// let mul = g.binary(OpKind::Mul, a, b)?;
/// g.set_output(mul);
/// assert!(model.node_delay(&g, mul) > model.node_delay(&g, add));
/// assert_eq!(model.node_delay(&g, a), 0.0); // params are free
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct OpDelayModel {
    lib: TechLibrary,
    script: SynthScript,
    cache: RwLock<HashMap<OpSignature, Picos>>,
}

impl OpDelayModel {
    /// Creates a model characterizing against `lib` with the default
    /// synthesis script.
    pub fn new(lib: TechLibrary) -> Self {
        Self::with_script(lib, SynthScript::resyn())
    }

    /// Creates a model with an explicit synthesis script.
    pub fn with_script(lib: TechLibrary, script: SynthScript) -> Self {
        Self { lib, script, cache: RwLock::new(HashMap::new()) }
    }

    /// The technology library this model characterizes against.
    pub fn library(&self) -> &TechLibrary {
        &self.lib
    }

    /// The synthesis script used during characterization.
    pub fn script(&self) -> &SynthScript {
        &self.script
    }

    /// The characterized delay of `node` within `graph`, in picoseconds.
    ///
    /// Free (pure wiring) ops and params report zero.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for `graph`.
    pub fn node_delay(&self, graph: &Graph, id: NodeId) -> Picos {
        let node = graph.node(id);
        if node.kind.is_free() {
            return 0.0;
        }
        let operand_widths: Vec<u32> = node.operands.iter().map(|&o| graph.node(o).width).collect();
        let sig = OpSignature::of(node, operand_widths.clone());
        if let Some(&d) = self.cache.read().expect("cache lock poisoned").get(&sig) {
            return d;
        }
        // Characterize outside the lock: concurrent misses on the same
        // signature may duplicate work, but they insert identical values.
        let d = self.characterize(&node.kind, &operand_widths);
        self.cache.write().expect("cache lock poisoned").insert(sig, d);
        d
    }

    /// Delays for every node of the graph, indexed by node id.
    pub fn all_node_delays(&self, graph: &Graph) -> Vec<Picos> {
        graph.node_ids().map(|id| self.node_delay(graph, id)).collect()
    }

    /// Number of distinct signatures characterized so far.
    pub fn cache_len(&self) -> usize {
        self.cache.read().expect("cache lock poisoned").len()
    }

    /// Builds a one-op graph for the signature, synthesizes and times it.
    fn characterize(&self, kind: &OpKind, operand_widths: &[u32]) -> Picos {
        let mut g = Graph::new("char");
        let operands: Vec<NodeId> =
            operand_widths.iter().enumerate().map(|(i, &w)| g.param(format!("p{i}"), w)).collect();
        let node = g.add_node(kind.clone(), operands).expect("signature came from a valid node");
        g.set_output(node);
        let lowered = lower_graph(&g);
        let optimized = self.script.run(&lowered.aig);
        sta::analyze(&optimized, &self.lib).critical_path_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> OpDelayModel {
        OpDelayModel::new(TechLibrary::sky130())
    }

    fn delay_of(kind: OpKind, widths: &[u32]) -> Picos {
        let m = model();
        let mut g = Graph::new("t");
        let ops: Vec<NodeId> =
            widths.iter().enumerate().map(|(i, &w)| g.param(format!("x{i}"), w)).collect();
        let n = g.add_node(kind, ops).unwrap();
        g.set_output(n);
        m.node_delay(&g, n)
    }

    #[test]
    fn op_delay_ordering_is_realistic() {
        let xor = delay_of(OpKind::Xor, &[32, 32]);
        let add = delay_of(OpKind::Add, &[32, 32]);
        let mul = delay_of(OpKind::Mul, &[32, 32]);
        assert!(xor < add, "xor {xor} < add {add}");
        assert!(add < mul, "add {add} < mul {mul}");
    }

    #[test]
    fn delay_grows_with_width() {
        let add8 = delay_of(OpKind::Add, &[8, 8]);
        let add32 = delay_of(OpKind::Add, &[32, 32]);
        assert!(add32 > add8);
    }

    #[test]
    fn free_ops_are_zero_delay() {
        assert_eq!(delay_of(OpKind::Concat, &[8, 8]), 0.0);
        assert_eq!(delay_of(OpKind::BitSlice { start: 0, width: 4 }, &[8]), 0.0);
        assert_eq!(delay_of(OpKind::ZeroExt { new_width: 16 }, &[8]), 0.0);
    }

    #[test]
    fn cache_hits_for_same_signature() {
        let m = model();
        let mut g = Graph::new("t");
        let a = g.param("a", 16);
        let b = g.param("b", 16);
        let c = g.param("c", 16);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        let y = g.binary(OpKind::Add, x, c).unwrap();
        g.set_output(y);
        let dx = m.node_delay(&g, x);
        let dy = m.node_delay(&g, y);
        assert_eq!(dx, dy);
        assert_eq!(m.cache_len(), 1);
    }

    #[test]
    fn all_node_delays_cover_graph() {
        let m = model();
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x = g.binary(OpKind::Mul, a, b).unwrap();
        g.set_output(x);
        let delays = m.all_node_delays(&g);
        assert_eq!(delays.len(), 3);
        assert_eq!(delays[0], 0.0);
        assert!(delays[2] > 0.0);
    }

    #[test]
    fn attribute_ops_key_separately() {
        let m = model();
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let s1 = g.unary(OpKind::BitSlice { start: 0, width: 4 }, a).unwrap();
        let s2 = g.unary(OpKind::BitSlice { start: 4, width: 4 }, a).unwrap();
        g.set_output(s1);
        g.set_output(s2);
        // Both free, but must not collide in the cache key space with each
        // other in a way that breaks evaluation.
        assert_eq!(m.node_delay(&g, s1), 0.0);
        assert_eq!(m.node_delay(&g, s2), 0.0);
    }
}
