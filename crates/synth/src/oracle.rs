//! Delay oracles — the "downstream tools" of the feedback loop.
//!
//! ISDC is deliberately agnostic about what produces subgraph delays: the
//! paper emphasizes a no-human-in-loop flow "compatible with a wide range of
//! downstream tools and PDKs". That interface is [`DelayOracle`]; the
//! implementations here are:
//!
//! - [`SynthesisOracle`] — full flow: bit-blast, optimize, map, STA
//!   (the Yosys + OpenSTA stand-in used in the main evaluation);
//! - [`AigDepthOracle`] — the paper's §V.3 future-work idea: skip technology
//!   mapping and STA and use AIG depth scaled to picoseconds;
//! - [`NaiveSumOracle`] — returns the scheduler's own sum-of-op-delay
//!   estimate (a no-gain oracle; with it, ISDC must change nothing).

use crate::characterize::OpDelayModel;
use crate::passes::SynthScript;
use crate::sta;
use isdc_ir::{Graph, NodeId};
use isdc_netlist::lower_subgraph;
use isdc_techlib::{Picos, TechLibrary};

/// What a downstream evaluation reports back for one subgraph.
#[derive(Clone, Debug, PartialEq)]
pub struct DelayReport {
    /// Post-synthesis critical path through the subgraph, in picoseconds.
    pub delay_ps: Picos,
    /// AIG depth after optimization.
    pub aig_depth: u32,
    /// AND-node count after optimization.
    pub and_count: usize,
    /// Per-output arrival times: for each subgraph output value (an IR node
    /// whose result leaves the subgraph), the worst arrival over its bits.
    /// Windows have several outputs with very different arrivals; feeding
    /// each back individually updates the delay matrix much more precisely
    /// than one uniform `delay_ps`.
    pub output_arrivals: Vec<(NodeId, Picos)>,
}

/// A downstream tool that can time a combinational subgraph.
///
/// Implementations must be [`Sync`]: ISDC evaluates several subgraphs per
/// iteration in parallel (the paper uses 16).
pub trait DelayOracle: Sync {
    /// Times the subgraph consisting of `members` within `graph`.
    fn evaluate(&self, graph: &Graph, members: &[NodeId]) -> DelayReport;

    /// A short human-readable name for reports.
    ///
    /// Also identifies this oracle in persisted delay-cache snapshots
    /// (`isdc-cache`): two oracles that can report different delays for the
    /// same subgraph must return different names, or a snapshot from one
    /// could be replayed against the other.
    fn name(&self) -> &str {
        "oracle"
    }
}

impl<O: DelayOracle + ?Sized> DelayOracle for &O {
    fn evaluate(&self, graph: &Graph, members: &[NodeId]) -> DelayReport {
        (**self).evaluate(graph, members)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The full downstream flow: lower to an AIG, run the synthesis script, time
/// with STA against the technology library.
#[derive(Debug)]
pub struct SynthesisOracle {
    lib: TechLibrary,
    script: SynthScript,
    name: String,
}

impl SynthesisOracle {
    /// Creates the oracle with the default (`resyn`) script.
    pub fn new(lib: TechLibrary) -> Self {
        Self::with_script(lib, SynthScript::resyn())
    }

    /// Creates the oracle with an explicit script.
    pub fn with_script(lib: TechLibrary, script: SynthScript) -> Self {
        // The name carries the full timing identity (library + script):
        // delay caches keyed on it must never mix configurations.
        let name = format!("synthesis[{};{}]", lib.name(), script.mnemonic());
        Self { lib, script, name }
    }

    /// The library used for timing.
    pub fn library(&self) -> &TechLibrary {
        &self.lib
    }
}

impl DelayOracle for SynthesisOracle {
    fn evaluate(&self, graph: &Graph, members: &[NodeId]) -> DelayReport {
        let lowered = lower_subgraph(graph, members);
        let optimized = self.script.run(&lowered.aig);
        let report = sta::analyze(&optimized, &self.lib);
        DelayReport {
            delay_ps: report.critical_path_ps,
            aig_depth: report.depth,
            and_count: report.and_count,
            output_arrivals: fold_output_arrivals(&lowered.output_map, &report.output_arrivals_ps),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// The §V.3 shortcut: synthesize to an AIG but report `depth × ps_per_level`
/// instead of running mapping + STA.
#[derive(Debug)]
pub struct AigDepthOracle {
    script: SynthScript,
    ps_per_level: Picos,
    name: String,
}

impl AigDepthOracle {
    /// Creates the oracle. `ps_per_level` calibrates depth to time; the
    /// paper's Fig. 8 shows the relation is close to linear.
    pub fn new(ps_per_level: Picos) -> Self {
        let script = SynthScript::resyn();
        let name = format!("aig-depth[{ps_per_level}ps;{}]", script.mnemonic());
        Self { script, ps_per_level, name }
    }

    /// The calibration slope.
    pub fn ps_per_level(&self) -> Picos {
        self.ps_per_level
    }
}

impl DelayOracle for AigDepthOracle {
    fn evaluate(&self, graph: &Graph, members: &[NodeId]) -> DelayReport {
        let lowered = lower_subgraph(graph, members);
        let optimized = self.script.run(&lowered.aig);
        let depth = optimized.depth();
        // Per-output depths scaled by the calibration slope.
        let depths = optimized.depths();
        let per_output: Vec<Picos> = optimized
            .outputs()
            .iter()
            .map(|l| depths[l.node() as usize] as Picos * self.ps_per_level)
            .collect();
        DelayReport {
            delay_ps: depth as Picos * self.ps_per_level,
            aig_depth: depth,
            and_count: optimized.num_ands(),
            output_arrivals: fold_output_arrivals(&lowered.output_map, &per_output),
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// A control oracle that reports the scheduler's own naive estimate: the
/// longest sum-of-op-delay path through the subgraph.
///
/// Feedback from this oracle can never beat the initial estimate, so ISDC
/// driven by it must converge immediately with an unchanged schedule — a
/// useful end-to-end sanity check (and test fixture).
#[derive(Debug)]
pub struct NaiveSumOracle {
    model: OpDelayModel,
    name: String,
}

impl NaiveSumOracle {
    /// Creates the oracle around a characterization model.
    pub fn new(model: OpDelayModel) -> Self {
        let name = format!("naive-sum[{};{}]", model.library().name(), model.script().mnemonic());
        Self { model, name }
    }
}

impl DelayOracle for NaiveSumOracle {
    fn evaluate(&self, graph: &Graph, members: &[NodeId]) -> DelayReport {
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let member_set: std::collections::HashSet<NodeId> = sorted.iter().copied().collect();
        let mut arrival: std::collections::HashMap<NodeId, Picos> =
            std::collections::HashMap::new();
        let mut worst: Picos = 0.0;
        for &id in &sorted {
            let node = graph.node(id);
            let input_arrival = node
                .operands
                .iter()
                .filter(|o| member_set.contains(o))
                .map(|o| arrival[o])
                .fold(0.0, f64::max);
            let a = input_arrival + self.model.node_delay(graph, id);
            worst = worst.max(a);
            arrival.insert(id, a);
        }
        let output_arrivals: Vec<(NodeId, Picos)> =
            sorted.iter().map(|&id| (id, arrival[&id])).collect();
        DelayReport { delay_ps: worst, aig_depth: 0, and_count: 0, output_arrivals }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Collapses per-bit output arrivals into per-IR-node worst arrivals.
fn fold_output_arrivals(output_map: &[(NodeId, u32)], arrivals: &[Picos]) -> Vec<(NodeId, Picos)> {
    let mut per_node: Vec<(NodeId, Picos)> = Vec::new();
    for (&(id, _bit), &a) in output_map.iter().zip(arrivals) {
        match per_node.iter_mut().find(|(n, _)| *n == id) {
            Some((_, worst)) => *worst = worst.max(a),
            None => per_node.push((id, a)),
        }
    }
    per_node
}

/// Evaluates many subgraphs in parallel with scoped threads, preserving input
/// order — the paper's "16 subgraphs per iteration in parallel".
///
/// `threads == 1` runs inline (no thread spawn overhead).
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
pub fn evaluate_parallel<O: DelayOracle + ?Sized>(
    oracle: &O,
    graph: &Graph,
    subgraphs: &[Vec<NodeId>],
    threads: usize,
) -> Vec<DelayReport> {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || subgraphs.len() <= 1 {
        return subgraphs.iter().map(|s| oracle.evaluate(graph, s)).collect();
    }
    let mut reports: Vec<Option<DelayReport>> = vec![None; subgraphs.len()];
    let chunk = subgraphs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (slot_chunk, work_chunk) in reports.chunks_mut(chunk).zip(subgraphs.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, members) in slot_chunk.iter_mut().zip(work_chunk) {
                    *slot = Some(oracle.evaluate(graph, members));
                }
            });
        }
    });
    reports.into_iter().map(|r| r.expect("all slots filled")).collect()
}

/// [`evaluate_parallel`] with a cooperative cancellation poll before each
/// subgraph evaluation. The calling thread's installed
/// [`isdc_cancel::CancelToken`] (if any) is re-installed inside each worker
/// so a deadline cuts the whole evaluation short; completed reports are
/// discarded (the caller re-evaluates after rerun — the oracle is pure, so
/// a redo is bit-identical).
///
/// With no token installed the per-subgraph poll is one relaxed atomic
/// load, and behavior is identical to [`evaluate_parallel`].
///
/// # Errors
///
/// Returns [`isdc_cancel::Cancelled`] when the installed token trips
/// before every subgraph finishes.
///
/// # Panics
///
/// Panics if `threads == 0` or a worker thread panics.
pub fn evaluate_parallel_cancellable<O: DelayOracle + ?Sized>(
    oracle: &O,
    graph: &Graph,
    subgraphs: &[Vec<NodeId>],
    threads: usize,
) -> Result<Vec<DelayReport>, isdc_cancel::Cancelled> {
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || subgraphs.len() <= 1 {
        let mut reports = Vec::with_capacity(subgraphs.len());
        for members in subgraphs {
            isdc_cancel::checkpoint()?;
            reports.push(oracle.evaluate(graph, members));
        }
        return Ok(reports);
    }
    let token = isdc_cancel::current();
    let mut reports: Vec<Option<DelayReport>> = vec![None; subgraphs.len()];
    let chunk = subgraphs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (slot_chunk, work_chunk) in reports.chunks_mut(chunk).zip(subgraphs.chunks(chunk)) {
            let token = token.clone();
            scope.spawn(move || {
                let _scope = token.as_ref().map(|t| t.install());
                for (slot, members) in slot_chunk.iter_mut().zip(work_chunk) {
                    if isdc_cancel::checkpoint().is_err() {
                        return;
                    }
                    *slot = Some(oracle.evaluate(graph, members));
                }
            });
        }
    });
    reports.into_iter().map(|r| r.ok_or(isdc_cancel::Cancelled)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::OpKind;

    /// Chain of three 16-bit adds.
    fn chain() -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new("chain");
        let a = g.param("a", 16);
        let b = g.param("b", 16);
        let c = g.param("c", 16);
        let d = g.param("d", 16);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        let y = g.binary(OpKind::Add, x, c).unwrap();
        let z = g.binary(OpKind::Add, y, d).unwrap();
        g.set_output(z);
        (g, vec![x, y, z])
    }

    #[test]
    fn synthesis_beats_naive_sum_on_composition() {
        let lib = TechLibrary::sky130();
        let (g, members) = chain();
        let synth = SynthesisOracle::new(lib.clone());
        let naive = NaiveSumOracle::new(OpDelayModel::new(lib));
        let d_synth = synth.evaluate(&g, &members).delay_ps;
        let d_naive = naive.evaluate(&g, &members).delay_ps;
        assert!(
            d_synth < d_naive,
            "composed synthesis {d_synth}ps must beat naive sum {d_naive}ps"
        );
    }

    #[test]
    fn naive_sum_matches_manual_path() {
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib);
        let (g, members) = chain();
        let per_add = model.node_delay(&g, members[0]);
        let naive = NaiveSumOracle::new(OpDelayModel::new(TechLibrary::sky130()));
        let d = naive.evaluate(&g, &members).delay_ps;
        assert!((d - 3.0 * per_add).abs() < 1e-6);
    }

    #[test]
    fn single_op_synthesis_matches_characterization() {
        // For a single op, the oracle and the pre-characterized delay must
        // agree (same flow, same netlist).
        let lib = TechLibrary::sky130();
        let model = OpDelayModel::new(lib.clone());
        let oracle = SynthesisOracle::new(lib);
        let mut g = Graph::new("t");
        let a = g.param("a", 24);
        let b = g.param("b", 24);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        g.set_output(x);
        let from_oracle = oracle.evaluate(&g, &[x]).delay_ps;
        let from_model = model.node_delay(&g, x);
        assert!((from_oracle - from_model).abs() < 1e-9);
    }

    #[test]
    fn aig_depth_oracle_scales_depth() {
        let (g, members) = chain();
        let o = AigDepthOracle::new(40.0);
        let r = o.evaluate(&g, &members);
        assert_eq!(r.delay_ps, r.aig_depth as f64 * 40.0);
        assert!(r.aig_depth > 0);
    }

    #[test]
    fn parallel_matches_serial() {
        let lib = TechLibrary::sky130();
        let oracle = SynthesisOracle::new(lib);
        let (g, members) = chain();
        let subgraphs: Vec<Vec<NodeId>> = vec![
            vec![members[0]],
            vec![members[0], members[1]],
            members.clone(),
            vec![members[2]],
            vec![members[1], members[2]],
        ];
        let serial = evaluate_parallel(&oracle, &g, &subgraphs, 1);
        let parallel = evaluate_parallel(&oracle, &g, &subgraphs, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn oracle_names_carry_timing_identity() {
        // Names key persisted delay caches, so everything that changes
        // measured delays — library, corner, script, calibration — must
        // show up in them.
        let lib = TechLibrary::sky130();
        assert_eq!(
            SynthesisOracle::new(lib.clone()).name(),
            "synthesis[sky130-like;sweep,balance,sweep]"
        );
        assert_ne!(
            SynthesisOracle::new(lib.clone()).name(),
            SynthesisOracle::new(TechLibrary::uniform(50.0)).name(),
        );
        assert_ne!(
            SynthesisOracle::new(lib.clone()).name(),
            SynthesisOracle::with_script(lib.clone(), SynthScript::none()).name(),
        );
        assert_eq!(AigDepthOracle::new(40.0).name(), "aig-depth[40ps;sweep,balance,sweep]");
        assert_ne!(AigDepthOracle::new(40.0).name(), AigDepthOracle::new(45.0).name());
        assert_eq!(
            NaiveSumOracle::new(OpDelayModel::new(lib)).name(),
            "naive-sum[sky130-like;sweep,balance,sweep]"
        );
    }
}
