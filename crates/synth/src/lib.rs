//! # isdc-synth — the downstream-tool simulator
//!
//! The paper's feedback loop sends combinational subgraphs through
//! "downstream tools like logic synthesizers" (Yosys + OpenSTA + SKY130 in
//! their evaluation) and folds the reported delays back into scheduling.
//! This crate is that downstream stack, built from scratch:
//!
//! - [`SynthScript`] and [`balance`] — AIG optimization (sweep, depth-oriented
//!   balancing) over `isdc-netlist` AIGs;
//! - [`sta`] — static timing analysis with the `isdc-techlib` load model;
//! - [`OpDelayModel`] — per-op delay pre-characterization (what the HLS
//!   scheduler's naive estimates are made of);
//! - [`DelayOracle`] and implementations — the feedback interface ISDC
//!   consumes, including parallel evaluation of many subgraphs.
//!
//! # Examples
//!
//! ```
//! use isdc_ir::{Graph, OpKind};
//! use isdc_synth::{DelayOracle, SynthesisOracle, OpDelayModel};
//! use isdc_techlib::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three chained adds: the synthesized whole is faster than the sum of
//! // its parts — the slack ISDC feeds on.
//! let mut g = Graph::new("chain");
//! let a = g.param("a", 16);
//! let b = g.param("b", 16);
//! let c = g.param("c", 16);
//! let x = g.binary(OpKind::Add, a, b)?;
//! let y = g.binary(OpKind::Add, x, c)?;
//! g.set_output(y);
//!
//! let lib = TechLibrary::sky130();
//! let model = OpDelayModel::new(lib.clone());
//! let naive: f64 = model.node_delay(&g, x) + model.node_delay(&g, y);
//! let oracle = SynthesisOracle::new(lib);
//! let measured = oracle.evaluate(&g, &[x, y]).delay_ps;
//! assert!(measured < naive);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod characterize;
mod oracle;
mod passes;
pub mod sta;

pub use characterize::OpDelayModel;
pub use oracle::{
    evaluate_parallel, evaluate_parallel_cancellable, AigDepthOracle, DelayOracle, DelayReport,
    NaiveSumOracle, SynthesisOracle,
};
pub use passes::{balance, Pass, SynthScript};
