//! Logic-optimization passes over AIGs.
//!
//! These passes play the role of the Yosys/ABC synthesis script in the
//! paper's downstream flow. The load-bearing effect for ISDC is that a
//! multi-op subgraph synthesized as one unit ends up with a *shorter critical
//! path* than the sum of its members' pre-characterized delays; structural
//! hashing (in the AIG builder), dead-logic sweeping and depth-oriented
//! balancing reproduce that behaviour.

use isdc_netlist::{Aig, AigLit, AigNode};

/// One optimization pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pass {
    /// Remove logic unreachable from the outputs.
    Sweep,
    /// Depth-oriented rebalancing of AND/OR chains (Huffman-style: combine
    /// the shallowest operands first).
    Balance,
}

/// An ordered list of passes — the "synthesis script".
///
/// # Examples
///
/// ```
/// use isdc_synth::SynthScript;
///
/// let script = SynthScript::resyn();
/// assert!(!script.passes().is_empty());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SynthScript {
    passes: Vec<Pass>,
}

impl SynthScript {
    /// A script that performs no optimization (useful to measure the raw
    /// lowering).
    pub fn none() -> Self {
        Self { passes: vec![] }
    }

    /// The default script: sweep, balance, sweep — analogous to a light
    /// `resyn` ABC script.
    pub fn resyn() -> Self {
        Self { passes: vec![Pass::Sweep, Pass::Balance, Pass::Sweep] }
    }

    /// A custom pass list.
    pub fn custom(passes: Vec<Pass>) -> Self {
        Self { passes }
    }

    /// The pass list.
    pub fn passes(&self) -> &[Pass] {
        &self.passes
    }

    /// A compact identity string, e.g. `sweep,balance,sweep` (`none` for the
    /// empty script). Used to tell scripts apart in oracle names and cache
    /// snapshots.
    pub fn mnemonic(&self) -> String {
        if self.passes.is_empty() {
            return "none".to_string();
        }
        let names: Vec<&str> = self
            .passes
            .iter()
            .map(|p| match p {
                Pass::Sweep => "sweep",
                Pass::Balance => "balance",
            })
            .collect();
        names.join(",")
    }

    /// Runs every pass in order and returns the optimized AIG.
    pub fn run(&self, aig: &Aig) -> Aig {
        let mut cur = aig.clone();
        for pass in &self.passes {
            cur = match pass {
                Pass::Sweep => cur.sweep(),
                Pass::Balance => balance(&cur),
            };
        }
        cur
    }
}

impl Default for SynthScript {
    fn default() -> Self {
        Self::resyn()
    }
}

/// Rebuilds the AIG with balanced AND trees.
///
/// For every AND node, the maximal conjunction reachable through
/// non-complemented AND operands is flattened and recombined shallowest-first
/// (a Huffman tree over arrival depth). Because OR is represented as a
/// complemented AND of complemented literals, OR chains are balanced by the
/// same mechanism one level in.
pub fn balance(aig: &Aig) -> Aig {
    let mut out = Aig::new();
    let nodes = aig.nodes();
    // map[i] = literal in `out` equivalent to node i (positive polarity).
    let mut map: Vec<Option<AigLit>> = vec![None; nodes.len()];
    map[0] = Some(AigLit::FALSE);
    // Incrementally tracked AND-depths of `out` nodes (const node = 0).
    let mut out_depths: Vec<u32> = vec![0];
    for (i, node) in nodes.iter().enumerate() {
        match node {
            AigNode::Const => {}
            AigNode::Input(_) => {
                map[i] = Some(out.input());
                out_depths.push(0);
            }
            AigNode::And(..) => {
                let leaves = flatten_conjunction(nodes, i as u32);
                // Translate leaves into the new AIG with their depths.
                let mut translated: Vec<(u32, AigLit)> = leaves
                    .iter()
                    .map(|l| {
                        let lit = map[l.node() as usize].expect("topological order")
                            ^ l.is_complemented();
                        (out_depths[lit.node() as usize], lit)
                    })
                    .collect();
                // Huffman-style: repeatedly combine the two shallowest.
                translated.sort_by_key(|&(d, _)| std::cmp::Reverse(d));
                while translated.len() > 1 {
                    let (d1, l1) = translated.pop().expect("len > 1");
                    let (d2, l2) = translated.pop().expect("len > 1");
                    let combined = out.and(l1, l2);
                    if combined.node() as usize >= out_depths.len() {
                        // A genuinely new node.
                        out_depths.push(d1.max(d2) + 1);
                    }
                    let d = out_depths[combined.node() as usize];
                    // Insert keeping descending depth order.
                    let pos =
                        translated.iter().position(|&(dd, _)| dd <= d).unwrap_or(translated.len());
                    translated.insert(pos, (d, combined));
                }
                map[i] = Some(translated.pop().map(|(_, l)| l).unwrap_or(AigLit::TRUE));
            }
        }
    }
    for lit in aig.outputs() {
        let l = map[lit.node() as usize].expect("outputs resolved") ^ lit.is_complemented();
        out.push_output(l);
    }
    out
}

/// Collects the flattened conjunction of node `root`, expanding through
/// non-complemented AND operands (iteratively, to handle long chains).
fn flatten_conjunction(nodes: &[AigNode], root: u32) -> Vec<AigLit> {
    let mut leaves = Vec::new();
    let mut stack = vec![root];
    while let Some(n) = stack.pop() {
        let AigNode::And(a, b) = nodes[n as usize] else {
            leaves.push(AigLit::positive(n));
            continue;
        };
        for operand in [a, b] {
            if !operand.is_complemented()
                && matches!(nodes[operand.node() as usize], AigNode::And(..))
            {
                stack.push(operand.node());
            } else {
                leaves.push(operand);
            }
        }
    }
    leaves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_vectors(n_inputs: usize, seed: u64) -> Vec<Vec<bool>> {
        // Small deterministic LCG so tests need no external RNG.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..32)
            .map(|_| {
                (0..n_inputs)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 33) & 1 == 1
                    })
                    .collect()
            })
            .collect()
    }

    fn assert_equivalent(a: &Aig, b: &Aig) {
        assert_eq!(a.num_inputs(), b.num_inputs());
        assert_eq!(a.outputs().len(), b.outputs().len());
        for vec in random_vectors(a.num_inputs(), 42) {
            assert_eq!(a.eval(&vec), b.eval(&vec), "inputs {vec:?}");
        }
    }

    #[test]
    fn balance_reduces_chain_depth() {
        let mut aig = Aig::new();
        let inputs: Vec<AigLit> = (0..16).map(|_| aig.input()).collect();
        // Deliberately linear AND chain: depth 15.
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = aig.and(acc, i);
        }
        aig.push_output(acc);
        assert_eq!(aig.depth(), 15);
        let balanced = balance(&aig);
        assert_eq!(balanced.depth(), 4);
        assert_equivalent(&aig, &balanced);
    }

    #[test]
    fn balance_reduces_or_chain_depth() {
        let mut aig = Aig::new();
        let inputs: Vec<AigLit> = (0..8).map(|_| aig.input()).collect();
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = aig.or(acc, i);
        }
        aig.push_output(acc);
        let balanced = balance(&aig);
        assert!(balanced.depth() < aig.depth());
        assert_equivalent(&aig, &balanced);
    }

    #[test]
    fn balance_preserves_xor_semantics() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let c = aig.input();
        let x = aig.xor(a, b);
        let y = aig.xor(x, c);
        aig.push_output(y);
        let balanced = balance(&aig);
        assert_equivalent(&aig, &balanced);
    }

    #[test]
    fn balance_is_idempotent_on_depth() {
        let mut aig = Aig::new();
        let inputs: Vec<AigLit> = (0..13).map(|_| aig.input()).collect();
        let mut acc = inputs[0];
        for &i in &inputs[1..] {
            acc = aig.and(acc, i);
        }
        aig.push_output(acc);
        let once = balance(&aig);
        let twice = balance(&once);
        assert_eq!(once.depth(), twice.depth());
        assert_equivalent(&once, &twice);
    }

    #[test]
    fn script_none_is_identity_semantics() {
        let mut aig = Aig::new();
        let a = aig.input();
        let b = aig.input();
        let x = aig.xor(a, b);
        aig.push_output(x);
        let out = SynthScript::none().run(&aig);
        assert_equivalent(&aig, &out);
        assert_eq!(out.num_ands(), aig.num_ands());
    }

    #[test]
    fn resyn_never_increases_depth() {
        let mut aig = Aig::new();
        let inputs: Vec<AigLit> = (0..10).map(|_| aig.input()).collect();
        let mut acc = inputs[0];
        for (k, &i) in inputs[1..].iter().enumerate() {
            acc = if k % 2 == 0 { aig.and(acc, i) } else { aig.or(acc, i) };
        }
        aig.push_output(acc);
        let out = SynthScript::resyn().run(&aig);
        assert!(out.depth() <= aig.depth());
        assert_equivalent(&aig, &out);
    }

    #[test]
    fn constant_outputs_survive_balancing() {
        let mut aig = Aig::new();
        let a = aig.input();
        let f = aig.and(a, a.not()); // folds to const0 at build time
        aig.push_output(f);
        aig.push_output(AigLit::TRUE);
        let out = SynthScript::resyn().run(&aig);
        assert_eq!(out.eval(&[true]), vec![false, true]);
        assert_eq!(out.eval(&[false]), vec![false, true]);
    }
}
