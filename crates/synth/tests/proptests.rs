//! Property-based tests for the synthesis simulator: optimization passes
//! preserve functionality and never worsen depth; STA is monotone in
//! structure; oracles satisfy their contracts.

use isdc_ir::{Graph, OpKind};
use isdc_netlist::{lower_graph, Aig, AigLit};
use isdc_synth::{balance, sta, DelayOracle, OpDelayModel, SynthScript, SynthesisOracle};
use isdc_techlib::TechLibrary;
use proptest::prelude::*;

/// A random AIG built from a sequence of gate choices.
fn arbitrary_aig() -> impl Strategy<Value = Aig> {
    (2usize..8, 1usize..40, any::<u64>()).prop_map(|(inputs, gates, seed)| {
        let mut state = seed;
        let mut rng = move |m: usize| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m.max(1)
        };
        let mut aig = Aig::new();
        let mut pool: Vec<AigLit> = (0..inputs).map(|_| aig.input()).collect();
        for _ in 0..gates {
            let a = pool[rng(pool.len())];
            let b = pool[rng(pool.len())];
            let lit = match rng(4) {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                2 => aig.xor(a, b),
                _ => {
                    let c = pool[rng(pool.len())];
                    aig.mux(a, b, c)
                }
            };
            pool.push(if rng(3) == 0 { lit.not() } else { lit });
        }
        // A handful of outputs.
        for _ in 0..3 {
            let o = pool[rng(pool.len())];
            aig.push_output(o);
        }
        aig
    })
}

fn exhaustive_or_sampled_inputs(n: usize, seed: u64) -> Vec<Vec<bool>> {
    if n <= 10 {
        (0..1usize << n).map(|k| (0..n).map(|i| (k >> i) & 1 == 1).collect()).collect()
    } else {
        let mut state = seed;
        (0..64)
            .map(|_| {
                (0..n)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 33) & 1 == 1
                    })
                    .collect()
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Balancing preserves the boolean function — checked exhaustively for
    /// small input counts.
    #[test]
    fn balance_preserves_function(aig in arbitrary_aig(), seed in any::<u64>()) {
        let balanced = balance(&aig);
        for v in exhaustive_or_sampled_inputs(aig.num_inputs(), seed) {
            prop_assert_eq!(aig.eval(&v), balanced.eval(&v));
        }
    }

    /// Balancing never increases depth.
    #[test]
    fn balance_never_deepens(aig in arbitrary_aig()) {
        prop_assert!(balance(&aig).depth() <= aig.depth());
    }

    /// The full resyn script preserves functionality.
    #[test]
    fn resyn_preserves_function(aig in arbitrary_aig(), seed in any::<u64>()) {
        let out = SynthScript::resyn().run(&aig);
        for v in exhaustive_or_sampled_inputs(aig.num_inputs(), seed) {
            prop_assert_eq!(aig.eval(&v), out.eval(&v));
        }
    }

    /// STA arrival is bounded below by depth times the fastest possible
    /// stage and is zero only for gate-free outputs.
    #[test]
    fn sta_lower_bound_by_depth(aig in arbitrary_aig()) {
        let lib = TechLibrary::sky130();
        let report = sta::analyze(&aig, &lib);
        let min_stage = lib.cell(isdc_techlib::GateKind::Nand2).intrinsic_ps;
        prop_assert!(report.critical_path_ps + 1e-9 >= report.depth as f64 * min_stage * 0.0);
        if report.depth > 0 {
            prop_assert!(report.critical_path_ps >= min_stage);
        }
    }
}

/// Oracle contract: evaluating a subgraph twice gives identical reports, and
/// growing a chain never reduces its fused delay.
#[test]
fn oracle_is_deterministic_and_monotone_on_chains() {
    let lib = TechLibrary::sky130();
    let oracle = SynthesisOracle::new(lib);
    let mut g = Graph::new("chain");
    let mut acc = g.param("p0", 8);
    let mut chain = Vec::new();
    for i in 1..=6 {
        let p = g.param(format!("p{i}"), 8);
        acc = g.binary(OpKind::Add, acc, p).unwrap();
        chain.push(acc);
    }
    g.set_output(acc);
    let mut prev = 0.0;
    for k in 1..=chain.len() {
        let members = &chain[..k];
        let r1 = oracle.evaluate(&g, members);
        let r2 = oracle.evaluate(&g, members);
        assert_eq!(r1, r2, "oracle must be deterministic");
        assert!(r1.delay_ps >= prev, "adding ops to a chain cannot reduce its delay");
        prev = r1.delay_ps;
    }
}

/// Characterization cache is consistent under concurrency.
#[test]
fn characterization_thread_safe() {
    let model = std::sync::Arc::new(OpDelayModel::new(TechLibrary::sky130()));
    let mut g = Graph::new("t");
    let a = g.param("a", 16);
    let b = g.param("b", 16);
    let m = g.binary(OpKind::Mul, a, b).unwrap();
    g.set_output(m);
    let g = std::sync::Arc::new(g);
    let mut handles = Vec::new();
    for _ in 0..4 {
        let model = model.clone();
        let g = g.clone();
        handles.push(std::thread::spawn(move || model.node_delay(&g, m)));
    }
    let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(results.windows(2).all(|w| w[0] == w[1]));
    assert_eq!(model.cache_len(), 1);
}

/// Lowered benchmark netlists survive the full script without growing depth.
#[test]
fn resyn_never_deepens_benchmark_netlists() {
    for b in isdc_benchsuite::suite().into_iter().take(6) {
        let lowered = lower_graph(&b.graph);
        let out = SynthScript::resyn().run(&lowered.aig);
        assert!(
            out.depth() <= lowered.aig.depth(),
            "{}: depth grew {} -> {}",
            b.name,
            lowered.aig.depth(),
            out.depth()
        );
    }
}
