//! The sharded, thread-safe delay cache.

use crate::fingerprint::Fingerprint;
use isdc_telemetry::{Counter, MetricsFrame, Registry};
use std::collections::{HashMap, VecDeque};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Poison-tolerant read lock. Every mutation under these locks is a
/// single-call `HashMap`/`Vec` operation that either completes or leaves
/// the map untouched, so a panicking holder (e.g. an injected
/// `cache/insert` fault in one batch worker) never leaves a shard
/// half-mutated — recovering the guard is always safe, and one worker's
/// panic must not take down the rest of the fleet.
fn read_shard<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Poison-tolerant write lock; see [`read_shard`] for why recovery is safe.
fn write_shard<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// One memoized downstream evaluation, stored against canonical indices so
/// it can be replayed onto any structurally identical subgraph.
#[derive(Clone, Debug, PartialEq)]
pub struct CachedDelay {
    /// Post-synthesis critical path in picoseconds.
    pub delay_ps: f64,
    /// AIG depth after optimization.
    pub aig_depth: u32,
    /// AND-node count after optimization.
    pub and_count: usize,
    /// Per-output arrivals as `(canonical member index, picoseconds)`,
    /// ascending by index.
    pub arrivals: Vec<(u32, f64)>,
}

/// Lookup/insert counters for one cache.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries written (excluding snapshot loads).
    pub inserts: u64,
    /// Entries dropped by the capacity bound (0 when unbounded).
    pub evictions: u64,
}

impl CacheStats {
    /// Hits over total lookups, or 0.0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// LP solver potentials learned for one (design, clock period) pair —
/// exported by a scheduling run's initial solve and imported (after
/// validation) to warm-start a later run of the same design. Stored and
/// persisted alongside the delay entries because they share the same
/// staleness domain: the oracle/model identity the snapshot is tagged with.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredPotentials {
    /// The clock period the potentials were solved at, in picoseconds.
    pub clock_ps: f64,
    /// The solver's node potentials (`-potentials` is the optimal LP
    /// assignment of the run's initial solve).
    pub pi: Vec<i64>,
}

/// A deterministic total order on delay entries, used only to resolve merge
/// conflicts (two caches carrying *different* entries for the same
/// fingerprint — impossible when both were filled by the same deterministic
/// oracle, but [`DelayCache::merge`] must stay commutative even on
/// adversarial input). Orders by delay, then depth, then count, then the
/// arrival list lexicographically.
fn entry_order(a: &CachedDelay, b: &CachedDelay) -> std::cmp::Ordering {
    a.delay_ps
        .total_cmp(&b.delay_ps)
        .then(a.aig_depth.cmp(&b.aig_depth))
        .then(a.and_count.cmp(&b.and_count))
        .then_with(|| {
            let by_arrival =
                |x: &(u32, f64), y: &(u32, f64)| x.0.cmp(&y.0).then(x.1.total_cmp(&y.1));
            a.arrivals.len().cmp(&b.arrivals.len()).then_with(|| {
                a.arrivals
                    .iter()
                    .zip(&b.arrivals)
                    .map(|(x, y)| by_arrival(x, y))
                    .find(|o| o.is_ne())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
        })
}

/// The same idea for potentials at one (design, clock) key: shorter vector
/// first, then lexicographic.
fn potentials_order(a: &[i64], b: &[i64]) -> std::cmp::Ordering {
    a.len().cmp(&b.len()).then_with(|| a.cmp(b))
}

/// One cached entry plus its segmented-LRU bookkeeping. The `stamp`
/// matches at most one recency-queue element, so stale queue elements
/// (from promotions, re-inserts, or replacements) are detected lazily and
/// skipped — no O(n) queue surgery on the warm path.
#[derive(Debug)]
struct Slot {
    entry: CachedDelay,
    stamp: u64,
    protected: bool,
}

/// One lock's worth of the cache: the entry map plus, for bounded caches,
/// the two segmented-LRU recency queues (probation for entries seen once,
/// protected for entries hit at least once after insertion). Queue
/// elements are `(key, stamp)` pairs, front = least recently used.
#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u128, Slot>,
    probation: VecDeque<(u128, u64)>,
    protected: VecDeque<(u128, u64)>,
    /// Live slots with `protected == true` (queues may hold stale extras).
    protected_len: usize,
    /// Monotonic recency clock; bumped on every queue push.
    stamp: u64,
}

impl Shard {
    fn push_probation(&mut self, key: u128) -> u64 {
        self.stamp += 1;
        self.probation.push_back((key, self.stamp));
        self.stamp
    }

    fn push_protected(&mut self, key: u128) -> u64 {
        self.stamp += 1;
        self.protected.push_back((key, self.stamp));
        self.stamp
    }

    /// Pops the least-recently-used *valid* key of `queue` (skipping stale
    /// stamps), or `None` when the queue holds no live entry.
    fn pop_lru(queue: &mut VecDeque<(u128, u64)>, map: &HashMap<u128, Slot>) -> Option<u128> {
        while let Some((key, stamp)) = queue.pop_front() {
            if map.get(&key).is_some_and(|slot| slot.stamp == stamp) {
                return Some(key);
            }
        }
        None
    }

    /// Evicts LRU entries until at most `capacity` remain: probation
    /// first (entries never re-referenced), then protected. Deterministic
    /// for a deterministic operation sequence — the victim is a pure
    /// function of the shard's history.
    fn evict_to(&mut self, capacity: usize, evictions: &Counter) {
        while self.map.len() > capacity {
            let victim = Self::pop_lru(&mut self.probation, &self.map)
                .or_else(|| Self::pop_lru(&mut self.protected, &self.map));
            let Some(victim) = victim else { return };
            if let Some(slot) = self.map.remove(&victim) {
                if slot.protected {
                    self.protected_len -= 1;
                }
                evictions.incr();
            }
        }
    }
}

/// A sharded, thread-safe map from structural fingerprints to delay reports.
///
/// Shard count is fixed at construction; a fingerprint's shard is chosen
/// from its low bits, so concurrent lookups from
/// [`evaluate_parallel`](isdc_synth::evaluate_parallel) workers rarely
/// contend on the same lock, and the read-mostly warm path takes only read
/// locks.
///
/// Next to the sharded delay map the cache keeps a small side store of
/// [`StoredPotentials`] per design fingerprint (one entry per clock period,
/// sorted ascending). It is deliberately unsharded: sweeps write one vector
/// per *run*, not per evaluation.
///
/// # Bounded caches
///
/// [`DelayCache::with_capacity`] bounds the entry count with per-shard
/// **segmented LRU** eviction: new entries enter a probation segment and
/// graduate to a protected segment on their first hit; eviction drains
/// probation LRU-first, then protected. Eviction is *semantically
/// invisible* — entries are immutable oracle results, so an evicted key
/// merely becomes a future miss that recomputes the identical value.
/// Hit rates change; **returned delays never do** (the capacity-bound
/// tests enforce bit-identity against an unbounded run). The
/// `cache/evictions` counter reports the drop count. Bounded lookups take
/// the shard's write lock (hits move queue entries); unbounded caches
/// keep the read-lock fast path.
#[derive(Debug)]
pub struct DelayCache {
    shards: Box<[RwLock<Shard>]>,
    mask: usize,
    /// Per-shard entry bound; `usize::MAX` when unbounded.
    shard_capacity: usize,
    /// Protected-segment bound within a shard (≈ 4/5 of the shard
    /// capacity), so probation always retains room for new blood.
    protected_capacity: usize,
    potentials: RwLock<HashMap<u128, Vec<StoredPotentials>>>,
    /// The cache's telemetry registry. The hit/miss/insert/eviction
    /// counters below are handles into it; [`DelayCache::stats`] and
    /// [`DelayCache::metrics`] are two views over the same cells.
    registry: Registry,
    hits: Counter,
    misses: Counter,
    inserts: Counter,
    evictions: Counter,
}

impl Default for DelayCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DelayCache {
    /// A cache with the default shard count (16).
    pub fn new() -> Self {
        Self::with_shards(16)
    }

    /// A cache with `shards` shards, rounded up to a power of two.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_shards_and_capacity(shards, 0)
    }

    /// An entry-bounded cache with the default shard count. `capacity` is
    /// the total entry budget, divided evenly across shards (rounded up to
    /// a whole entry per shard); `0` means unbounded. See the type docs
    /// for the segmented-LRU eviction semantics.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_shards_and_capacity(16, capacity)
    }

    /// A cache with both knobs explicit; `capacity == 0` means unbounded.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is 0.
    pub fn with_shards_and_capacity(shards: usize, capacity: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let count = shards.next_power_of_two();
        let shard_capacity =
            if capacity == 0 { usize::MAX } else { capacity.div_ceil(count).max(1) };
        let protected_capacity =
            if shard_capacity == usize::MAX { usize::MAX } else { (shard_capacity * 4 / 5).max(1) };
        let registry = Registry::new();
        let (hits, misses, inserts, evictions) = (
            registry.counter("cache/hits"),
            registry.counter("cache/misses"),
            registry.counter("cache/inserts"),
            registry.counter("cache/evictions"),
        );
        Self {
            shards: (0..count).map(|_| RwLock::new(Shard::default())).collect(),
            mask: count - 1,
            shard_capacity,
            protected_capacity,
            potentials: RwLock::new(HashMap::new()),
            registry,
            hits,
            misses,
            inserts,
            evictions,
        }
    }

    /// Whether a capacity bound is set.
    pub fn bounded(&self) -> bool {
        self.shard_capacity != usize::MAX
    }

    /// The total entry capacity, or `None` when unbounded. Reported as the
    /// per-shard budget times the shard count (construction rounds the
    /// requested capacity up to a whole entry per shard).
    pub fn capacity(&self) -> Option<usize> {
        self.bounded().then(|| self.shard_capacity * self.shards.len())
    }

    fn shard(&self, fp: Fingerprint) -> &RwLock<Shard> {
        &self.shards[(fp.0 as usize) & self.mask]
    }

    /// Looks up a fingerprint, counting a hit or miss. On a bounded cache
    /// a hit also *promotes* the entry (probation → protected, or to the
    /// protected segment's MRU position).
    pub fn get(&self, fp: Fingerprint) -> Option<CachedDelay> {
        let found = if self.bounded() {
            let mut guard = write_shard(self.shard(fp));
            // Reborrow through the guard once so field borrows can split.
            let shard: &mut Shard = &mut guard;
            match shard.map.get(&fp.0) {
                Some(slot) => {
                    let entry = slot.entry.clone();
                    let was_protected = slot.protected;
                    let stamp = shard.push_protected(fp.0);
                    let slot = shard.map.get_mut(&fp.0).expect("slot just read");
                    slot.stamp = stamp;
                    slot.protected = true;
                    if !was_protected {
                        shard.protected_len += 1;
                    }
                    // Keep the protected segment under its bound by
                    // demoting its LRU back to probation (as MRU — it was
                    // referenced more recently than probation's tail).
                    while shard.protected_len > self.protected_capacity {
                        let Some(demoted) = Shard::pop_lru(&mut shard.protected, &shard.map) else {
                            break;
                        };
                        let stamp = shard.push_probation(demoted);
                        let slot = shard.map.get_mut(&demoted).expect("demoted slot is live");
                        slot.stamp = stamp;
                        slot.protected = false;
                        shard.protected_len -= 1;
                    }
                    Some(entry)
                }
                None => None,
            }
        } else {
            read_shard(self.shard(fp)).map.get(&fp.0).map(|slot| slot.entry.clone())
        };
        match found {
            Some(entry) => {
                self.hits.incr();
                Some(entry)
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Inserts `entry` as a probation slot (replacing any previous slot for
    /// the key) and evicts down to the capacity bound.
    fn insert_slot(&self, fp: Fingerprint, entry: CachedDelay) {
        let mut shard = write_shard(self.shard(fp));
        let stamp = shard.push_probation(fp.0);
        if let Some(old) = shard.map.insert(fp.0, Slot { entry, stamp, protected: false }) {
            if old.protected {
                shard.protected_len -= 1;
            }
        }
        if self.bounded() {
            shard.evict_to(self.shard_capacity, &self.evictions);
        }
    }

    /// Inserts (or replaces) an entry, counting an insert.
    pub fn insert(&self, fp: Fingerprint, entry: CachedDelay) {
        // The fault hook fires *before* the lock is taken: an injected
        // panic here loses only this one insert, never shard consistency.
        isdc_faults::fire("cache/insert");
        self.inserts.incr();
        self.insert_slot(fp, entry);
    }

    /// Inserts without touching the insert counter (snapshot loading).
    /// Evictions still count — a bounded cache stays bounded under load.
    pub(crate) fn insert_silent(&self, fp: Fingerprint, entry: CachedDelay) {
        self.insert_slot(fp, entry);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| read_shard(s).map.len()).sum()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the counters — a [`CacheStats`]-shaped
    /// view over the telemetry registry cells.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            inserts: self.inserts.get(),
            evictions: self.evictions.get(),
        }
    }

    /// The same counters as a mergeable telemetry frame
    /// (`cache/hits`, `cache/misses`, `cache/inserts`, `cache/evictions`).
    pub fn metrics(&self) -> MetricsFrame {
        self.registry.snapshot()
    }

    /// Drops all entries (and their recency history), keeping the counters.
    pub fn clear(&self) {
        for s in self.shards.iter() {
            *write_shard(s) = Shard::default();
        }
    }

    /// Stores (or replaces) the potentials learned for `design` at
    /// `clock_ps`, keeping the per-design list sorted by period.
    pub fn store_potentials(&self, design: Fingerprint, clock_ps: f64, pi: Vec<i64>) {
        let mut map = write_shard(&self.potentials);
        let list = map.entry(design.0).or_default();
        match list.binary_search_by(|p| p.clock_ps.total_cmp(&clock_ps)) {
            Ok(i) => list[i].pi = pi,
            Err(i) => list.insert(i, StoredPotentials { clock_ps, pi }),
        }
    }

    /// The potentials best suited to warm-start a run of `design` at
    /// `clock_ps`: an exact period match first; otherwise the closest
    /// *shorter* period (whose optimum satisfies the relaxed bounds of the
    /// longer one — timing constraints are monotone in the period);
    /// otherwise the closest longer period, which the importer's validation
    /// may still accept. Returns the stored period alongside the vector.
    pub fn nearest_potentials(
        &self,
        design: Fingerprint,
        clock_ps: f64,
    ) -> Option<(f64, Vec<i64>)> {
        let map = read_shard(&self.potentials);
        let list = map.get(&design.0)?;
        let pick = match list.binary_search_by(|p| p.clock_ps.total_cmp(&clock_ps)) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        };
        let entry = list.get(pick)?;
        Some((entry.clock_ps, entry.pi.clone()))
    }

    /// All stored potentials, ascending by design fingerprint then period
    /// (a stable order for snapshots and tests).
    pub fn potential_entries(&self) -> Vec<(Fingerprint, StoredPotentials)> {
        let map = read_shard(&self.potentials);
        let mut out: Vec<(Fingerprint, StoredPotentials)> = map
            .iter()
            .flat_map(|(&k, list)| list.iter().map(move |p| (Fingerprint(k), p.clone())))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.clock_ps.total_cmp(&b.1.clock_ps)));
        out
    }

    /// Merges every delay entry and potential vector of `other` into this
    /// cache, returning the number of delay entries that changed `self`
    /// (new fingerprints plus conflict-resolved replacements). Counters are
    /// untouched, like a snapshot load.
    ///
    /// This is the fleet-wide publication primitive of the batch engine:
    /// per-worker (or per-process) caches fold into a shared one, and a
    /// shared cache folds snapshot files in through
    /// [`DelayCache::load`]. The operation is **commutative and
    /// idempotent**: both sides normally agree on every common fingerprint
    /// (entries come from one deterministic oracle, and the oracle-tag check
    /// on snapshots keeps foreign flows out), and in the pathological
    /// disagreeing case a deterministic total order picks the same winner
    /// regardless of merge direction — so merging A into B and B into A
    /// leave both caches with identical contents, and re-merging is a no-op
    /// (guarded by proptests).
    pub fn merge(&self, other: &DelayCache) -> usize {
        let mut changed = 0;
        for (fp, theirs) in other.entries() {
            let mut guard = write_shard(self.shard(fp));
            let shard: &mut Shard = &mut guard;
            match shard.map.get_mut(&fp.0) {
                None => {
                    let stamp = shard.push_probation(fp.0);
                    shard.map.insert(fp.0, Slot { entry: theirs, stamp, protected: false });
                    if self.bounded() {
                        shard.evict_to(self.shard_capacity, &self.evictions);
                    }
                    changed += 1;
                }
                Some(slot) => {
                    // A conflict replaces the value in place; the slot
                    // keeps its recency position.
                    if entry_order(&theirs, &slot.entry).is_lt() {
                        slot.entry = theirs;
                        changed += 1;
                    }
                }
            }
        }
        for (design, theirs) in other.potential_entries() {
            let mut map = write_shard(&self.potentials);
            let list = map.entry(design.0).or_default();
            match list.binary_search_by(|p| p.clock_ps.total_cmp(&theirs.clock_ps)) {
                Ok(i) => {
                    if potentials_order(&theirs.pi, &list[i].pi).is_lt() {
                        list[i].pi = theirs.pi;
                    }
                }
                Err(i) => list.insert(i, theirs),
            }
        }
        changed
    }

    /// All entries, ascending by fingerprint (a stable order for snapshots
    /// and tests).
    pub fn entries(&self) -> Vec<(Fingerprint, CachedDelay)> {
        let mut out: Vec<(Fingerprint, CachedDelay)> = self
            .shards
            .iter()
            .flat_map(|s| {
                read_shard(s)
                    .map
                    .iter()
                    .map(|(&k, slot)| (Fingerprint(k), slot.entry.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|&(fp, _)| fp);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(x: u128) -> Fingerprint {
        Fingerprint(x)
    }

    fn entry(d: f64) -> CachedDelay {
        CachedDelay { delay_ps: d, aig_depth: 3, and_count: 7, arrivals: vec![(0, d)] }
    }

    #[test]
    fn get_insert_and_counters() {
        let cache = DelayCache::new();
        assert_eq!(cache.get(fp(1)), None);
        cache.insert(fp(1), entry(10.0));
        assert_eq!(cache.get(fp(1)), Some(entry(10.0)));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_count_rounds_up() {
        let cache = DelayCache::with_shards(5);
        for i in 0..100u128 {
            cache.insert(fp(i), entry(i as f64));
        }
        assert_eq!(cache.len(), 100);
        for i in 0..100u128 {
            assert_eq!(cache.get(fp(i)).unwrap().delay_ps, i as f64);
        }
    }

    #[test]
    fn concurrent_mixed_access_is_consistent() {
        let cache = std::sync::Arc::new(DelayCache::new());
        std::thread::scope(|scope| {
            for t in 0..8u128 {
                let cache = std::sync::Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..200u128 {
                        let key = fp((i % 50) * 8 + t);
                        if cache.get(key).is_none() {
                            cache.insert(key, entry((key.0 % 1000) as f64));
                        }
                    }
                });
            }
        });
        assert_eq!(cache.len(), 400);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 1600);
    }

    #[test]
    fn clear_empties_without_resetting_stats() {
        let cache = DelayCache::new();
        cache.insert(fp(9), entry(1.0));
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().inserts, 1);
    }

    #[test]
    fn potentials_nearest_prefers_exact_then_below_then_above() {
        let cache = DelayCache::new();
        let d = fp(42);
        cache.store_potentials(d, 2000.0, vec![1, 2]);
        cache.store_potentials(d, 3000.0, vec![3, 4]);
        assert_eq!(cache.nearest_potentials(d, 3000.0), Some((3000.0, vec![3, 4])));
        assert_eq!(cache.nearest_potentials(d, 2500.0), Some((2000.0, vec![1, 2])));
        assert_eq!(cache.nearest_potentials(d, 9000.0), Some((3000.0, vec![3, 4])));
        assert_eq!(cache.nearest_potentials(d, 1000.0), Some((2000.0, vec![1, 2])));
        assert_eq!(cache.nearest_potentials(fp(7), 2000.0), None, "unknown design");
        // Replacement at an existing period.
        cache.store_potentials(d, 2000.0, vec![9]);
        assert_eq!(cache.nearest_potentials(d, 2000.0), Some((2000.0, vec![9])));
        assert_eq!(cache.potential_entries().len(), 2);
    }

    #[test]
    fn merge_unions_and_resolves_conflicts_deterministically() {
        let a = DelayCache::new();
        let b = DelayCache::new();
        a.insert(fp(1), entry(10.0));
        a.insert(fp(2), entry(20.0));
        b.insert(fp(2), entry(15.0)); // conflicting: smaller wins, both ways
        b.insert(fp(3), entry(30.0));
        a.store_potentials(fp(9), 2000.0, vec![1, 2]);
        b.store_potentials(fp(9), 2000.0, vec![0, 3]);
        b.store_potentials(fp(9), 3000.0, vec![7]);

        let a2 = DelayCache::new();
        a2.merge(&a); // deep copy via merge-into-empty
        assert_eq!(a2.merge(&b), 2, "one new key, one conflict replacement");
        let b2 = DelayCache::new();
        b2.merge(&b);
        b2.merge(&a);
        assert_eq!(a2.entries(), b2.entries(), "merge must be commutative");
        assert_eq!(a2.potential_entries(), b2.potential_entries());
        assert_eq!(a2.get(fp(2)).unwrap().delay_ps, 15.0);
        assert_eq!(a2.nearest_potentials(fp(9), 2000.0), Some((2000.0, vec![0, 3])));

        // Idempotent: a re-merge changes nothing.
        let before = a2.entries();
        assert_eq!(a2.merge(&b), 0);
        assert_eq!(a2.entries(), before);
        // And merges never bump the insert counter (the `get` probes above
        // legitimately counted hits).
        assert_eq!(a2.stats().inserts, 0);
    }

    #[test]
    fn capacity_bound_evicts_lru_probation_first() {
        // 1 shard so the eviction order is exactly the global LRU order.
        let cache = DelayCache::with_shards_and_capacity(1, 3);
        assert_eq!(cache.capacity(), Some(3));
        cache.insert(fp(1), entry(1.0));
        cache.insert(fp(2), entry(2.0));
        cache.insert(fp(3), entry(3.0));
        assert!(cache.get(fp(1)).is_some(), "promote 1 to protected");
        cache.insert(fp(4), entry(4.0)); // over capacity: evict LRU probation = 2
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.get(fp(2)).is_none(), "LRU probation entry was evicted");
        assert!(cache.get(fp(1)).is_some(), "protected entry survived");
        assert!(cache.get(fp(3)).is_some());
        assert!(cache.get(fp(4)).is_some());
    }

    #[test]
    fn eviction_never_changes_a_returned_delay() {
        // The bit-identity contract at the unit level: every get that hits
        // returns exactly what the (re-)insert stored, bounded or not.
        let bounded = DelayCache::with_shards_and_capacity(1, 4);
        let unbounded = DelayCache::with_shards(1);
        let keys = [3u128, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3, 2, 3, 8, 4];
        for (cache, log) in [(&bounded, true), (&unbounded, false)] {
            let mut returned = Vec::new();
            for &k in &keys {
                match cache.get(fp(k)) {
                    Some(e) => returned.push((k, e.delay_ps)),
                    None => {
                        cache.insert(fp(k), entry(k as f64));
                        returned.push((k, k as f64));
                    }
                }
            }
            for (k, d) in returned {
                assert_eq!(d, k as f64, "returned delay must match the oracle value");
            }
            if log {
                assert!(cache.stats().evictions > 0, "the bounded run must actually evict");
                assert!(cache.len() <= 4);
            }
        }
    }

    #[test]
    fn eviction_is_deterministic_for_a_fixed_op_sequence() {
        let run = || {
            let cache = DelayCache::with_shards_and_capacity(2, 4);
            for round in 0..3u128 {
                for k in 0..10u128 {
                    if cache.get(fp(k)).is_none() {
                        cache.insert(fp(k), entry((k + round) as f64));
                    }
                }
            }
            (cache.entries(), cache.stats())
        };
        assert_eq!(run(), run(), "same ops, same survivors, same counters");
    }

    #[test]
    fn bounded_merge_respects_capacity() {
        let src = DelayCache::new();
        for k in 0..20u128 {
            src.insert(fp(k), entry(k as f64));
        }
        let dst = DelayCache::with_shards_and_capacity(1, 5);
        dst.merge(&src);
        assert_eq!(dst.len(), 5, "merge must not blow the bound");
        assert_eq!(dst.stats().evictions, 15);
        assert_eq!(dst.stats().inserts, 0, "merge still bypasses the insert counter");
    }

    #[test]
    fn unbounded_cache_never_evicts() {
        let cache = DelayCache::new();
        assert!(!cache.bounded());
        assert_eq!(cache.capacity(), None);
        for k in 0..1000u128 {
            cache.insert(fp(k), entry(k as f64));
        }
        assert_eq!(cache.len(), 1000);
        assert_eq!(cache.stats().evictions, 0);
    }

    #[test]
    fn entries_are_sorted() {
        let cache = DelayCache::new();
        for k in [5u128, 1, 9, 3] {
            cache.insert(fp(k), entry(k as f64));
        }
        let keys: Vec<u128> = cache.entries().iter().map(|&(f, _)| f.0).collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
    }
}
