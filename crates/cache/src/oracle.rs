//! The memoizing [`DelayOracle`] wrapper.

use crate::fingerprint::{canonicalize, CanonicalSubgraph};
use crate::store::{CacheStats, CachedDelay, DelayCache};
use isdc_ir::{Graph, NodeId};
use isdc_synth::{DelayOracle, DelayReport};
use std::sync::Arc;

/// Wraps any [`DelayOracle`], memoizing evaluations by structural
/// fingerprint.
///
/// On a hit the cached per-output arrivals — stored against canonical member
/// indices — are remapped onto the caller's node ids, so a report learned
/// from one occurrence of a structure is replayed verbatim onto every other
/// occurrence, across iterations, designs and (with a persisted cache)
/// process runs.
///
/// The wrapper is transparent: cold paths return the inner oracle's report
/// unchanged, and warm paths reproduce it bit-identically.
///
/// # Examples
///
/// ```
/// use isdc_cache::CachingOracle;
/// use isdc_ir::{Graph, OpKind};
/// use isdc_synth::{DelayOracle, SynthesisOracle};
/// use isdc_techlib::TechLibrary;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut g = Graph::new("t");
/// let a = g.param("a", 16);
/// let b = g.param("b", 16);
/// let x = g.binary(OpKind::Add, a, b)?;
/// g.set_output(x);
///
/// let oracle = CachingOracle::new(SynthesisOracle::new(TechLibrary::sky130()));
/// let cold = oracle.evaluate(&g, &[x]);
/// let warm = oracle.evaluate(&g, &[x]);
/// assert_eq!(cold, warm);
/// assert_eq!(oracle.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CachingOracle<O> {
    inner: O,
    cache: Arc<DelayCache>,
    name: String,
}

impl<O: DelayOracle> CachingOracle<O> {
    /// Wraps `inner` with a fresh private cache.
    pub fn new(inner: O) -> Self {
        Self::with_cache(inner, Arc::new(DelayCache::new()))
    }

    /// Wraps `inner` with a shared cache (e.g. one loaded from a snapshot,
    /// or shared between oracles).
    pub fn with_cache(inner: O, cache: Arc<DelayCache>) -> Self {
        let name = format!("cached-{}", inner.name());
        Self { inner, cache, name }
    }

    /// The shared cache handle.
    pub fn cache(&self) -> &Arc<DelayCache> {
        &self.cache
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Counter snapshot of the underlying cache.
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Converts an inner report into a cache entry keyed by canonical indices.
fn entry_from_report(canon: &CanonicalSubgraph, report: &DelayReport) -> CachedDelay {
    let mut arrivals: Vec<(u32, f64)> = report
        .output_arrivals
        .iter()
        .filter_map(|&(id, ps)| canon.index_of(id).map(|i| (i, ps)))
        .collect();
    arrivals.sort_unstable_by_key(|&(i, _)| i);
    CachedDelay {
        delay_ps: report.delay_ps,
        aig_depth: report.aig_depth,
        and_count: report.and_count,
        arrivals,
    }
}

/// Replays a cache entry onto the caller's node ids, in ascending-id order
/// (the order every bundled oracle produces).
fn report_from_entry(canon: &CanonicalSubgraph, entry: &CachedDelay) -> DelayReport {
    let mut output_arrivals: Vec<(NodeId, f64)> =
        entry.arrivals.iter().filter_map(|&(i, ps)| canon.node_at(i).map(|id| (id, ps))).collect();
    output_arrivals.sort_unstable_by_key(|&(id, _)| id);
    DelayReport {
        delay_ps: entry.delay_ps,
        aig_depth: entry.aig_depth,
        and_count: entry.and_count,
        output_arrivals,
    }
}

impl<O: DelayOracle> DelayOracle for CachingOracle<O> {
    fn evaluate(&self, graph: &Graph, members: &[NodeId]) -> DelayReport {
        isdc_faults::fire("oracle/eval");
        let canon = canonicalize(graph, members);
        if let Some(entry) = self.cache.get(canon.fingerprint) {
            return report_from_entry(&canon, &entry);
        }
        let report = self.inner.evaluate(graph, members);
        self.cache.insert(canon.fingerprint, entry_from_report(&canon, &report));
        report
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::{Graph, OpKind};
    use isdc_synth::{NaiveSumOracle, OpDelayModel, SynthesisOracle};
    use isdc_techlib::TechLibrary;

    fn adder_chain(n: usize) -> (Graph, Vec<NodeId>) {
        let mut g = Graph::new("chain");
        let mut acc = g.param("p0", 16);
        let mut ops = Vec::new();
        for i in 1..=n {
            let p = g.param(format!("p{i}"), 16);
            acc = g.binary(OpKind::Add, acc, p).unwrap();
            ops.push(acc);
        }
        g.set_output(acc);
        (g, ops)
    }

    #[test]
    fn warm_report_is_bit_identical() {
        let (g, ops) = adder_chain(4);
        let inner = SynthesisOracle::new(TechLibrary::sky130());
        let reference = inner.evaluate(&g, &ops);
        let cached = CachingOracle::new(inner);
        let cold = cached.evaluate(&g, &ops);
        let warm = cached.evaluate(&g, &ops);
        assert_eq!(cold, reference);
        assert_eq!(warm, reference);
        let stats = cached.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (1, 1, 1));
    }

    #[test]
    fn hit_replays_onto_different_node_ids() {
        // Two structurally identical chains inside one graph at different
        // ids: the second evaluation must be a hit and must report arrivals
        // on the *second* chain's ids.
        let mut g = Graph::new("t");
        let mut first = Vec::new();
        let mut second = Vec::new();
        for (tag, out) in [("x", &mut first), ("y", &mut second)] {
            let mut acc = g.param(format!("{tag}0"), 8);
            for i in 1..=3 {
                let p = g.param(format!("{tag}{i}"), 8);
                acc = g.binary(OpKind::Add, acc, p).unwrap();
                out.push(acc);
            }
            g.set_output(acc);
        }
        let inner = SynthesisOracle::new(TechLibrary::sky130());
        let direct_second = inner.evaluate(&g, &second);
        let cached = CachingOracle::new(inner);
        let _ = cached.evaluate(&g, &first);
        let replayed = cached.evaluate(&g, &second);
        assert_eq!(cached.stats().hits, 1, "second chain must hit");
        assert_eq!(replayed, direct_second, "replay must match a direct evaluation");
        for (id, _) in &replayed.output_arrivals {
            assert!(second.contains(id) || !first.contains(id));
        }
    }

    #[test]
    fn distinct_structures_do_not_collide() {
        let (g, ops) = adder_chain(4);
        let cached = CachingOracle::new(SynthesisOracle::new(TechLibrary::sky130()));
        let whole = cached.evaluate(&g, &ops);
        let prefix = cached.evaluate(&g, &ops[..2]);
        assert_eq!(cached.stats().hits, 0);
        assert!(prefix.delay_ps < whole.delay_ps);
    }

    #[test]
    fn works_for_naive_sum_oracle_too() {
        // NaiveSumOracle reports arrivals for *every* member, not just
        // outputs; the canonical-index mapping must carry all of them.
        let (g, ops) = adder_chain(3);
        let lib = TechLibrary::sky130();
        let inner = NaiveSumOracle::new(OpDelayModel::new(lib));
        let reference = inner.evaluate(&g, &ops);
        let cached = CachingOracle::new(inner);
        let _ = cached.evaluate(&g, &ops);
        let warm = cached.evaluate(&g, &ops);
        assert_eq!(warm, reference);
        assert_eq!(warm.output_arrivals.len(), ops.len());
    }

    #[test]
    fn shared_cache_spans_oracles() {
        let (g, ops) = adder_chain(3);
        let cache = Arc::new(DelayCache::new());
        let a = CachingOracle::with_cache(
            SynthesisOracle::new(TechLibrary::sky130()),
            Arc::clone(&cache),
        );
        let b = CachingOracle::with_cache(
            SynthesisOracle::new(TechLibrary::sky130()),
            Arc::clone(&cache),
        );
        let ra = a.evaluate(&g, &ops);
        let rb = b.evaluate(&g, &ops);
        assert_eq!(ra, rb);
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn name_reflects_inner() {
        let inner = SynthesisOracle::new(TechLibrary::sky130());
        let inner_name = inner.name().to_string();
        let cached = CachingOracle::new(inner);
        assert_eq!(cached.name(), format!("cached-{inner_name}"));
    }

    #[test]
    fn parallel_evaluation_through_cache_matches_serial() {
        let (g, ops) = adder_chain(6);
        let subgraphs: Vec<Vec<NodeId>> = (1..=6).map(|k| ops[..k].to_vec()).collect();
        let inner = SynthesisOracle::new(TechLibrary::sky130());
        let serial = isdc_synth::evaluate_parallel(&inner, &g, &subgraphs, 1);
        let cached = CachingOracle::new(inner);
        let parallel = isdc_synth::evaluate_parallel(&cached, &g, &subgraphs, 4);
        assert_eq!(serial, parallel);
        // And fully warm:
        let warm = isdc_synth::evaluate_parallel(&cached, &g, &subgraphs, 4);
        assert_eq!(serial, warm);
        assert_eq!(cached.stats().hits, 6);
    }
}
