//! On-disk snapshots of a [`DelayCache`] as JSON.
//!
//! The format is a single object:
//!
//! ```json
//! {
//!   "version": 2,
//!   "oracle": "synthesis",
//!   "entries": [
//!     {"key": "<32 hex digits>", "delay_ps": 812.5, "aig_depth": 14,
//!      "and_count": 220, "arrivals": [[0, 812.5], [2, 640.0]]}
//!   ],
//!   "potentials": [
//!     {"key": "<32 hex digits>", "clock_ps": 2500, "pi": [0, -1, -2]}
//!   ]
//! }
//! ```
//!
//! The `oracle` tag records which [`DelayOracle`](isdc_synth::DelayOracle)
//! (by `name()`) produced the entries; loading rejects a mismatch, so a
//! snapshot cached from one downstream flow is never silently replayed
//! against another. Oracles that time differently (custom script, different
//! library) must therefore report distinct names.
//!
//! **Versioning.** Version 2 added the `potentials` section — LP solver
//! potentials per (design fingerprint, clock period), the cross-run
//! warm-start currency of [`IsdcSession`](../isdc_core). The compatibility
//! rule: a loader accepts its own version and every earlier one (version-1
//! snapshots simply carry no potentials), and always writes the current
//! version. Potentials are doubly safeguarded: by the oracle tag here, and
//! by the importer, which validates a vector against its own LP before
//! using it — so even a mis-tagged vector can only cost a cold start, never
//! a wrong schedule.
//!
//! Floats are written in Rust's shortest-roundtrip form, so a
//! save/load cycle reproduces bit-identical `f64`s. The codec is hand-rolled
//! on [`crate::json`] because the build environment cannot fetch
//! `serde_json`; it accepts any whitespace and ignores unknown object keys,
//! so the format can grow.

use crate::fingerprint::Fingerprint;
use crate::json::{escape as escape_json, Parser};
use crate::store::{CachedDelay, DelayCache, StoredPotentials};
use std::fmt::Write as _;
use std::path::Path;

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u64 = 2;

/// Oldest snapshot version [`DelayCache::merge_json`] still accepts.
pub const OLDEST_SUPPORTED_SNAPSHOT_VERSION: u64 = 1;

impl DelayCache {
    /// Serializes every entry to the snapshot JSON format, stamped with the
    /// producing oracle's name (escaped as needed).
    pub fn to_json(&self, oracle: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"version\":");
        let _ = write!(out, "{SNAPSHOT_VERSION}");
        let _ = write!(out, ",\"oracle\":\"{}\"", escape_json(oracle));
        out.push_str(",\"entries\":[");
        for (i, (fp, entry)) in self.entries().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"key\":\"{fp}\",\"delay_ps\":{:?},\"aig_depth\":{},\"and_count\":{},\"arrivals\":[",
                entry.delay_ps, entry.aig_depth, entry.and_count
            );
            for (j, (idx, ps)) in entry.arrivals.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{idx},{ps:?}]");
            }
            out.push_str("]}");
        }
        out.push_str("],\"potentials\":[");
        for (i, (fp, stored)) in self.potential_entries().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"key\":\"{fp}\",\"clock_ps\":{:?},\"pi\":[", stored.clock_ps);
            for (j, p) in stored.pi.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{p}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Merges entries from snapshot JSON into this cache (silently, without
    /// touching the hit/miss/insert counters). Returns the number of entries
    /// merged.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct, and rejects
    /// snapshots whose `oracle` tag is missing or differs from `oracle` —
    /// delays measured by one downstream flow must not be replayed against
    /// another.
    pub fn merge_json(&self, json: &str, oracle: &str) -> Result<usize, String> {
        let mut p = Parser::new(json);
        // Parse fully before touching the cache, so a rejected snapshot
        // (bad tag, malformed tail) merges nothing.
        let mut parsed: Vec<(Fingerprint, CachedDelay)> = Vec::new();
        let mut potentials: Vec<(Fingerprint, StoredPotentials)> = Vec::new();
        let mut tagged: Option<String> = None;
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "version" => {
                    let v = p.number()? as u64;
                    if !(OLDEST_SUPPORTED_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&v) {
                        return Err(format!("unsupported snapshot version {v}"));
                    }
                }
                "oracle" => {
                    let tag = p.string()?;
                    if tag != oracle {
                        return Err(format!(
                            "snapshot was produced by oracle `{tag}`, not `{oracle}`"
                        ));
                    }
                    tagged = Some(tag);
                }
                "entries" => {
                    p.expect(b'[')?;
                    if !p.peek_close(b']') {
                        loop {
                            parsed.push(parse_entry(&mut p)?);
                            if !p.comma_or_close(b']')? {
                                break;
                            }
                        }
                    }
                }
                "potentials" => {
                    p.expect(b'[')?;
                    if !p.peek_close(b']') {
                        loop {
                            potentials.push(parse_potentials(&mut p)?);
                            if !p.comma_or_close(b']')? {
                                break;
                            }
                        }
                    }
                }
                _ => p.skip_value()?,
            }
            if !p.comma_or_close(b'}')? {
                break;
            }
        }
        if tagged.is_none() {
            return Err("snapshot has no oracle tag".to_string());
        }
        let merged = parsed.len();
        for (fp, entry) in parsed {
            self.insert_silent(fp, entry);
        }
        for (fp, stored) in potentials {
            self.store_potentials(fp, stored.clock_ps, stored.pi);
        }
        Ok(merged)
    }

    /// Best-effort convenience: [`DelayCache::merge_json`] from a file.
    ///
    /// # Errors
    ///
    /// Returns the I/O or parse failure, including an oracle-tag mismatch.
    pub fn load(&self, path: &Path, oracle: &str) -> Result<usize, String> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        self.merge_json(&json, oracle)
    }

    /// Writes the snapshot JSON to `path`, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns the I/O failure.
    pub fn save(&self, path: &Path, oracle: &str) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
        }
        std::fs::write(path, self.to_json(oracle))
            .map_err(|e| format!("writing {}: {e}", path.display()))
    }
}

fn parse_entry(p: &mut Parser<'_>) -> Result<(Fingerprint, CachedDelay), String> {
    let mut fp: Option<Fingerprint> = None;
    let mut entry = CachedDelay { delay_ps: 0.0, aig_depth: 0, and_count: 0, arrivals: Vec::new() };
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "key" => {
                let s = p.string()?;
                fp = Some(Fingerprint::parse(&s).ok_or_else(|| format!("bad fingerprint `{s}`"))?);
            }
            "delay_ps" => entry.delay_ps = p.number()?,
            "aig_depth" => entry.aig_depth = p.number()? as u32,
            "and_count" => entry.and_count = p.number()? as usize,
            "arrivals" => {
                p.expect(b'[')?;
                if !p.peek_close(b']') {
                    loop {
                        p.expect(b'[')?;
                        let idx = p.number()? as u32;
                        p.expect(b',')?;
                        let ps = p.number()?;
                        p.expect(b']')?;
                        entry.arrivals.push((idx, ps));
                        if !p.comma_or_close(b']')? {
                            break;
                        }
                    }
                }
            }
            _ => p.skip_value()?,
        }
        if !p.comma_or_close(b'}')? {
            break;
        }
    }
    let fp = fp.ok_or("entry without key")?;
    Ok((fp, entry))
}

fn parse_potentials(p: &mut Parser<'_>) -> Result<(Fingerprint, StoredPotentials), String> {
    let mut fp: Option<Fingerprint> = None;
    let mut stored = StoredPotentials { clock_ps: 0.0, pi: Vec::new() };
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "key" => {
                let s = p.string()?;
                fp = Some(Fingerprint::parse(&s).ok_or_else(|| format!("bad fingerprint `{s}`"))?);
            }
            "clock_ps" => stored.clock_ps = p.number()?,
            "pi" => {
                p.expect(b'[')?;
                if !p.peek_close(b']') {
                    loop {
                        stored.pi.push(p.number()? as i64);
                        if !p.comma_or_close(b']')? {
                            break;
                        }
                    }
                }
            }
            _ => p.skip_value()?,
        }
        if !p.comma_or_close(b'}')? {
            break;
        }
    }
    let fp = fp.ok_or("potentials without key")?;
    Ok((fp, stored))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DelayCache {
        let cache = DelayCache::new();
        cache.insert(
            Fingerprint(0xdeadbeef),
            CachedDelay {
                delay_ps: 812.625,
                aig_depth: 14,
                and_count: 220,
                arrivals: vec![(0, 812.625), (2, 1.0 / 3.0)],
            },
        );
        cache.insert(
            Fingerprint(7),
            CachedDelay { delay_ps: 0.25, aig_depth: 1, and_count: 2, arrivals: vec![] },
        );
        cache
    }

    #[test]
    fn json_roundtrip_is_bit_identical() {
        let cache = sample();
        let restored = DelayCache::new();
        let merged = restored.merge_json(&cache.to_json("synthesis"), "synthesis").unwrap();
        assert_eq!(merged, 2);
        assert_eq!(restored.entries(), cache.entries());
    }

    #[test]
    fn file_roundtrip() {
        let cache = sample();
        let path = std::env::temp_dir()
            .join(format!("isdc-cache-persist-test-{}.json", std::process::id()));
        cache.save(&path, "synthesis").unwrap();
        let restored = DelayCache::new();
        assert_eq!(restored.load(&path, "synthesis").unwrap(), 2);
        assert_eq!(restored.entries(), cache.entries());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn whitespace_and_unknown_keys_tolerated() {
        let json = r#" {
            "version" : 1 ,
            "oracle" : "synthesis" ,
            "comment" : "made by a future version, with sneaky } and ] brackets" ,
            "entries" : [ {
                "key" : "000000000000000000000000000000ff" ,
                "future_field" : [ 1 , { "x" : 2 , "note" : "a}b]c" } ] ,
                "delay_ps" : 10.5 ,
                "aig_depth" : 2 ,
                "and_count" : 3 ,
                "arrivals" : [ [ 1 , 10.5 ] ]
            } ]
        } "#;
        let cache = DelayCache::new();
        assert_eq!(cache.merge_json(json, "synthesis").unwrap(), 1);
        let got = cache.get(Fingerprint(0xff)).unwrap();
        assert_eq!(got.delay_ps, 10.5);
        assert_eq!(got.arrivals, vec![(1, 10.5)]);
    }

    #[test]
    fn potentials_roundtrip_with_entries() {
        let cache = sample();
        cache.store_potentials(Fingerprint(0xabc), 2500.0, vec![0, -1, -2, 7]);
        cache.store_potentials(Fingerprint(0xabc), 3000.0, vec![0, 0, -1, 5]);
        let restored = DelayCache::new();
        restored.merge_json(&cache.to_json("synthesis"), "synthesis").unwrap();
        assert_eq!(restored.entries(), cache.entries());
        assert_eq!(restored.potential_entries(), cache.potential_entries());
        assert_eq!(
            restored.nearest_potentials(Fingerprint(0xabc), 2600.0),
            Some((2500.0, vec![0, -1, -2, 7])),
        );
    }

    #[test]
    fn version_1_snapshot_still_loads_without_potentials() {
        // The compatibility rule: all versions back to 1 are accepted; a
        // v1 snapshot just carries no potentials section.
        let json = r#"{"version":1,"oracle":"synthesis","entries":[
            {"key":"0000000000000000000000000000000a","delay_ps":3.5,
             "aig_depth":1,"and_count":2,"arrivals":[[0,3.5]]}]}"#;
        let cache = DelayCache::new();
        assert_eq!(cache.merge_json(json, "synthesis").unwrap(), 1);
        assert!(cache.potential_entries().is_empty());
    }

    #[test]
    fn wrong_version_rejected() {
        let cache = DelayCache::new();
        let err = cache
            .merge_json(r#"{"version":99,"oracle":"synthesis","entries":[]}"#, "synthesis")
            .unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn oracle_mismatch_rejected() {
        let cache = sample();
        let json = cache.to_json("synthesis");
        let restored = DelayCache::new();
        let err = restored.merge_json(&json, "aig-depth").unwrap_err();
        assert!(err.contains("synthesis") && err.contains("aig-depth"), "{err}");
        assert!(restored.is_empty(), "a rejected snapshot must merge nothing");
    }

    #[test]
    fn awkward_oracle_names_roundtrip() {
        // Nothing forbids quotes or backslashes in a custom oracle's name;
        // persistence must escape rather than panic or corrupt.
        let name = r#"my "fast\slow" oracle"#;
        let cache = sample();
        let restored = DelayCache::new();
        assert_eq!(restored.merge_json(&cache.to_json(name), name).unwrap(), 2);
        assert_eq!(restored.entries(), cache.entries());
        assert!(restored.merge_json(&cache.to_json(name), "other").is_err());
    }

    #[test]
    fn untagged_snapshot_rejected() {
        let cache = DelayCache::new();
        let err = cache.merge_json(r#"{"version":1,"entries":[]}"#, "synthesis").unwrap_err();
        assert!(err.contains("no oracle tag"), "{err}");
    }

    #[test]
    fn malformed_input_rejected() {
        let cache = DelayCache::new();
        assert!(cache.merge_json("not json", "synthesis").is_err());
        let missing_key = r#"{"version":1,"oracle":"synthesis","entries":[{"delay_ps":1}]}"#;
        assert!(cache.merge_json(missing_key, "synthesis").is_err());
    }

    #[test]
    fn empty_cache_roundtrip() {
        let cache = DelayCache::new();
        let restored = DelayCache::new();
        assert_eq!(restored.merge_json(&cache.to_json("synthesis"), "synthesis").unwrap(), 0);
        assert!(restored.is_empty());
    }

    #[test]
    fn load_does_not_touch_counters() {
        let cache = sample();
        let restored = DelayCache::new();
        restored.merge_json(&cache.to_json("synthesis"), "synthesis").unwrap();
        let stats = restored.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (0, 0, 0));
    }
}
