//! On-disk snapshots of a [`DelayCache`] as JSON.
//!
//! The format is a single object:
//!
//! ```json
//! {
//!   "version": 2,
//!   "oracle": "synthesis",
//!   "entries": [
//!     {"key": "<32 hex digits>", "delay_ps": 812.5, "aig_depth": 14,
//!      "and_count": 220, "arrivals": [[0, 812.5], [2, 640.0]]}
//!   ],
//!   "potentials": [
//!     {"key": "<32 hex digits>", "clock_ps": 2500, "pi": [0, -1, -2]}
//!   ]
//! }
//! ```
//!
//! The `oracle` tag records which [`DelayOracle`](isdc_synth::DelayOracle)
//! (by `name()`) produced the entries; loading rejects a mismatch, so a
//! snapshot cached from one downstream flow is never silently replayed
//! against another. Oracles that time differently (custom script, different
//! library) must therefore report distinct names.
//!
//! **Versioning.** Version 2 added the `potentials` section — LP solver
//! potentials per (design fingerprint, clock period), the cross-run
//! warm-start currency of [`IsdcSession`](../isdc_core). Version 3 added
//! the crash-safety layer: files are written temp-then-rename (a torn
//! process dies before the rename and leaves the old snapshot intact) and
//! carry a trailing integrity footer line, `#crc32:xxxxxxxx`, covering the
//! JSON body — so truncation and bit corruption are *detected*, not
//! silently merged. The compatibility rule: a loader accepts its own
//! version and every earlier one (v1 has no potentials; v1/v2 have no
//! footer and load unchanged), and always writes the current version.
//! Potentials are doubly safeguarded: by the oracle tag here, and by the
//! importer, which validates a vector against its own LP before using it —
//! so even a mis-tagged vector can only cost a cold start, never a wrong
//! schedule.
//!
//! **Recovery.** [`DelayCache::load`] stays strict (an error for every
//! failure); [`DelayCache::load_resilient`] implements the fleet policy: a
//! corrupt file (truncated, checksum mismatch, unparseable, unsupported
//! version) is *quarantined* — renamed to `<name>.corrupt` so the evidence
//! survives and the next save cannot be confused with it — and the run
//! continues on a cold cache, reporting a [`SnapshotLoad::ColdStart`]
//! warning instead of erroring. A snapshot produced by a *different*
//! oracle is foreign, not corrupt: it is left untouched on disk.
//!
//! Floats are written in Rust's shortest-roundtrip form, so a
//! save/load cycle reproduces bit-identical `f64`s. The codec is hand-rolled
//! on [`crate::json`] because the build environment cannot fetch
//! `serde_json`; it accepts any whitespace and ignores unknown object keys,
//! so the format can grow.

use crate::fingerprint::Fingerprint;
use crate::json::{escape as escape_json, Parser};
use crate::store::{CachedDelay, DelayCache, StoredPotentials};
use isdc_faults::FaultKind;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u64 = 3;

/// Oldest snapshot version [`DelayCache::merge_json`] still accepts.
pub const OLDEST_SUPPORTED_SNAPSHOT_VERSION: u64 = 1;

/// First version whose files must end in a `#crc32:` integrity footer; a
/// v3 body without one is a truncated write, not a valid snapshot.
const FOOTER_REQUIRED_VERSION: u64 = 3;

/// CRC-32 (IEEE 802.3, reflected, the `cksum -o3`/zlib polynomial) over
/// `data`. Bitwise rather than table-driven: snapshots are small enough
/// that the simpler code wins over 1 KiB of table.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Splits a snapshot file's contents into the JSON body and its verified
/// footer checksum, if a footer is present.
///
/// Accepts exactly the footer [`DelayCache::save`] writes:
/// `\n#crc32:xxxxxxxx\n` after the body.
fn split_footer(data: &str) -> Result<(&str, Option<u32>), String> {
    let trimmed = data.strip_suffix('\n').unwrap_or(data);
    let Some(at) = trimmed.rfind("\n#crc32:") else {
        return Ok((data, None));
    };
    let (body, footer) = (&trimmed[..at], &trimmed[at + "\n#crc32:".len()..]);
    let stored = u32::from_str_radix(footer, 16)
        .map_err(|_| format!("malformed integrity footer `#crc32:{footer}`"))?;
    Ok((body, Some(stored)))
}

/// Best-effort peek at the body's `version` field without mutating
/// anything; `None` when the body is malformed (the merge will report it).
fn peek_version(json: &str) -> Option<u64> {
    let mut p = Parser::new(json);
    p.expect(b'{').ok()?;
    loop {
        let key = p.string().ok()?;
        p.expect(b':').ok()?;
        if key == "version" {
            return Some(p.number().ok()? as u64);
        }
        p.skip_value().ok()?;
        if !p.comma_or_close(b'}').ok()? {
            return None;
        }
    }
}

/// Why a snapshot failed to load, classified for the recovery policy.
enum LoadFailure {
    /// The file could not be read at all.
    Io(std::io::ErrorKind, String),
    /// The bytes are not a valid snapshot — quarantine material.
    Corrupt(String),
    /// A valid snapshot from a different oracle — left untouched on disk.
    Foreign(String),
}

/// The outcome of a resilient snapshot load
/// ([`DelayCache::load_resilient`]): the fleet keeps running on a cold
/// cache instead of erroring when a snapshot is unusable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotLoad {
    /// The snapshot merged cleanly.
    Loaded {
        /// Delay entries merged.
        entries: usize,
    },
    /// No snapshot exists at the path — a normal first run.
    Missing,
    /// The snapshot was unusable; the run proceeds cold.
    ColdStart {
        /// Human-readable cause (checksum mismatch, truncation, foreign
        /// oracle, I/O failure…).
        reason: String,
        /// Where the corrupt file was moved (`<name>.corrupt`), when it
        /// was quarantined. `None` for foreign/I/O causes.
        quarantined: Option<PathBuf>,
    },
}

impl DelayCache {
    /// Serializes every entry to the snapshot JSON format, stamped with the
    /// producing oracle's name (escaped as needed).
    pub fn to_json(&self, oracle: &str) -> String {
        let mut out = String::new();
        out.push_str("{\"version\":");
        let _ = write!(out, "{SNAPSHOT_VERSION}");
        let _ = write!(out, ",\"oracle\":\"{}\"", escape_json(oracle));
        out.push_str(",\"entries\":[");
        for (i, (fp, entry)) in self.entries().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"key\":\"{fp}\",\"delay_ps\":{:?},\"aig_depth\":{},\"and_count\":{},\"arrivals\":[",
                entry.delay_ps, entry.aig_depth, entry.and_count
            );
            for (j, (idx, ps)) in entry.arrivals.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{idx},{ps:?}]");
            }
            out.push_str("]}");
        }
        out.push_str("],\"potentials\":[");
        for (i, (fp, stored)) in self.potential_entries().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"key\":\"{fp}\",\"clock_ps\":{:?},\"pi\":[", stored.clock_ps);
            for (j, p) in stored.pi.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{p}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Merges entries from snapshot JSON into this cache (silently, without
    /// touching the hit/miss/insert counters). Returns the number of entries
    /// merged.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed construct, and rejects
    /// snapshots whose `oracle` tag is missing or differs from `oracle` —
    /// delays measured by one downstream flow must not be replayed against
    /// another.
    pub fn merge_json(&self, json: &str, oracle: &str) -> Result<usize, String> {
        let mut p = Parser::new(json);
        // Parse fully before touching the cache, so a rejected snapshot
        // (bad tag, malformed tail) merges nothing.
        let mut parsed: Vec<(Fingerprint, CachedDelay)> = Vec::new();
        let mut potentials: Vec<(Fingerprint, StoredPotentials)> = Vec::new();
        let mut tagged: Option<String> = None;
        p.expect(b'{')?;
        loop {
            let key = p.string()?;
            p.expect(b':')?;
            match key.as_str() {
                "version" => {
                    let v = p.number()? as u64;
                    if !(OLDEST_SUPPORTED_SNAPSHOT_VERSION..=SNAPSHOT_VERSION).contains(&v) {
                        return Err(format!("unsupported snapshot version {v}"));
                    }
                }
                "oracle" => {
                    let tag = p.string()?;
                    if tag != oracle {
                        return Err(format!(
                            "snapshot was produced by oracle `{tag}`, not `{oracle}`"
                        ));
                    }
                    tagged = Some(tag);
                }
                "entries" => {
                    p.expect(b'[')?;
                    if !p.peek_close(b']') {
                        loop {
                            parsed.push(parse_entry(&mut p)?);
                            if !p.comma_or_close(b']')? {
                                break;
                            }
                        }
                    }
                }
                "potentials" => {
                    p.expect(b'[')?;
                    if !p.peek_close(b']') {
                        loop {
                            potentials.push(parse_potentials(&mut p)?);
                            if !p.comma_or_close(b']')? {
                                break;
                            }
                        }
                    }
                }
                _ => p.skip_value()?,
            }
            if !p.comma_or_close(b'}')? {
                break;
            }
        }
        if tagged.is_none() {
            return Err("snapshot has no oracle tag".to_string());
        }
        let merged = parsed.len();
        for (fp, entry) in parsed {
            self.insert_silent(fp, entry);
        }
        for (fp, stored) in potentials {
            self.store_potentials(fp, stored.clock_ps, stored.pi);
        }
        Ok(merged)
    }

    /// Loads and verifies a snapshot file, classifying any failure for the
    /// recovery policy. Verification (footer checksum, version/footer
    /// agreement, full parse) happens before anything merges, so a
    /// rejected file merges nothing.
    fn load_classified(&self, path: &Path, oracle: &str) -> Result<usize, LoadFailure> {
        let data = std::fs::read_to_string(path)
            .map_err(|e| LoadFailure::Io(e.kind(), format!("reading {}: {e}", path.display())))?;
        if data.is_empty() {
            return Err(LoadFailure::Corrupt("snapshot file is empty".to_string()));
        }
        let (body, footer) = split_footer(&data).map_err(LoadFailure::Corrupt)?;
        if let Some(stored) = footer {
            let actual = crc32(body.as_bytes());
            if actual != stored {
                return Err(LoadFailure::Corrupt(format!(
                    "integrity check failed: footer crc32 {stored:08x}, body crc32 {actual:08x}"
                )));
            }
        } else if peek_version(body).is_some_and(|v| v >= FOOTER_REQUIRED_VERSION) {
            return Err(LoadFailure::Corrupt(
                "snapshot is truncated: version requires an integrity footer, none found"
                    .to_string(),
            ));
        }
        self.merge_json(body, oracle).map_err(|e| {
            // The one non-corruption rejection merge_json produces is the
            // oracle-tag mismatch (see the message it formats above).
            if e.starts_with("snapshot was produced by oracle") {
                LoadFailure::Foreign(e)
            } else {
                LoadFailure::Corrupt(e)
            }
        })
    }

    /// Strict convenience: [`DelayCache::merge_json`] from a file, with the
    /// v3 integrity footer verified when present.
    ///
    /// # Errors
    ///
    /// Returns the I/O, integrity, or parse failure, including an
    /// oracle-tag mismatch. For the degrade-instead-of-error policy use
    /// [`DelayCache::load_resilient`].
    pub fn load(&self, path: &Path, oracle: &str) -> Result<usize, String> {
        self.load_classified(path, oracle).map_err(|failure| match failure {
            LoadFailure::Io(_, e) | LoadFailure::Corrupt(e) | LoadFailure::Foreign(e) => e,
        })
    }

    /// The fleet's snapshot-load policy: merge when the file is intact,
    /// otherwise degrade to a cold start instead of erroring. A *corrupt*
    /// file (truncated/torn write, checksum mismatch, unparseable,
    /// unsupported version) is quarantined by renaming it to
    /// `<name>.corrupt`; a missing file or a foreign oracle's snapshot is
    /// reported without touching the disk. Never panics, never errors.
    pub fn load_resilient(&self, path: &Path, oracle: &str) -> SnapshotLoad {
        match self.load_classified(path, oracle) {
            Ok(entries) => SnapshotLoad::Loaded { entries },
            Err(LoadFailure::Io(std::io::ErrorKind::NotFound, _)) => SnapshotLoad::Missing,
            Err(LoadFailure::Io(_, reason)) | Err(LoadFailure::Foreign(reason)) => {
                SnapshotLoad::ColdStart { reason, quarantined: None }
            }
            Err(LoadFailure::Corrupt(reason)) => {
                let mut name = path.as_os_str().to_os_string();
                name.push(".corrupt");
                let target = PathBuf::from(name);
                let quarantined = std::fs::rename(path, &target).ok().map(|()| target);
                SnapshotLoad::ColdStart { reason, quarantined }
            }
        }
    }

    /// Writes the snapshot to `path` crash-safely, creating parent
    /// directories: the JSON body plus its `#crc32:` footer land in a
    /// sibling `<name>.tmp` file which is then renamed over `path`, so a
    /// crash mid-write can tear only the temp file — the previous snapshot
    /// survives intact — and a torn rename target is detectable by the
    /// footer check.
    ///
    /// # Errors
    ///
    /// Returns the I/O failure (or an injected `snapshot/write` fault).
    pub fn save(&self, path: &Path, oracle: &str) -> Result<(), String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("creating {}: {e}", parent.display()))?;
            }
        }
        let body = self.to_json(oracle);
        let data = format!("{body}\n#crc32:{:08x}\n", crc32(body.as_bytes()));
        match isdc_faults::check("snapshot/write") {
            // A torn write: half the bytes land at the final path with no
            // rename barrier, and the caller is told nothing — exactly the
            // evidence a mid-write crash leaves. The next load must detect
            // and quarantine it.
            Some(FaultKind::TruncateWrite) => {
                return std::fs::write(path, &data.as_bytes()[..data.len() / 2])
                    .map_err(|e| format!("writing {}: {e}", path.display()));
            }
            Some(FaultKind::Error) => {
                return Err(format!("injected error fault at snapshot/write ({})", path.display()));
            }
            Some(FaultKind::Panic) => panic!("injected panic fault at snapshot/write"),
            // A stall sleeps inside the hook and surfaces as None.
            Some(FaultKind::Stall) | None => {}
        }
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        std::fs::write(&tmp, &data).map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, path)
            .map_err(|e| format!("renaming {} over {}: {e}", tmp.display(), path.display()))
    }
}

fn parse_entry(p: &mut Parser<'_>) -> Result<(Fingerprint, CachedDelay), String> {
    let mut fp: Option<Fingerprint> = None;
    let mut entry = CachedDelay { delay_ps: 0.0, aig_depth: 0, and_count: 0, arrivals: Vec::new() };
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "key" => {
                let s = p.string()?;
                fp = Some(Fingerprint::parse(&s).ok_or_else(|| format!("bad fingerprint `{s}`"))?);
            }
            "delay_ps" => entry.delay_ps = p.number()?,
            "aig_depth" => entry.aig_depth = p.number()? as u32,
            "and_count" => entry.and_count = p.number()? as usize,
            "arrivals" => {
                p.expect(b'[')?;
                if !p.peek_close(b']') {
                    loop {
                        p.expect(b'[')?;
                        let idx = p.number()? as u32;
                        p.expect(b',')?;
                        let ps = p.number()?;
                        p.expect(b']')?;
                        entry.arrivals.push((idx, ps));
                        if !p.comma_or_close(b']')? {
                            break;
                        }
                    }
                }
            }
            _ => p.skip_value()?,
        }
        if !p.comma_or_close(b'}')? {
            break;
        }
    }
    let fp = fp.ok_or("entry without key")?;
    Ok((fp, entry))
}

fn parse_potentials(p: &mut Parser<'_>) -> Result<(Fingerprint, StoredPotentials), String> {
    let mut fp: Option<Fingerprint> = None;
    let mut stored = StoredPotentials { clock_ps: 0.0, pi: Vec::new() };
    p.expect(b'{')?;
    loop {
        let key = p.string()?;
        p.expect(b':')?;
        match key.as_str() {
            "key" => {
                let s = p.string()?;
                fp = Some(Fingerprint::parse(&s).ok_or_else(|| format!("bad fingerprint `{s}`"))?);
            }
            "clock_ps" => stored.clock_ps = p.number()?,
            "pi" => {
                p.expect(b'[')?;
                if !p.peek_close(b']') {
                    loop {
                        stored.pi.push(p.number()? as i64);
                        if !p.comma_or_close(b']')? {
                            break;
                        }
                    }
                }
            }
            _ => p.skip_value()?,
        }
        if !p.comma_or_close(b'}')? {
            break;
        }
    }
    let fp = fp.ok_or("potentials without key")?;
    Ok((fp, stored))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DelayCache {
        let cache = DelayCache::new();
        cache.insert(
            Fingerprint(0xdeadbeef),
            CachedDelay {
                delay_ps: 812.625,
                aig_depth: 14,
                and_count: 220,
                arrivals: vec![(0, 812.625), (2, 1.0 / 3.0)],
            },
        );
        cache.insert(
            Fingerprint(7),
            CachedDelay { delay_ps: 0.25, aig_depth: 1, and_count: 2, arrivals: vec![] },
        );
        cache
    }

    #[test]
    fn json_roundtrip_is_bit_identical() {
        let cache = sample();
        let restored = DelayCache::new();
        let merged = restored.merge_json(&cache.to_json("synthesis"), "synthesis").unwrap();
        assert_eq!(merged, 2);
        assert_eq!(restored.entries(), cache.entries());
    }

    #[test]
    fn file_roundtrip() {
        let cache = sample();
        let path = std::env::temp_dir()
            .join(format!("isdc-cache-persist-test-{}.json", std::process::id()));
        cache.save(&path, "synthesis").unwrap();
        let restored = DelayCache::new();
        assert_eq!(restored.load(&path, "synthesis").unwrap(), 2);
        assert_eq!(restored.entries(), cache.entries());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn whitespace_and_unknown_keys_tolerated() {
        let json = r#" {
            "version" : 1 ,
            "oracle" : "synthesis" ,
            "comment" : "made by a future version, with sneaky } and ] brackets" ,
            "entries" : [ {
                "key" : "000000000000000000000000000000ff" ,
                "future_field" : [ 1 , { "x" : 2 , "note" : "a}b]c" } ] ,
                "delay_ps" : 10.5 ,
                "aig_depth" : 2 ,
                "and_count" : 3 ,
                "arrivals" : [ [ 1 , 10.5 ] ]
            } ]
        } "#;
        let cache = DelayCache::new();
        assert_eq!(cache.merge_json(json, "synthesis").unwrap(), 1);
        let got = cache.get(Fingerprint(0xff)).unwrap();
        assert_eq!(got.delay_ps, 10.5);
        assert_eq!(got.arrivals, vec![(1, 10.5)]);
    }

    #[test]
    fn potentials_roundtrip_with_entries() {
        let cache = sample();
        cache.store_potentials(Fingerprint(0xabc), 2500.0, vec![0, -1, -2, 7]);
        cache.store_potentials(Fingerprint(0xabc), 3000.0, vec![0, 0, -1, 5]);
        let restored = DelayCache::new();
        restored.merge_json(&cache.to_json("synthesis"), "synthesis").unwrap();
        assert_eq!(restored.entries(), cache.entries());
        assert_eq!(restored.potential_entries(), cache.potential_entries());
        assert_eq!(
            restored.nearest_potentials(Fingerprint(0xabc), 2600.0),
            Some((2500.0, vec![0, -1, -2, 7])),
        );
    }

    #[test]
    fn version_1_snapshot_still_loads_without_potentials() {
        // The compatibility rule: all versions back to 1 are accepted; a
        // v1 snapshot just carries no potentials section.
        let json = r#"{"version":1,"oracle":"synthesis","entries":[
            {"key":"0000000000000000000000000000000a","delay_ps":3.5,
             "aig_depth":1,"and_count":2,"arrivals":[[0,3.5]]}]}"#;
        let cache = DelayCache::new();
        assert_eq!(cache.merge_json(json, "synthesis").unwrap(), 1);
        assert!(cache.potential_entries().is_empty());
    }

    #[test]
    fn wrong_version_rejected() {
        let cache = DelayCache::new();
        let err = cache
            .merge_json(r#"{"version":99,"oracle":"synthesis","entries":[]}"#, "synthesis")
            .unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn oracle_mismatch_rejected() {
        let cache = sample();
        let json = cache.to_json("synthesis");
        let restored = DelayCache::new();
        let err = restored.merge_json(&json, "aig-depth").unwrap_err();
        assert!(err.contains("synthesis") && err.contains("aig-depth"), "{err}");
        assert!(restored.is_empty(), "a rejected snapshot must merge nothing");
    }

    #[test]
    fn awkward_oracle_names_roundtrip() {
        // Nothing forbids quotes or backslashes in a custom oracle's name;
        // persistence must escape rather than panic or corrupt.
        let name = r#"my "fast\slow" oracle"#;
        let cache = sample();
        let restored = DelayCache::new();
        assert_eq!(restored.merge_json(&cache.to_json(name), name).unwrap(), 2);
        assert_eq!(restored.entries(), cache.entries());
        assert!(restored.merge_json(&cache.to_json(name), "other").is_err());
    }

    #[test]
    fn untagged_snapshot_rejected() {
        let cache = DelayCache::new();
        let err = cache.merge_json(r#"{"version":1,"entries":[]}"#, "synthesis").unwrap_err();
        assert!(err.contains("no oracle tag"), "{err}");
    }

    #[test]
    fn malformed_input_rejected() {
        let cache = DelayCache::new();
        assert!(cache.merge_json("not json", "synthesis").is_err());
        let missing_key = r#"{"version":1,"oracle":"synthesis","entries":[{"delay_ps":1}]}"#;
        assert!(cache.merge_json(missing_key, "synthesis").is_err());
    }

    #[test]
    fn empty_cache_roundtrip() {
        let cache = DelayCache::new();
        let restored = DelayCache::new();
        assert_eq!(restored.merge_json(&cache.to_json("synthesis"), "synthesis").unwrap(), 0);
        assert!(restored.is_empty());
    }

    /// A unique temp path per test so `cargo test`'s parallel threads
    /// never collide.
    fn temp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("isdc-persist-{tag}-{}.json", std::process::id()))
    }

    /// Asserts a written-then-mangled snapshot loads as a quarantined cold
    /// start: nothing merged, file moved aside to `.corrupt`, no panic.
    fn assert_quarantined(tag: &str, mangle: impl FnOnce(Vec<u8>) -> Vec<u8>) {
        let path = temp_path(tag);
        sample().save(&path, "synthesis").unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, mangle(bytes)).unwrap();
        let cold = DelayCache::new();
        let outcome = cold.load_resilient(&path, "synthesis");
        let SnapshotLoad::ColdStart { reason, quarantined } = outcome else {
            panic!("{tag}: expected a cold start, got {outcome:?}");
        };
        let moved = quarantined.expect("corrupt file must be quarantined");
        assert!(moved.to_string_lossy().ends_with(".corrupt"), "{moved:?}");
        assert!(moved.exists(), "{tag}: quarantined file must survive as evidence");
        assert!(!path.exists(), "{tag}: the bad file must be moved out of the way");
        assert!(cold.is_empty(), "{tag}: nothing may merge from a corrupt file ({reason})");
        // The quarantined path is free again: a fresh save+load succeeds.
        sample().save(&path, "synthesis").unwrap();
        assert_eq!(cold.load_resilient(&path, "synthesis"), SnapshotLoad::Loaded { entries: 2 });
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&moved);
    }

    #[test]
    fn save_writes_footer_and_roundtrips() {
        let path = temp_path("footer");
        let cache = sample();
        cache.store_potentials(Fingerprint(0xabc), 2500.0, vec![0, -1]);
        cache.save(&path, "synthesis").unwrap();
        let data = std::fs::read_to_string(&path).unwrap();
        assert!(data.contains("\"version\":3"));
        assert!(data.trim_end().lines().last().unwrap().starts_with("#crc32:"), "{data}");
        let mut tmp_name = path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        assert!(!std::path::Path::new(&tmp_name).exists(), "temp file must be renamed away");
        let restored = DelayCache::new();
        assert_eq!(restored.load(&path, "synthesis").unwrap(), 2);
        assert_eq!(restored.entries(), cache.entries());
        assert_eq!(restored.potential_entries(), cache.potential_entries());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_snapshot_quarantines_and_cold_starts() {
        assert_quarantined("truncated", |bytes| bytes[..bytes.len() / 2].to_vec());
    }

    #[test]
    fn truncation_that_only_drops_the_footer_is_still_detected() {
        // The subtlest torn write: a bytewise-valid v3 JSON body whose
        // footer never made it to disk. The version-aware loader knows v3
        // requires a footer.
        assert_quarantined("footerless", |bytes| {
            let text = String::from_utf8(bytes).unwrap();
            let body = &text[..text.rfind("\n#crc32:").unwrap()];
            body.as_bytes().to_vec()
        });
    }

    #[test]
    fn flipped_byte_fails_the_checksum_and_quarantines() {
        assert_quarantined("bitflip", |mut bytes| {
            // Flip a digit inside a delay value: still perfectly
            // parseable JSON — only the checksum can catch it.
            let at = bytes.iter().position(|&b| b == b'8').unwrap();
            bytes[at] = b'9';
            bytes
        });
    }

    #[test]
    fn zero_length_snapshot_quarantines_and_cold_starts() {
        assert_quarantined("empty", |_| Vec::new());
    }

    #[test]
    fn unknown_future_version_quarantines_and_cold_starts() {
        assert_quarantined("future", |bytes| {
            let text = String::from_utf8(bytes).unwrap();
            let body =
                text[..text.rfind("\n#crc32:").unwrap()].replace("\"version\":3", "\"version\":99");
            // A well-formed future snapshot, correct checksum and all —
            // rejected by version, not by integrity.
            format!("{body}\n#crc32:{:08x}\n", crc32(body.as_bytes())).into_bytes()
        });
    }

    #[test]
    fn foreign_oracle_snapshot_is_not_quarantined() {
        let path = temp_path("foreign");
        sample().save(&path, "synthesis").unwrap();
        let cold = DelayCache::new();
        let outcome = cold.load_resilient(&path, "aig-depth");
        let SnapshotLoad::ColdStart { reason, quarantined } = outcome else {
            panic!("expected cold start, got {outcome:?}");
        };
        assert!(quarantined.is_none(), "a foreign snapshot is valid — leave it alone");
        assert!(reason.contains("synthesis"), "{reason}");
        assert!(path.exists());
        assert!(cold.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_snapshot_is_reported_as_missing() {
        let cold = DelayCache::new();
        let path = temp_path("missing-never-created");
        assert_eq!(cold.load_resilient(&path, "synthesis"), SnapshotLoad::Missing);
    }

    #[test]
    fn footerless_v1_and_v2_files_round_trip_unchanged() {
        // Pre-v3 snapshots have no footer; both the strict and the
        // resilient loaders must accept them as-is.
        for (version, potentials) in [(1u64, ""), (2, r#","potentials":[]"#)] {
            let json = format!(
                r#"{{"version":{version},"oracle":"synthesis","entries":[
                    {{"key":"0000000000000000000000000000000a","delay_ps":3.5,
                     "aig_depth":1,"and_count":2,"arrivals":[[0,3.5]]}}]{potentials}}}"#
            );
            let path = temp_path(&format!("v{version}"));
            std::fs::write(&path, &json).unwrap();
            let cache = DelayCache::new();
            assert_eq!(cache.load(&path, "synthesis").unwrap(), 1, "strict v{version}");
            let resilient = DelayCache::new();
            assert_eq!(
                resilient.load_resilient(&path, "synthesis"),
                SnapshotLoad::Loaded { entries: 1 },
                "resilient v{version}"
            );
            assert!(path.exists());
            let _ = std::fs::remove_file(&path);
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE reference vector plus an empty-input sanity check.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0x0000_0000);
    }

    #[test]
    fn injected_truncate_write_fault_produces_a_detectable_torn_file() {
        let path = temp_path("fault-torn");
        isdc_faults::install(isdc_faults::FaultPlan::new().with(
            "snapshot/write",
            0,
            FaultKind::TruncateWrite,
        ));
        let save_result = sample().save(&path, "synthesis");
        isdc_faults::clear();
        save_result.expect("a torn write reports success — the crash hides the loss");
        let cold = DelayCache::new();
        let outcome = cold.load_resilient(&path, "synthesis");
        assert!(
            matches!(outcome, SnapshotLoad::ColdStart { quarantined: Some(_), .. }),
            "torn file must quarantine: {outcome:?}"
        );
        assert!(cold.is_empty());
        let _ = std::fs::remove_file(&path);
        let mut corrupt = path.as_os_str().to_os_string();
        corrupt.push(".corrupt");
        let _ = std::fs::remove_file(corrupt);
    }

    #[test]
    fn load_does_not_touch_counters() {
        let cache = sample();
        let restored = DelayCache::new();
        restored.merge_json(&cache.to_json("synthesis"), "synthesis").unwrap();
        let stats = restored.stats();
        assert_eq!((stats.hits, stats.misses, stats.inserts), (0, 0, 0));
    }
}
