//! Canonical structural fingerprints for subgraphs.
//!
//! Two subgraphs get the same fingerprint exactly when a downstream delay
//! oracle cannot tell them apart: same operations (kind + embedded
//! attributes + literal bits), same operand wiring and positions (modulo
//! commutativity), same result widths, same boundary-input widths and
//! sharing pattern, and the same set of member values visible outside the
//! subgraph. Node ids, member ordering and node names are deliberately *not*
//! part of the fingerprint — the whole point is recognizing the same
//! structure at different positions in a graph, across graphs, and across
//! process runs.
//!
//! # Algorithm
//!
//! A light-weight canonical labelling tuned for the small (tens of nodes)
//! subgraphs the extraction strategies produce:
//!
//! 1. **Bottom-up hashing**: every member gets a structural hash from its op
//!    tag and its operands' hashes (boundary operands start as
//!    width-only placeholders). Commutative operands are sorted first.
//! 2. **Boundary refinement**: each boundary input is rehashed from the
//!    multiset of `(consumer hash, operand position)` pairs consuming it,
//!    then member hashes are recomputed bottom-up with the refined boundary
//!    hashes. This distinguishes boundary *sharing patterns* (one external
//!    value feeding two ops vs. two distinct equal-width externals).
//! 3. **Top-down refinement**: a reverse sweep folds each member's in-set
//!    fanout into its label, so nodes with identical fan-in cones but
//!    different consumers do not tie.
//! 4. **Canonical order**: members sorted by final label. Remaining ties are
//!    (up to 64-bit hash collisions) genuine automorphisms — interchangeable
//!    nodes with provably equal delays — so any tie order yields the same
//!    serialized form.
//! 5. **Serialization**: the subgraph is re-encoded against canonical member
//!    and boundary indices and hashed to 128 bits.

use isdc_ir::{Graph, NodeId, OpKind};
use std::collections::HashMap;

/// A 128-bit structural fingerprint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl std::fmt::Debug for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fp:{:032x}", self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl Fingerprint {
    /// Parses the 32-hex-digit form produced by `Display`.
    pub fn parse(s: &str) -> Option<Self> {
        (s.len() == 32).then(|| u128::from_str_radix(s, 16).ok().map(Fingerprint))?
    }
}

/// A subgraph reduced to canonical form: the fingerprint plus the mapping
/// between canonical member indices and the host graph's node ids.
#[derive(Clone, Debug)]
pub struct CanonicalSubgraph {
    /// The structural fingerprint.
    pub fingerprint: Fingerprint,
    /// `order[i]` is the node id holding canonical index `i`.
    order: Vec<NodeId>,
    /// `(node id, canonical index)` sorted by node id, for reverse lookup.
    by_id: Vec<(NodeId, u32)>,
}

impl CanonicalSubgraph {
    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// True if the subgraph has no members (never produced by
    /// [`canonicalize`], which rejects empty member sets).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The node id at canonical index `i`, if in range.
    pub fn node_at(&self, i: u32) -> Option<NodeId> {
        self.order.get(i as usize).copied()
    }

    /// The canonical index of `id`, if it is a member.
    pub fn index_of(&self, id: NodeId) -> Option<u32> {
        self.by_id.binary_search_by_key(&id, |&(n, _)| n).ok().map(|pos| self.by_id[pos].1)
    }
}

const SEED_TAG: u64 = 0x9ae16a3b2f90404f;
const SEED_EXT: u64 = 0xc2b2ae3d27d4eb4f;
const SEED_DOWN: u64 = 0x165667b19e3779f9;
const SEED_UP: u64 = 0x27d4eb2f165667c5;

/// SplitMix64-style avalanche; the core mixing primitive.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Folds `x` into accumulator `h`.
fn fold(h: u64, x: u64) -> u64 {
    mix(h.rotate_left(23) ^ x.wrapping_mul(0x9e3779b97f4a7c15))
}

fn hash_str(seed: u64, s: &str) -> u64 {
    let mut h = seed;
    for chunk in s.as_bytes().chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = fold(h, u64::from_le_bytes(word));
    }
    fold(h, s.len() as u64)
}

/// The op tag: everything about a node's operation that affects synthesis,
/// excluding its wiring. Names are ignored; literal bits are included.
fn op_tag(graph: &Graph, id: NodeId) -> u64 {
    let node = graph.node(id);
    let mut h = hash_str(SEED_TAG, node.kind.mnemonic());
    match &node.kind {
        OpKind::BitSlice { start, width } => {
            h = fold(h, *start as u64);
            h = fold(h, *width as u64);
        }
        OpKind::ZeroExt { new_width } | OpKind::SignExt { new_width } => {
            h = fold(h, *new_width as u64);
        }
        OpKind::Literal(v) => {
            h = fold(h, v.width() as u64);
            let mut word = 0u64;
            for i in 0..v.width() {
                word |= (v.bit(i) as u64) << (i % 64);
                if i % 64 == 63 || i + 1 == v.width() {
                    h = fold(h, word);
                    word = 0;
                }
            }
        }
        _ => {}
    }
    fold(h, node.width as u64)
}

/// An accumulating 128-bit hash for the final serialization pass.
struct Mix128 {
    a: u64,
    b: u64,
}

impl Mix128 {
    fn new() -> Self {
        Self { a: 0x2545f4914f6cdd1d, b: 0x9e6c63d0876a9a7d }
    }

    fn push(&mut self, x: u64) {
        self.a = fold(self.a, x);
        self.b = fold(self.b, x ^ 0x94d049bb133111eb);
    }

    fn finish(self) -> u128 {
        ((mix(self.a) as u128) << 64) | mix(self.b) as u128
    }
}

/// Computes the canonical form of the subgraph `members` within `graph`.
///
/// `members` may be unsorted and contain duplicates; it must not be empty.
/// Operands outside the set are boundary inputs. A member counts as a
/// subgraph *output* under the same rule the netlist lowering uses: it is a
/// graph output, it has a user outside the set, or it has no users at all.
///
/// # Panics
///
/// Panics if `members` is empty or contains out-of-range ids.
pub fn canonicalize(graph: &Graph, members: &[NodeId]) -> CanonicalSubgraph {
    assert!(!members.is_empty(), "cannot canonicalize an empty subgraph");
    let mut sorted = members.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let n = sorted.len();
    // Position of each member in `sorted` (ascending node id == topo order).
    let pos: HashMap<NodeId, usize> = sorted.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    let tags: Vec<u64> = sorted.iter().map(|&v| op_tag(graph, v)).collect();
    let out_flags: Vec<bool> = sorted
        .iter()
        .map(|&v| {
            let users = graph.users(v);
            graph.outputs().contains(&v)
                || users.is_empty()
                || users.iter().any(|u| !pos.contains_key(u))
        })
        .collect();

    // Pass 1: bottom-up hashes; boundary operands as width-only placeholders.
    let ext_placeholder = |p: NodeId| fold(fold(SEED_EXT, 0x7eb5), graph.node(p).width as u64);
    let bottom_up = |ext_hash: &dyn Fn(NodeId) -> u64| -> Vec<u64> {
        let mut h = vec![0u64; n];
        for (i, &v) in sorted.iter().enumerate() {
            let node = graph.node(v);
            let mut operand_hashes: Vec<u64> = node
                .operands
                .iter()
                .enumerate()
                .map(|(slot, &p)| {
                    let base = match pos.get(&p) {
                        Some(&j) => h[j],
                        None => ext_hash(p),
                    };
                    if node.kind.is_commutative() {
                        base
                    } else {
                        fold(base, slot as u64 + 1)
                    }
                })
                .collect();
            if node.kind.is_commutative() {
                operand_hashes.sort_unstable();
            }
            let mut acc = fold(SEED_DOWN, tags[i]);
            acc = fold(acc, out_flags[i] as u64);
            for oh in operand_hashes {
                acc = fold(acc, oh);
            }
            h[i] = acc;
        }
        h
    };
    let h0 = bottom_up(&ext_placeholder);

    // Pass 2: refine boundary inputs by their consumption pattern, then
    // recompute member hashes with the refined boundary identities.
    let ext_refined = refine_boundaries(graph, &sorted, &pos, &h0);
    let ext_lookup = |p: NodeId| ext_refined.get(&p).copied().unwrap_or_else(|| ext_placeholder(p));
    let h1 = bottom_up(&ext_lookup);

    // Pass 3: top-down refinement folding in-set fanout into every label.
    let mut label = h1.clone();
    for i in (0..n).rev() {
        let v = sorted[i];
        let mut fanout: Vec<u64> = Vec::new();
        for &u in graph.users(v) {
            let Some(&j) = pos.get(&u) else { continue };
            let user = graph.node(u);
            for (slot, &p) in user.operands.iter().enumerate() {
                if p == v {
                    let slot_key = if user.kind.is_commutative() { 0 } else { slot as u64 + 1 };
                    fanout.push(fold(label[j], slot_key));
                }
            }
        }
        fanout.sort_unstable();
        let mut acc = fold(SEED_UP, h1[i]);
        for f in fanout {
            acc = fold(acc, f);
        }
        label[i] = acc;
    }

    // Pass 4: canonical order by label; ties are automorphic (or 64-bit
    // collisions, which the 128-bit final hash renders harmless for lookup
    // correctness in combination with the full serialization below).
    let mut canon: Vec<usize> = (0..n).collect();
    canon.sort_by_key(|&i| (label[i], i));
    let canon_index_of: HashMap<NodeId, u32> =
        canon.iter().enumerate().map(|(ci, &i)| (sorted[i], ci as u32)).collect();

    // Pass 5: serialize against canonical indices and hash to 128 bits.
    // Boundary indices are allocated in *canonical consumption order*:
    // commutative operand lists are ordered by structural key (canonical
    // member index, refined boundary hash) before any allocation, so two
    // isomorphic subgraphs that list a shared boundary value in different
    // commutative positions still allocate identical indices. Remaining
    // ties are symmetric boundary inputs, for which any order serializes
    // identically.
    let mut ext_index: HashMap<NodeId, u64> = HashMap::new();
    let mut hasher = Mix128::new();
    hasher.push(n as u64);
    for &i in &canon {
        let v = sorted[i];
        let node = graph.node(v);
        hasher.push(tags[i]);
        hasher.push(out_flags[i] as u64);
        hasher.push(node.operands.len() as u64);
        let mut operand_ids = node.operands.clone();
        if node.kind.is_commutative() {
            operand_ids.sort_by_key(|p| match canon_index_of.get(p) {
                Some(&ci) => (0u64, ci as u64),
                None => (1u64, ext_lookup(*p)),
            });
        }
        for p in operand_ids {
            match canon_index_of.get(&p) {
                Some(&ci) => {
                    hasher.push(0);
                    hasher.push(ci as u64);
                }
                None => {
                    let next = ext_index.len() as u64;
                    let idx = *ext_index.entry(p).or_insert(next);
                    hasher.push(1);
                    hasher.push(idx);
                }
            }
        }
    }
    // Boundary widths, in first-use order.
    let mut boundary: Vec<(u64, NodeId)> = ext_index.iter().map(|(&p, &i)| (i, p)).collect();
    boundary.sort_unstable();
    hasher.push(boundary.len() as u64);
    for (_, p) in boundary {
        hasher.push(graph.node(p).width as u64);
    }

    let order: Vec<NodeId> = canon.iter().map(|&i| sorted[i]).collect();
    let mut by_id: Vec<(NodeId, u32)> =
        order.iter().enumerate().map(|(ci, &v)| (v, ci as u32)).collect();
    by_id.sort_unstable();
    CanonicalSubgraph { fingerprint: Fingerprint(hasher.finish()), order, by_id }
}

/// Hashes every boundary input from the multiset of `(consumer hash, slot)`
/// pairs that consume it, plus its width.
fn refine_boundaries(
    graph: &Graph,
    sorted: &[NodeId],
    pos: &HashMap<NodeId, usize>,
    member_hash: &[u64],
) -> HashMap<NodeId, u64> {
    let mut uses: HashMap<NodeId, Vec<u64>> = HashMap::new();
    for (i, &v) in sorted.iter().enumerate() {
        let node = graph.node(v);
        for (slot, &p) in node.operands.iter().enumerate() {
            if !pos.contains_key(&p) {
                let slot_key = if node.kind.is_commutative() { 0 } else { slot as u64 + 1 };
                uses.entry(p).or_default().push(fold(member_hash[i], slot_key));
            }
        }
    }
    uses.into_iter()
        .map(|(p, mut consumers)| {
            consumers.sort_unstable();
            let mut h = fold(SEED_EXT, graph.node(p).width as u64);
            for c in consumers {
                h = fold(h, c);
            }
            (p, h)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::{Graph, OpKind};

    /// Builds `product = a*b; sum = product + c` and returns the two op ids.
    fn mac(g: &mut Graph, w: u32, tag: &str) -> (NodeId, NodeId) {
        let a = g.param(format!("{tag}_a"), w);
        let b = g.param(format!("{tag}_b"), w);
        let c = g.param(format!("{tag}_c"), w);
        let p = g.binary(OpKind::Mul, a, b).unwrap();
        let s = g.binary(OpKind::Add, p, c).unwrap();
        (p, s)
    }

    #[test]
    fn identical_structures_at_different_ids_match() {
        let mut g = Graph::new("t");
        let (p1, s1) = mac(&mut g, 16, "x");
        let (p2, s2) = mac(&mut g, 16, "y");
        g.set_output(s1);
        g.set_output(s2);
        let f1 = canonicalize(&g, &[p1, s1]);
        let f2 = canonicalize(&g, &[p2, s2]);
        assert_eq!(f1.fingerprint, f2.fingerprint);
    }

    #[test]
    fn member_order_and_duplicates_do_not_matter() {
        let mut g = Graph::new("t");
        let (p, s) = mac(&mut g, 8, "x");
        g.set_output(s);
        let f1 = canonicalize(&g, &[p, s]);
        let f2 = canonicalize(&g, &[s, p, p, s]);
        assert_eq!(f1.fingerprint, f2.fingerprint);
        assert_eq!(f1.len(), f2.len());
    }

    #[test]
    fn widths_distinguish() {
        let mut g = Graph::new("t");
        let (p1, s1) = mac(&mut g, 16, "x");
        let (p2, s2) = mac(&mut g, 24, "y");
        g.set_output(s1);
        g.set_output(s2);
        let f1 = canonicalize(&g, &[p1, s1]);
        let f2 = canonicalize(&g, &[p2, s2]);
        assert_ne!(f1.fingerprint, f2.fingerprint);
    }

    #[test]
    fn op_kind_distinguishes() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let add = g.binary(OpKind::Add, a, b).unwrap();
        let sub = g.binary(OpKind::Sub, a, b).unwrap();
        g.set_output(add);
        g.set_output(sub);
        let fa = canonicalize(&g, &[add]);
        let fs = canonicalize(&g, &[sub]);
        assert_ne!(fa.fingerprint, fs.fingerprint);
    }

    #[test]
    fn attributes_distinguish() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let s1 = g.unary(OpKind::BitSlice { start: 0, width: 4 }, a).unwrap();
        let s2 = g.unary(OpKind::BitSlice { start: 4, width: 4 }, a).unwrap();
        g.set_output(s1);
        g.set_output(s2);
        assert_ne!(canonicalize(&g, &[s1]).fingerprint, canonicalize(&g, &[s2]).fingerprint);
    }

    #[test]
    fn literal_bits_distinguish() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let k1 = g.literal_u64(0x0f, 8);
        let k2 = g.literal_u64(0xf0, 8);
        let x1 = g.binary(OpKind::Add, a, k1).unwrap();
        let x2 = g.binary(OpKind::Add, a, k2).unwrap();
        g.set_output(x1);
        g.set_output(x2);
        assert_ne!(
            canonicalize(&g, &[k1, x1]).fingerprint,
            canonicalize(&g, &[k2, x2]).fingerprint
        );
    }

    #[test]
    fn commutative_operand_order_is_normalized() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 4);
        let b8 = g.unary(OpKind::ZeroExt { new_width: 8 }, b).unwrap();
        let x1 = g.binary(OpKind::Add, a, b8).unwrap();
        let x2 = g.binary(OpKind::Add, b8, a).unwrap();
        g.set_output(x1);
        g.set_output(x2);
        assert_eq!(canonicalize(&g, &[x1]).fingerprint, canonicalize(&g, &[x2]).fingerprint);
    }

    #[test]
    fn noncommutative_operand_order_is_significant() {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 4);
        let b8 = g.unary(OpKind::ZeroExt { new_width: 8 }, b).unwrap();
        let x1 = g.binary(OpKind::Sub, a, b8).unwrap();
        let x2 = g.binary(OpKind::Sub, b8, a).unwrap();
        g.set_output(x1);
        g.set_output(x2);
        // The two subs differ in which *boundary* (width-8 ext vs. the raw
        // width-8 param) feeds each side only through sharing context; here
        // both operands are external width-8 values, so the structures are
        // genuinely isomorphic and must match.
        assert_eq!(canonicalize(&g, &[x1]).fingerprint, canonicalize(&g, &[x2]).fingerprint);
    }

    #[test]
    fn commutative_position_of_shared_boundary_is_normalized() {
        // The shared boundary `a` appears in different commutative slots of
        // the add, while also feeding a later non-commutative op: boundary
        // index allocation must not depend on the add's listing order.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let c = g.param("c", 8);
        let x1 = g.binary(OpKind::Add, a, b).unwrap();
        let y1 = g.binary(OpKind::Sub, a, c).unwrap();
        let x2 = g.binary(OpKind::Add, b, a).unwrap();
        let y2 = g.binary(OpKind::Sub, a, c).unwrap();
        for v in [x1, y1, x2, y2] {
            g.set_output(v);
        }
        assert_eq!(
            canonicalize(&g, &[x1, y1]).fingerprint,
            canonicalize(&g, &[x2, y2]).fingerprint
        );
    }

    #[test]
    fn boundary_sharing_pattern_distinguishes() {
        // x = sub(e1, shared); y = sub(shared, e2)  vs  two subs over four
        // distinct externals: the sharing of the middle operand is
        // structural information the fingerprint must keep.
        let mut g = Graph::new("t");
        let e1 = g.param("e1", 8);
        let shared = g.param("shared", 8);
        let e2 = g.param("e2", 8);
        let x = g.binary(OpKind::Sub, e1, shared).unwrap();
        let y = g.binary(OpKind::Sub, shared, e2).unwrap();
        g.set_output(x);
        g.set_output(y);

        let mut g2 = Graph::new("t2");
        let f1 = g2.param("f1", 8);
        let f2 = g2.param("f2", 8);
        let f3 = g2.param("f3", 8);
        let f4 = g2.param("f4", 8);
        let x2 = g2.binary(OpKind::Sub, f1, f2).unwrap();
        let y2 = g2.binary(OpKind::Sub, f3, f4).unwrap();
        g2.set_output(x2);
        g2.set_output(y2);

        assert_ne!(canonicalize(&g, &[x, y]).fingerprint, canonicalize(&g2, &[x2, y2]).fingerprint);
    }

    #[test]
    fn internal_fanout_breaks_symmetry() {
        // Two adds over the same externals, but one feeds a third member.
        // They must not be treated as interchangeable.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        let y = g.binary(OpKind::Add, a, b).unwrap();
        let z = g.unary(OpKind::Not, x).unwrap();
        g.set_output(y);
        g.set_output(z);
        let canon = canonicalize(&g, &[x, y, z]);
        // x (feeds z) and y (output) must occupy distinct canonical slots
        // deterministically: round-trip through index_of/node_at.
        for v in [x, y, z] {
            let i = canon.index_of(v).unwrap();
            assert_eq!(canon.node_at(i), Some(v));
        }
        assert_eq!(canon.index_of(a), None, "boundary inputs are not members");
    }

    #[test]
    fn output_visibility_is_structural() {
        // Same internal structure; in one context the intermediate escapes.
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x = g.binary(OpKind::Add, a, b).unwrap();
        let y = g.unary(OpKind::Not, x).unwrap();
        g.set_output(y);

        let mut g2 = Graph::new("t2");
        let a2 = g2.param("a", 8);
        let b2 = g2.param("b", 8);
        let x2 = g2.binary(OpKind::Add, a2, b2).unwrap();
        let y2 = g2.unary(OpKind::Not, x2).unwrap();
        let esc = g2.unary(OpKind::Neg, x2).unwrap();
        g2.set_output(y2);
        g2.set_output(esc);

        assert_ne!(
            canonicalize(&g, &[x, y]).fingerprint,
            canonicalize(&g2, &[x2, y2]).fingerprint,
            "x2 escapes to a non-member user, so it is an extra subgraph output"
        );
    }

    #[test]
    fn fingerprint_text_roundtrip() {
        let mut g = Graph::new("t");
        let (p, s) = mac(&mut g, 16, "x");
        g.set_output(s);
        let fp = canonicalize(&g, &[p, s]).fingerprint;
        assert_eq!(Fingerprint::parse(&fp.to_string()), Some(fp));
        assert_eq!(Fingerprint::parse("zz"), None);
    }
}
