//! A minimal hand-rolled JSON reader for the workspace's on-disk formats.
//!
//! The build environment cannot fetch `serde_json`, so every JSON codec in
//! the workspace is hand-written against this reader: the cache snapshot
//! format ([`crate::DelayCache::merge_json`]) and the batch job-spec format
//! (`isdc-batch`). It covers the subset those formats need — objects,
//! arrays, strings with `\"`/`\\`/`\/` escapes, finite numbers — accepts
//! any whitespace, and lets callers skip unknown keys so the formats can
//! grow.
//!
//! # Examples
//!
//! ```
//! use isdc_cache::json::Parser;
//!
//! let mut p = Parser::new(r#"{"name": "crc32", "points": 10}"#);
//! p.expect(b'{').unwrap();
//! assert_eq!(p.string().unwrap(), "name");
//! p.expect(b':').unwrap();
//! assert_eq!(p.string().unwrap(), "crc32");
//! assert!(p.comma_or_close(b'}').unwrap());
//! ```

/// A cursor over JSON text. All methods skip leading whitespace.
pub struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    /// A parser positioned at the start of `text`.
    pub fn new(text: &'a str) -> Self {
        Self { bytes: text.as_bytes(), at: 0 }
    }

    fn skip_ws(&mut self) {
        while self.bytes.get(self.at).is_some_and(|b| b.is_ascii_whitespace()) {
            self.at += 1;
        }
    }

    /// Consumes exactly the byte `b`.
    ///
    /// # Errors
    ///
    /// Reports the byte offset when anything else is found.
    pub fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.at))
        }
    }

    /// The next non-whitespace byte, without consuming it — lets callers
    /// dispatch on a value's type (`{`, `[`, `"`, `t`/`f`, digit).
    pub fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    /// True (and consumes) if the next non-space byte is `close` — for
    /// detecting empty arrays/objects right after the opening bracket.
    pub fn peek_close(&mut self, close: u8) -> bool {
        self.skip_ws();
        if self.bytes.get(self.at) == Some(&close) {
            self.at += 1;
            true
        } else {
            false
        }
    }

    /// After a value: `,` continues (true), `close` ends (false).
    ///
    /// # Errors
    ///
    /// Reports the byte offset when neither is found.
    pub fn comma_or_close(&mut self, close: u8) -> Result<bool, String> {
        self.skip_ws();
        match self.bytes.get(self.at) {
            Some(b',') => {
                self.at += 1;
                Ok(true)
            }
            Some(&b) if b == close => {
                self.at += 1;
                Ok(false)
            }
            _ => Err(format!("expected `,` or `{}` at byte {}", close as char, self.at)),
        }
    }

    /// Parses a quoted string (supporting the `\"`, `\\` and `\/` escapes).
    ///
    /// # Errors
    ///
    /// Unterminated strings and unsupported escapes are rejected.
    pub fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out: Vec<u8> = Vec::new();
        while let Some(&b) = self.bytes.get(self.at) {
            self.at += 1;
            match b {
                b'"' => return String::from_utf8(out).map_err(|e| e.to_string()),
                b'\\' => {
                    let esc = *self.bytes.get(self.at).ok_or("unterminated escape sequence")?;
                    self.at += 1;
                    match esc {
                        b'"' | b'\\' | b'/' => out.push(esc),
                        other => {
                            return Err(format!(
                                "unsupported escape `\\{}` at byte {}",
                                other as char, self.at
                            ));
                        }
                    }
                }
                other => out.push(other),
            }
        }
        Err("unterminated string".to_string())
    }

    /// Parses a finite number.
    ///
    /// # Errors
    ///
    /// Anything `f64::from_str` rejects is reported with its byte offset.
    pub fn number(&mut self) -> Result<f64, String> {
        self.skip_ws();
        let start = self.at;
        while self
            .bytes
            .get(self.at)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.at += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.at])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    /// Parses a `true`/`false` literal.
    ///
    /// # Errors
    ///
    /// Anything else is reported with its byte offset.
    pub fn boolean(&mut self) -> Result<bool, String> {
        self.skip_ws();
        for (literal, value) in [("true", true), ("false", false)] {
            if self.bytes[self.at..].starts_with(literal.as_bytes()) {
                self.at += literal.len();
                return Ok(value);
            }
        }
        Err(format!("expected `true` or `false` at byte {}", self.at))
    }

    /// Consumes a `null` literal.
    ///
    /// # Errors
    ///
    /// Anything else is reported with its byte offset.
    pub fn null(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.bytes[self.at..].starts_with(b"null") {
            self.at += 4;
            Ok(())
        } else {
            Err(format!("expected `null` at byte {}", self.at))
        }
    }

    /// Skips any value (used for unknown keys).
    ///
    /// # Errors
    ///
    /// Propagates malformed nested constructs.
    pub fn skip_value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.bytes.get(self.at) {
            Some(b'"') => self.string().map(|_| ()),
            Some(b'{') => self.skip_nested(b'{', b'}'),
            Some(b'[') => self.skip_nested(b'[', b']'),
            Some(b't') | Some(b'f') => self.boolean().map(|_| ()),
            Some(b'n') => self.null(),
            Some(_) => self.number().map(|_| ()),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn skip_nested(&mut self, open: u8, close: u8) -> Result<(), String> {
        let mut depth = 0usize;
        while let Some(&b) = self.bytes.get(self.at) {
            if b == b'"' {
                // Brackets inside string values must not affect nesting.
                self.string()?;
                continue;
            }
            self.at += 1;
            if b == open {
                depth += 1;
            } else if b == close {
                depth -= 1;
                if depth == 0 {
                    return Ok(());
                }
            }
        }
        Err("unterminated nesting".to_string())
    }
}

/// Escapes the two JSON-significant characters the workspace's hand-rolled
/// writers may encounter in strings.
pub fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn booleans_parse() {
        let mut p = Parser::new(" true , false ,x");
        assert!(p.boolean().unwrap());
        p.expect(b',').unwrap();
        assert!(!p.boolean().unwrap());
        p.expect(b',').unwrap();
        assert!(p.boolean().is_err());
    }

    #[test]
    fn skip_value_covers_booleans_and_null() {
        let mut p = Parser::new(r#"{"flag": true, "hole": null, "keep": 7}"#);
        p.expect(b'{').unwrap();
        for expected in ["flag", "hole"] {
            assert_eq!(p.string().unwrap(), expected);
            p.expect(b':').unwrap();
            p.skip_value().unwrap();
            assert!(p.comma_or_close(b'}').unwrap());
        }
        assert_eq!(p.string().unwrap(), "keep");
        p.expect(b':').unwrap();
        assert_eq!(p.number().unwrap(), 7.0);
    }
}
