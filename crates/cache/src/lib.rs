//! # isdc-cache — structural-fingerprint delay memoization
//!
//! The ISDC feedback loop (paper §III-A, Fig. 2) re-invokes the downstream
//! synthesis stack — bit-blast, AIG optimization, mapping, STA — on every
//! extracted subgraph, every iteration. Those subgraphs overlap heavily
//! across iterations and across benchmark sweeps, and the downstream call is
//! the dominant cost of `run_isdc`. This crate turns the repeats into cache
//! hits:
//!
//! - [`canonicalize`] reduces a subgraph to a **canonical structural
//!   fingerprint** — a 128-bit key over op kinds + attributes, operand
//!   widths and wiring, boundary-input widths and sharing, and output
//!   visibility — invariant to node-id numbering, member ordering and node
//!   names;
//! - [`DelayCache`] is a **sharded, thread-safe map** from fingerprints to
//!   delay reports with hit/miss/insert counters, safe under
//!   [`evaluate_parallel`](isdc_synth::evaluate_parallel);
//! - [`CachingOracle`] wraps any [`DelayOracle`](isdc_synth::DelayOracle),
//!   replaying cached per-output arrivals onto the caller's node ids via the
//!   canonical order;
//! - [`DelayCache::save`] / [`DelayCache::load`] persist a cache **snapshot
//!   as JSON**, so delay data survives across CLI runs and sweeps;
//! - the cache also carries the **LP potentials** a scheduling session
//!   exports per (design fingerprint, clock period)
//!   ([`DelayCache::store_potentials`] / [`DelayCache::nearest_potentials`])
//!   — persisted in snapshot format version 2 alongside the delay entries,
//!   under the same oracle identity tag.
//!
//! The per-op [`OpDelayModel`](isdc_synth::OpDelayModel) cache plays the
//! same trick at single-op granularity; this crate generalizes it to whole
//! subgraphs.
//!
//! # Examples
//!
//! ```
//! use isdc_cache::{canonicalize, CachingOracle};
//! use isdc_ir::{Graph, OpKind};
//! use isdc_synth::{DelayOracle, SynthesisOracle};
//! use isdc_techlib::TechLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Two structurally identical multiply-adds at different node ids.
//! let mut g = Graph::new("t");
//! let mut roots = Vec::new();
//! for tag in ["x", "y"] {
//!     let a = g.param(format!("{tag}_a"), 16);
//!     let b = g.param(format!("{tag}_b"), 16);
//!     let m = g.binary(OpKind::Mul, a, b)?;
//!     let s = g.binary(OpKind::Add, m, a)?;
//!     g.set_output(s);
//!     roots.push(vec![m, s]);
//! }
//! assert_eq!(
//!     canonicalize(&g, &roots[0]).fingerprint,
//!     canonicalize(&g, &roots[1]).fingerprint,
//! );
//!
//! // The second evaluation is served from the cache.
//! let oracle = CachingOracle::new(SynthesisOracle::new(TechLibrary::sky130()));
//! let first = oracle.evaluate(&g, &roots[0]);
//! let second = oracle.evaluate(&g, &roots[1]);
//! assert_eq!(first.delay_ps, second.delay_ps);
//! assert_eq!(oracle.stats().hits, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod fingerprint;
pub mod json;
mod oracle;
mod persist;
mod store;

pub use fingerprint::{canonicalize, CanonicalSubgraph, Fingerprint};
pub use oracle::CachingOracle;
pub use persist::{SnapshotLoad, OLDEST_SUPPORTED_SNAPSHOT_VERSION, SNAPSHOT_VERSION};
pub use store::{CacheStats, CachedDelay, DelayCache, StoredPotentials};
