//! Property-based tests for the structural fingerprint and the caching
//! oracle: invariance under node renumbering and member permutation,
//! sensitivity to widths and attributes, bit-identical replay, and the
//! algebraic laws of [`DelayCache::merge`].

use isdc_cache::{canonicalize, CachedDelay, CachingOracle, DelayCache, Fingerprint};
use isdc_ir::{Graph, NodeId, OpKind};
use isdc_synth::{DelayOracle, SynthesisOracle};
use isdc_techlib::TechLibrary;
use proptest::prelude::*;
use std::collections::HashMap;

/// Deterministic helper RNG (same recipe the sibling crates' proptests use).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state >> 33
}

/// A random valid graph exercising commutative, positional and
/// attribute-carrying ops, with a random member subset for fingerprinting.
fn arbitrary_graph_and_members() -> impl Strategy<Value = (Graph, Vec<NodeId>, u64)> {
    (3usize..18, any::<u64>(), any::<u64>()).prop_map(|(ops, seed, aux)| {
        let mut state = seed;
        let mut g = Graph::new("prop");
        let widths = [4u32, 8, 13];
        let mut pool = vec![
            g.param("p0", widths[lcg(&mut state) as usize % 3]),
            g.param("p1", widths[lcg(&mut state) as usize % 3]),
        ];
        for _ in 0..ops {
            let a = pool[lcg(&mut state) as usize % pool.len()];
            let b = pool[lcg(&mut state) as usize % pool.len()];
            let w = g.node(a).width;
            let b = if g.node(b).width == w {
                b
            } else if g.node(b).width < w {
                g.unary(OpKind::ZeroExt { new_width: w }, b).unwrap()
            } else {
                g.unary(OpKind::BitSlice { start: 0, width: w }, b).unwrap()
            };
            let id = match lcg(&mut state) % 7 {
                0 => g.binary(OpKind::Add, a, b).unwrap(),
                1 => g.binary(OpKind::Sub, a, b).unwrap(),
                2 => g.binary(OpKind::Xor, a, b).unwrap(),
                3 => g.binary(OpKind::Mul, a, b).unwrap(),
                4 => g.unary(OpKind::Not, a).unwrap(),
                5 => {
                    let c = g.binary(OpKind::Ult, a, b).unwrap();
                    g.select(c, a, b).unwrap()
                }
                _ => g.binary(OpKind::And, a, b).unwrap(),
            };
            pool.push(id);
        }
        let sinks: Vec<_> = g.node_ids().filter(|&id| g.users(id).is_empty()).collect();
        for s in sinks {
            g.set_output(s);
        }
        // A random nonempty member subset.
        let mut mstate = aux;
        let members: Vec<NodeId> =
            g.node_ids().filter(|_| !lcg(&mut mstate).is_multiple_of(3)).collect();
        let members = if members.is_empty() { vec![NodeId(0)] } else { members };
        (g, members, aux)
    })
}

/// Rebuilds `g` with node ids assigned in a random (but valid) topological
/// order; returns the new graph and the old-id -> new-id mapping.
fn shuffled_rebuild(g: &Graph, seed: u64) -> (Graph, Vec<NodeId>) {
    let mut state = seed ^ 0xabcdef;
    let n = g.len();
    let mut placed = vec![false; n];
    let mut map: Vec<NodeId> = vec![NodeId(0); n];
    let mut out = Graph::new(g.name().to_string());
    for _ in 0..n {
        let ready: Vec<usize> = (0..n)
            .filter(|&i| {
                !placed[i] && g.node(NodeId(i as u32)).operands.iter().all(|&p| placed[p.index()])
            })
            .collect();
        let pick = ready[lcg(&mut state) as usize % ready.len()];
        let old = NodeId(pick as u32);
        let node = g.node(old);
        let new_id = match &node.kind {
            OpKind::Param => out.param(node.name.clone().expect("params are named"), node.width),
            kind => {
                let operands: Vec<NodeId> = node.operands.iter().map(|&p| map[p.index()]).collect();
                out.add_node(kind.clone(), operands).expect("same widths, same ops")
            }
        };
        map[pick] = new_id;
        placed[pick] = true;
    }
    for &o in g.outputs() {
        out.set_output(map[o.index()]);
    }
    (out, map)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Renumbering nodes must not change the fingerprint.
    #[test]
    fn fingerprint_invariant_under_renumbering((g, members, seed) in arbitrary_graph_and_members()) {
        let (g2, map) = shuffled_rebuild(&g, seed);
        prop_assert!(g2.validate().is_ok());
        let mapped: Vec<NodeId> = members.iter().map(|&m| map[m.index()]).collect();
        let f1 = canonicalize(&g, &members);
        let f2 = canonicalize(&g2, &mapped);
        prop_assert_eq!(f1.fingerprint, f2.fingerprint,
            "renumbering changed the fingerprint (seed {})", seed);
    }

    /// Member-slice order and duplication must not change the fingerprint.
    #[test]
    fn fingerprint_invariant_under_member_permutation((g, members, seed) in arbitrary_graph_and_members()) {
        let mut state = seed;
        let mut shuffled = members.clone();
        for i in (1..shuffled.len()).rev() {
            shuffled.swap(i, lcg(&mut state) as usize % (i + 1));
        }
        shuffled.extend(members.iter().take(3)); // duplicates
        prop_assert_eq!(
            canonicalize(&g, &members).fingerprint,
            canonicalize(&g, &shuffled).fingerprint
        );
    }

    /// Changing any single parameter's width must change the fingerprint of
    /// every subgraph that sees the parameter as a boundary input or member
    /// operand width.
    #[test]
    fn fingerprint_sensitive_to_widths((g, members, seed) in arbitrary_graph_and_members()) {
        // Rebuild with one param widened by 1 and all dependent widths
        // re-inferred; fingerprints of member sets whose structure saw that
        // width must differ.
        let (g2, map) = widen_first_param(&g);
        let mapped: Vec<NodeId> = members.iter().map(|&m| map[m.index()]).collect();
        let f1 = canonicalize(&g, &members);
        let f2 = canonicalize(&g2, &mapped);
        // The subgraph may genuinely not contain anything touching p0; only
        // assert a difference when some member or boundary width changed.
        let widths_changed = members.iter().any(|&m| {
            let a = g.node(m);
            let b = g2.node(map[m.index()]);
            a.width != b.width
                || a.operands.iter().zip(&b.operands).any(|(&x, &y)| {
                    g.node(x).width != g2.node(y).width
                })
        });
        if widths_changed {
            prop_assert_ne!(f1.fingerprint, f2.fingerprint, "seed {}", seed);
        } else {
            prop_assert_eq!(f1.fingerprint, f2.fingerprint, "seed {}", seed);
        }
    }

    /// The caching oracle returns bit-identical reports to its inner oracle
    /// on both the cold and the warm path.
    #[test]
    fn caching_oracle_is_transparent((g, members, _seed) in arbitrary_graph_and_members()) {
        let inner = SynthesisOracle::new(TechLibrary::sky130());
        let reference = inner.evaluate(&g, &members);
        let cached = CachingOracle::new(inner);
        let cold = cached.evaluate(&g, &members);
        let warm = cached.evaluate(&g, &members);
        prop_assert_eq!(&cold, &reference, "cold path must be pass-through");
        prop_assert_eq!(&warm, &reference, "warm path must replay bit-identically");
        prop_assert_eq!(cached.stats().hits, 1);
    }

    /// A hit on a renumbered isomorphic subgraph replays each arrival onto
    /// the image of its original node.
    #[test]
    fn caching_oracle_replays_across_renumbering((g, members, seed) in arbitrary_graph_and_members()) {
        let (g2, map) = shuffled_rebuild(&g, seed);
        let mapped: Vec<NodeId> = members.iter().map(|&m| map[m.index()]).collect();
        let cached = CachingOracle::new(SynthesisOracle::new(TechLibrary::sky130()));
        let cold = cached.evaluate(&g, &members);
        let replayed = cached.evaluate(&g2, &mapped);
        prop_assert_eq!(cached.stats().hits, 1, "isomorphic subgraph must hit");
        prop_assert_eq!(replayed.delay_ps, cold.delay_ps);
        let expect: HashMap<NodeId, f64> = cold
            .output_arrivals
            .iter()
            .map(|&(id, ps)| (map[id.index()], ps))
            .collect();
        let got: HashMap<NodeId, f64> = replayed.output_arrivals.iter().copied().collect();
        prop_assert_eq!(got, expect, "arrivals must land on the isomorphic images");
    }
}

/// A random cache over a small key space (to force overlaps between two
/// independently drawn caches) with values drawn from a small pool (so the
/// same key can genuinely conflict across caches).
fn arbitrary_cache() -> impl Strategy<Value = DelayCache> {
    prop::collection::vec((0u64..24, 0u64..6, 0u64..4), 0..32).prop_map(|triples| {
        let cache = DelayCache::with_shards(4);
        for (key, val, clock) in triples {
            let delay = 100.0 + val as f64 * 7.5;
            cache.insert(
                Fingerprint(u128::from(key)),
                CachedDelay {
                    delay_ps: delay,
                    aig_depth: val as u32,
                    and_count: (val * 3) as usize,
                    arrivals: vec![(0, delay), (val as u32 + 1, delay / 2.0)],
                },
            );
            cache.store_potentials(
                Fingerprint(u128::from(key % 5)),
                1000.0 + clock as f64 * 500.0,
                vec![val as i64, -(clock as i64)],
            );
        }
        cache
    })
}

/// Deep copy through the merge-into-empty identity.
fn clone_cache(c: &DelayCache) -> DelayCache {
    let out = DelayCache::with_shards(4);
    out.merge(c);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(A, B) == merge(B, A): the fleet-wide publication step must not
    /// depend on which worker publishes first.
    #[test]
    fn merge_is_commutative((a, b) in (arbitrary_cache(), arbitrary_cache())) {
        let ab = clone_cache(&a);
        ab.merge(&b);
        let ba = clone_cache(&b);
        ba.merge(&a);
        prop_assert_eq!(ab.entries(), ba.entries());
        prop_assert_eq!(ab.potential_entries(), ba.potential_entries());
    }

    /// Re-merging the same cache (including self-merge) changes nothing.
    #[test]
    fn merge_is_idempotent((a, b) in (arbitrary_cache(), arbitrary_cache())) {
        let merged = clone_cache(&a);
        merged.merge(&b);
        let again = clone_cache(&merged);
        prop_assert_eq!(again.merge(&b), 0, "second merge must be a no-op");
        prop_assert_eq!(again.merge(&merged), 0, "self-merge must be a no-op");
        prop_assert_eq!(again.entries(), merged.entries());
        prop_assert_eq!(again.potential_entries(), merged.potential_entries());
    }

    /// merge(merge(A, B), C) == merge(A, merge(B, C)) — shard-merge order in
    /// a tree of workers is immaterial.
    #[test]
    fn merge_is_associative((a, b, c) in (arbitrary_cache(), arbitrary_cache(), arbitrary_cache())) {
        let left = clone_cache(&a);
        left.merge(&b);
        left.merge(&c);
        let bc = clone_cache(&b);
        bc.merge(&c);
        let right = clone_cache(&a);
        right.merge(&bc);
        prop_assert_eq!(left.entries(), right.entries());
        prop_assert_eq!(left.potential_entries(), right.potential_entries());
    }
}

/// Rebuilds with the first parameter one bit wider, re-inferring all widths
/// (extensions/slices keep their attribute targets, so downstream width
/// changes only propagate where inference allows them to).
fn widen_first_param(g: &Graph) -> (Graph, Vec<NodeId>) {
    let mut out = Graph::new(g.name().to_string());
    let mut map: Vec<NodeId> = Vec::with_capacity(g.len());
    for (id, node) in g.iter() {
        let new_id = match &node.kind {
            OpKind::Param => {
                let width = if map.is_empty() { node.width + 1 } else { node.width };
                out.param(node.name.clone().expect("params are named"), width)
            }
            OpKind::ZeroExt { .. } | OpKind::SignExt { .. } | OpKind::BitSlice { .. } => {
                // Attribute targets may now undercut the widened operand;
                // re-derive a valid attribute that preserves shape.
                let src = map[node.operands[0].index()];
                let src_w = out.node(src).width;
                let kind = match &node.kind {
                    OpKind::ZeroExt { new_width } => {
                        OpKind::ZeroExt { new_width: (*new_width).max(src_w) }
                    }
                    OpKind::SignExt { new_width } => {
                        OpKind::SignExt { new_width: (*new_width).max(src_w) }
                    }
                    OpKind::BitSlice { start, width } => OpKind::BitSlice {
                        start: (*start).min(src_w - 1),
                        width: (*width).min(src_w - (*start).min(src_w - 1)),
                    },
                    _ => unreachable!(),
                };
                out.unary(kind, src).expect("adjusted attribute is valid")
            }
            kind => {
                let operands: Vec<NodeId> = node.operands.iter().map(|&p| map[p.index()]).collect();
                match out.add_node(kind.clone(), operands) {
                    Ok(n) => n,
                    Err(_) => {
                        // Width mismatch introduced by the widening: coerce
                        // the odd operand with an extension so the graph
                        // stays valid (the structure difference is the
                        // point of the test). Sel's 1-bit selector is never
                        // coerced.
                        let ops: Vec<NodeId> =
                            node.operands.iter().map(|&p| map[p.index()]).collect();
                        let from = usize::from(matches!(kind, OpKind::Sel));
                        let target =
                            ops[from..].iter().map(|&p| out.node(p).width).max().expect("nonempty");
                        let coerced: Vec<NodeId> = ops
                            .iter()
                            .enumerate()
                            .map(|(i, &p)| {
                                if i < from || out.node(p).width == target {
                                    p
                                } else {
                                    out.unary(OpKind::ZeroExt { new_width: target }, p)
                                        .expect("widening is valid")
                                }
                            })
                            .collect();
                        out.add_node(kind.clone(), coerced).expect("coerced widths agree")
                    }
                }
            }
        };
        let _ = id;
        map.push(new_id);
    }
    for &o in g.outputs() {
        out.set_output(map[o.index()]);
    }
    (out, map)
}
