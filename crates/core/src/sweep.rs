//! Clock-period sweeps over a persistent [`IsdcSession`].
//!
//! The first workload built to consume cross-run warm starts: re-running
//! the same design at many clock periods. Subgraphs extracted at
//! neighbouring periods overlap almost completely, so after the first
//! point the session's delay cache serves nearly every oracle evaluation,
//! and each point's initial LP solve imports the potentials of the nearest
//! already-solved period. Results stay bit-identical to independent cold
//! [`run_isdc`](crate::run_isdc) calls at every point — both assets are
//! pure accelerators.
//!
//! Two searches are provided:
//!
//! - [`sweep_clock_period`] — every period of an explicit grid (see
//!   [`linear_grid`]), ascending order recommended so each point
//!   warm-starts from the previous one;
//! - [`min_feasible_period`] — binary search for the smallest period any
//!   schedule can meet (the paper doubles the target period on
//!   infeasibility; this finds the exact floor instead). Infeasible probes
//!   fail before any downstream evaluation, so they are nearly free.
//!
//! [`render_sweep_json`] serializes the per-run records (warm starts,
//! cache hit rates, solver statistics) in the `BENCH_sweep.json` layout
//! the bench tooling and CI consume.

use crate::driver::IsdcConfig;
use crate::pipeline::StageKind;
use crate::schedule::Schedule;
use crate::scheduler::ScheduleError;
use crate::session::{IsdcSession, SessionRun};
use isdc_synth::DelayOracle;
use isdc_techlib::Picos;
use isdc_telemetry::MetricsFrame;
use std::fmt::Write as _;
use std::time::Duration;

/// One sweep point's record: scheduling outcome plus the warm-start and
/// cache accounting that shows what the session reused.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// The clock period this point scheduled for.
    pub clock_period_ps: Picos,
    /// False when no schedule can meet the period (an operation's own delay
    /// exceeds it); all other fields are zero/empty then.
    pub feasible: bool,
    /// Final pipeline register bits.
    pub register_bits: u64,
    /// Final pipeline depth.
    pub num_stages: u32,
    /// Feedback iterations executed.
    pub iterations: usize,
    /// Whether the run's initial LP solve imported potentials (always
    /// false for cold sweeps).
    pub warm_start: bool,
    /// LP solves that ran warm, across the run's whole history.
    pub warm_solves: usize,
    /// LP solves that ran cold.
    pub cold_solves: usize,
    /// Oracle-cache hits during this run (0 for cold sweeps).
    pub cache_hits: u64,
    /// Oracle-cache misses during this run (0 for cold sweeps).
    pub cache_misses: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// The final schedule, for bit-identity checks (absent if infeasible).
    pub schedule: Option<Schedule>,
    /// The run's full telemetry frame ([`IsdcResult::metrics`]
    /// (crate::IsdcResult::metrics)): per-stage wall-clock, drain totals,
    /// iteration counts. Empty for infeasible points.
    pub metrics: MetricsFrame,
}

impl SweepPoint {
    /// Cache hits over lookups, or 0.0 without lookups.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// A drain counter (`drain/dijkstras`, `drain/paths`, ...) from the
    /// run's telemetry frame, or 0 for infeasible points.
    pub fn drain_total(&self, leaf: &str) -> u64 {
        self.metrics.counter_or_zero(&format!("drain/{leaf}"))
    }

    /// Wall-clock microseconds spent in `stage` across the run, from the
    /// telemetry frame.
    pub fn stage_micros(&self, stage: StageKind) -> u64 {
        self.metrics.counter_or_zero(&format!("stage/{}/ns", stage.name())) / 1_000
    }

    fn infeasible(clock_period_ps: Picos) -> Self {
        Self {
            clock_period_ps,
            feasible: false,
            register_bits: 0,
            num_stages: 0,
            iterations: 0,
            warm_start: false,
            warm_solves: 0,
            cold_solves: 0,
            cache_hits: 0,
            cache_misses: 0,
            elapsed: Duration::ZERO,
            schedule: None,
            metrics: MetricsFrame::new(),
        }
    }

    fn from_session_run(run: &SessionRun) -> Self {
        Self::from_result(
            run.clock_period_ps,
            &run.result,
            run.warm_start,
            run.cache_hits,
            run.cache_misses,
        )
    }

    /// The one place a feasible point is derived from a run, shared by the
    /// session and the independent-baseline sweeps so their records cannot
    /// drift apart.
    fn from_result(
        clock_period_ps: Picos,
        result: &crate::driver::IsdcResult,
        warm_start: bool,
        cache_hits: u64,
        cache_misses: u64,
    ) -> Self {
        Self {
            clock_period_ps,
            feasible: true,
            register_bits: result.final_record().register_bits,
            num_stages: result.final_record().num_stages,
            iterations: result.iterations(),
            warm_start,
            warm_solves: result.history.iter().filter(|r| r.solver_warm).count(),
            cold_solves: result.history.iter().filter(|r| !r.solver_warm).count(),
            cache_hits,
            cache_misses,
            elapsed: result.total_time,
            schedule: Some(result.schedule.clone()),
            metrics: result.metrics.clone(),
        }
    }
}

/// `points` evenly spaced periods from `from` to `to` inclusive.
///
/// # Panics
///
/// Panics if `points` is 0.
pub fn linear_grid(from: Picos, to: Picos, points: usize) -> Vec<Picos> {
    assert!(points > 0, "a grid needs at least one point");
    if points == 1 {
        return vec![from];
    }
    let step = (to - from) / (points - 1) as f64;
    (0..points).map(|i| from + step * i as f64).collect()
}

/// Whether an error means "this period is infeasible" rather than "the run
/// is broken".
fn is_infeasibility(e: &ScheduleError) -> bool {
    matches!(
        e,
        ScheduleError::OperationExceedsClock { .. } | ScheduleError::LatencyUnachievable { .. }
    )
}

/// Runs `base` at every period of `periods` through the session, in the
/// given order. Infeasible periods are recorded, not fatal.
///
/// Per-iteration oracle metrics ([`IsdcConfig::iteration_metrics`]) are
/// computed only for the **final** point: inner points are stepping stones
/// whose error columns nobody reads, and the metric evaluations are the
/// one remaining cost a sweep pays symmetrically with independent runs.
/// Schedules and register counts are unaffected (the metrics are purely
/// observational). Pass a `base` with `iteration_metrics: false` to skip
/// them everywhere.
///
/// # Cancellation
///
/// A deadline tripping mid-sweep is **clean-cut**, not fatal: the sweep
/// returns the already-completed points, bit-identical to the uncancelled
/// run's prefix (the session absorbs nothing from the abandoned run, and
/// its caches are pure accelerators). Callers detect truncation by
/// comparing `points.len()` against `periods.len()`.
///
/// # Errors
///
/// Propagates solver failures that do not signal infeasibility.
pub fn sweep_clock_period<O: DelayOracle + ?Sized>(
    session: &mut IsdcSession<'_, O>,
    base: &IsdcConfig,
    periods: &[Picos],
) -> Result<Vec<SweepPoint>, ScheduleError> {
    let _span = isdc_telemetry::span_u64("sweep", "points", periods.len() as u64);
    let mut points = Vec::with_capacity(periods.len());
    for (i, &clock) in periods.iter().enumerate() {
        let config = IsdcConfig {
            clock_period_ps: clock,
            iteration_metrics: base.iteration_metrics && i + 1 == periods.len(),
            ..base.clone()
        };
        match session.run(&config) {
            Ok(run) => points.push(SweepPoint::from_session_run(&run)),
            Err(e) if is_infeasibility(&e) => points.push(SweepPoint::infeasible(clock)),
            Err(ScheduleError::DeadlineExceeded) => return Ok(points),
            Err(e) => return Err(e),
        }
    }
    Ok(points)
}

/// The independent-cold-runs baseline: [`run_isdc`](crate::run_isdc) at
/// every period with the **cold solver** (`incremental: false` — a fresh
/// LP rebuild and Bellman-Ford cold solve per iteration, the CLI's
/// `--cold-solver` and the reference semantics every warm path is proven
/// bit-identical to), no caching, no session. Used for speedup measurement
/// and the bit-identity guarantee.
///
/// For the softer baseline — independent runs that still warm-start
/// *within* each run — see [`sweep_clock_period_independent`].
///
/// # Errors
///
/// Propagates solver failures that do not signal infeasibility.
pub fn sweep_clock_period_cold<O: DelayOracle + ?Sized>(
    graph: &isdc_ir::Graph,
    model: &isdc_synth::OpDelayModel,
    oracle: &O,
    base: &IsdcConfig,
    periods: &[Picos],
) -> Result<Vec<SweepPoint>, ScheduleError> {
    sweep_independent(graph, model, oracle, base, periods, false)
}

/// Independent per-period [`run_isdc`](crate::run_isdc) calls with the
/// default within-run incremental solver but nothing shared *across* runs
/// (no cache, no potentials, no engine handoff). Isolates exactly what the
/// session adds on top of PR 2's per-iteration warm solving.
///
/// # Errors
///
/// Propagates solver failures that do not signal infeasibility.
pub fn sweep_clock_period_independent<O: DelayOracle + ?Sized>(
    graph: &isdc_ir::Graph,
    model: &isdc_synth::OpDelayModel,
    oracle: &O,
    base: &IsdcConfig,
    periods: &[Picos],
) -> Result<Vec<SweepPoint>, ScheduleError> {
    sweep_independent(graph, model, oracle, base, periods, true)
}

fn sweep_independent<O: DelayOracle + ?Sized>(
    graph: &isdc_ir::Graph,
    model: &isdc_synth::OpDelayModel,
    oracle: &O,
    base: &IsdcConfig,
    periods: &[Picos],
    incremental: bool,
) -> Result<Vec<SweepPoint>, ScheduleError> {
    let mut points = Vec::with_capacity(periods.len());
    for &clock in periods {
        let config = IsdcConfig {
            clock_period_ps: clock,
            cache: false,
            cache_file: None,
            incremental,
            ..base.clone()
        };
        match crate::driver::run_isdc(graph, model, oracle, &config) {
            Ok(result) => points.push(SweepPoint::from_result(clock, &result, false, 0, 0)),
            Err(e) if is_infeasibility(&e) => points.push(SweepPoint::infeasible(clock)),
            Err(e) => return Err(e),
        }
    }
    Ok(points)
}

/// The result of a minimum-feasible-period search.
#[derive(Clone, Debug)]
pub struct MinPeriodSearch {
    /// The smallest period (within `tol_ps`) at which scheduling succeeds,
    /// or `None` when even the upper bound is infeasible.
    pub min_period_ps: Option<Picos>,
    /// Every probe the search ran, in probe order.
    pub probes: Vec<SweepPoint>,
}

/// Binary-searches the smallest feasible clock period in `[lo, hi]` to a
/// resolution of `tol_ps`, scheduling through the session so feasible
/// probes reuse each other's work. `lo` may be infeasible; `hi` should be
/// feasible (otherwise the search reports `None`). Probes skip the
/// per-iteration oracle metrics ([`IsdcConfig::iteration_metrics`]) —
/// schedules and feasibility are unaffected.
///
/// # Errors
///
/// Propagates solver failures that do not signal infeasibility.
///
/// # Panics
///
/// Panics if `tol_ps` is not positive or `lo > hi`.
pub fn min_feasible_period<O: DelayOracle + ?Sized>(
    session: &mut IsdcSession<'_, O>,
    base: &IsdcConfig,
    lo: Picos,
    hi: Picos,
    tol_ps: Picos,
) -> Result<MinPeriodSearch, ScheduleError> {
    assert!(tol_ps > 0.0, "tolerance must be positive");
    assert!(lo <= hi, "empty search interval");
    let _span = isdc_telemetry::span("min_period_search");
    let mut probes = Vec::new();
    let mut probe =
        |session: &mut IsdcSession<'_, O>, clock: Picos| -> Result<bool, ScheduleError> {
            // Probes are pure feasibility/quality stepping stones — nobody
            // reads their per-iteration error columns, so none of them pay
            // the oracle metrics (same reasoning as a sweep's inner points).
            let config =
                IsdcConfig { clock_period_ps: clock, iteration_metrics: false, ..base.clone() };
            match session.run(&config) {
                Ok(run) => {
                    probes.push(SweepPoint::from_session_run(&run));
                    Ok(true)
                }
                Err(e) if is_infeasibility(&e) => {
                    probes.push(SweepPoint::infeasible(clock));
                    Ok(false)
                }
                Err(e) => Err(e),
            }
        };
    if !probe(session, hi)? {
        return Ok(MinPeriodSearch { min_period_ps: None, probes });
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > tol_ps {
        let mid = lo + (hi - lo) / 2.0;
        if probe(session, mid)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(MinPeriodSearch { min_period_ps: Some(hi), probes })
}

/// Serializes sweep records as the `BENCH_sweep.json` document: design
/// metadata, one row per session point, per-baseline totals and speedups,
/// and each baseline's per-point time alongside the session's (baselines
/// are named, e.g. `("cold", ..)` for the reference cold-solver runs and
/// `("independent", ..)` for warm-within-run independent calls).
pub fn render_sweep_json(
    design: &str,
    nodes: usize,
    mode: &str,
    session_points: &[SweepPoint],
    baselines: &[(&str, &[SweepPoint])],
) -> String {
    let total =
        |points: &[SweepPoint]| -> u128 { points.iter().map(|p| p.elapsed.as_nanos()).sum() };
    let session_total = total(session_points);
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"sweep\",\n");
    let _ = writeln!(out, "  \"design\": \"{design}\",\n  \"nodes\": {nodes},");
    let _ = writeln!(out, "  \"mode\": \"{mode}\",\n  \"points\": {},", session_points.len());
    let _ = writeln!(out, "  \"session_total_ns\": {session_total},");
    for (name, points) in baselines {
        let baseline_total = total(points);
        let _ = writeln!(out, "  \"{name}_total_ns\": {baseline_total},");
        let _ = writeln!(
            out,
            "  \"speedup_vs_{name}\": {:.2},",
            baseline_total as f64 / session_total.max(1) as f64
        );
    }
    out.push_str("  \"runs\": [\n");
    for (i, p) in session_points.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(
            out,
            "    {{\"clock_ps\": {}, \"feasible\": {}, \"register_bits\": {}, \
             \"stages\": {}, \"iterations\": {}, \"warm_start\": {}, \
             \"warm_solves\": {}, \"cold_solves\": {}, \"cache_hits\": {}, \
             \"cache_misses\": {}, \"cache_hit_rate\": {:.4}, \"elapsed_ns\": {}",
            p.clock_period_ps,
            p.feasible,
            p.register_bits,
            p.num_stages,
            p.iterations,
            p.warm_start,
            p.warm_solves,
            p.cold_solves,
            p.cache_hits,
            p.cache_misses,
            p.cache_hit_rate(),
            p.elapsed.as_nanos(),
        );
        // Registry-derived enrichment: solver drain totals and per-stage
        // wall-clock, straight from the run's telemetry frame.
        let _ = write!(
            out,
            ", \"drain_dijkstras\": {}, \"drain_paths\": {}, \"drain_flow_pushed\": {}",
            p.drain_total("dijkstras"),
            p.drain_total("paths"),
            p.drain_total("flow_pushed"),
        );
        out.push_str(", \"stage_us\": {");
        for (si, kind) in StageKind::ALL.iter().enumerate() {
            if si > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", kind.name(), p.stage_micros(*kind));
        }
        out.push('}');
        for (name, points) in baselines {
            if let Some(b) = points.iter().find(|b| b.clock_period_ps == p.clock_period_ps) {
                let _ = write!(out, ", \"{name}_elapsed_ns\": {}", b.elapsed.as_nanos());
            }
        }
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_grid_covers_endpoints() {
        let grid = linear_grid(1000.0, 2000.0, 5);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0], 1000.0);
        assert_eq!(grid[4], 2000.0);
        assert!(grid.windows(2).all(|w| w[1] > w[0]));
        assert_eq!(linear_grid(1500.0, 9999.0, 1), vec![1500.0]);
    }

    #[test]
    fn sweep_json_shape_is_stable() {
        let mut metrics = MetricsFrame::new();
        metrics.insert("drain/dijkstras", isdc_telemetry::MetricValue::Counter(7));
        metrics.insert("drain/paths", isdc_telemetry::MetricValue::Counter(12));
        metrics.insert("stage/solve/ns", isdc_telemetry::MetricValue::Counter(42_000));
        let point = SweepPoint {
            clock_period_ps: 2500.0,
            feasible: true,
            register_bits: 128,
            num_stages: 3,
            iterations: 4,
            warm_start: true,
            warm_solves: 5,
            cold_solves: 0,
            cache_hits: 40,
            cache_misses: 2,
            elapsed: Duration::from_nanos(1234),
            schedule: None,
            metrics,
        };
        let cold =
            SweepPoint { warm_start: false, elapsed: Duration::from_nanos(9999), ..point.clone() };
        let json = render_sweep_json("crc32", 452, "full", &[point], &[("cold", &[cold])]);
        for needle in [
            "\"bench\": \"sweep\"",
            "\"design\": \"crc32\"",
            "\"speedup_vs_cold\": 8.10",
            "\"warm_start\": true",
            "\"cache_hit_rate\": 0.9524",
            "\"drain_dijkstras\": 7",
            "\"drain_paths\": 12",
            "\"stage_us\": {\"extract\": 0",
            "\"solve\": 42",
            "\"cold_elapsed_ns\": 9999",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }
}
