//! Schedule quality metrics: post-synthesis slack and delay-estimation error.
//!
//! The paper evaluates schedules with post-synthesis STA (Table I's slack
//! column) and tracks how far the scheduler's internal delay estimates drift
//! from STA (Fig. 7). Here the same downstream oracle that drives the
//! feedback loop times whole pipeline stages to produce those numbers.

use crate::delay::DelayMatrix;
use crate::schedule::Schedule;
use isdc_ir::{Graph, NodeId};
use isdc_synth::DelayOracle;
use isdc_techlib::Picos;

/// Post-synthesis (oracle-measured) delay of every stage's combinational
/// region.
///
/// Stages containing only wiring report zero.
pub fn stage_sta_delays<O: DelayOracle + ?Sized>(
    graph: &Graph,
    schedule: &Schedule,
    oracle: &O,
) -> Vec<Picos> {
    schedule
        .stages()
        .iter()
        .map(
            |members| {
                if members.is_empty() {
                    0.0
                } else {
                    oracle.evaluate(graph, members).delay_ps
                }
            },
        )
        .collect()
}

/// The scheduler's own estimate of every stage's delay: the worst
/// delay-matrix entry among same-stage pairs.
pub fn estimated_stage_delays(
    graph: &Graph,
    schedule: &Schedule,
    delays: &DelayMatrix,
) -> Vec<Picos> {
    let _ = graph;
    schedule
        .stages()
        .iter()
        .map(|members| {
            let mut worst: Picos = 0.0;
            for &u in members {
                for &v in members {
                    if let Some(d) = delays.get(u, v) {
                        worst = worst.max(d);
                    }
                }
            }
            worst
        })
        .collect()
}

/// Post-synthesis slack: clock period minus the slowest stage's measured
/// delay (Table I's "Slack" column).
pub fn post_synthesis_slack<O: DelayOracle + ?Sized>(
    graph: &Graph,
    schedule: &Schedule,
    oracle: &O,
    clock_period_ps: Picos,
) -> Picos {
    let worst = stage_sta_delays(graph, schedule, oracle).into_iter().fold(0.0, f64::max);
    clock_period_ps - worst
}

/// Mean relative estimation error across stages, in percent (Fig. 7's
/// metric): `mean(|estimated - measured| / measured)` over stages with
/// nonzero measured delay.
pub fn estimation_error_pct(estimated: &[Picos], measured: &[Picos]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (&e, &m) in estimated.iter().zip(measured) {
        if m > 0.0 {
            total += (e - m).abs() / m;
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

/// Convenience: the set of values crossing each stage boundary, as
/// `(node, bits_carried)` — useful for reports and debugging.
pub fn register_breakdown(graph: &Graph, schedule: &Schedule) -> Vec<(NodeId, u64)> {
    let mut out = Vec::new();
    for (id, node) in graph.iter() {
        let span = schedule.last_use_cycle(graph, id) - schedule.cycle(id);
        if span > 0 {
            out.push((id, node.width as u64 * span as u64));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use isdc_ir::OpKind;
    use isdc_synth::SynthesisOracle;
    use isdc_techlib::TechLibrary;

    fn two_stage() -> (Graph, Schedule) {
        let mut g = Graph::new("t");
        let a = g.param("a", 8);
        let b = g.param("b", 8);
        let x = g.binary(OpKind::Mul, a, b).unwrap();
        let y = g.binary(OpKind::Add, x, b).unwrap();
        g.set_output(y);
        (g, Schedule::new(vec![0, 0, 0, 1]))
    }

    #[test]
    fn sta_delays_per_stage() {
        let (g, s) = two_stage();
        let oracle = SynthesisOracle::new(TechLibrary::sky130());
        let delays = stage_sta_delays(&g, &s, &oracle);
        assert_eq!(delays.len(), 2);
        assert!(delays[0] > delays[1], "mul stage slower than add stage");
    }

    #[test]
    fn estimated_delays_use_matrix() {
        let (g, s) = two_stage();
        let d = DelayMatrix::initialize(&g, &[0.0, 0.0, 500.0, 200.0]);
        let est = estimated_stage_delays(&g, &s, &d);
        assert_eq!(est, vec![500.0, 200.0]);
    }

    #[test]
    fn slack_is_clock_minus_worst_stage() {
        let (g, s) = two_stage();
        let oracle = SynthesisOracle::new(TechLibrary::sky130());
        let sta = stage_sta_delays(&g, &s, &oracle);
        let slack = post_synthesis_slack(&g, &s, &oracle, 5000.0);
        let worst = sta.iter().copied().fold(0.0, f64::max);
        assert!((slack - (5000.0 - worst)).abs() < 1e-9);
        assert!(slack > 0.0);
    }

    #[test]
    fn error_pct_basics() {
        assert_eq!(estimation_error_pct(&[100.0], &[100.0]), 0.0);
        assert!((estimation_error_pct(&[150.0], &[100.0]) - 50.0).abs() < 1e-9);
        // Zero-measured stages are skipped.
        assert_eq!(estimation_error_pct(&[10.0, 100.0], &[0.0, 100.0]), 0.0);
        assert_eq!(estimation_error_pct(&[], &[]), 0.0);
    }

    #[test]
    fn breakdown_matches_total() {
        let (g, s) = two_stage();
        let breakdown = register_breakdown(&g, &s);
        let total: u64 = breakdown.iter().map(|&(_, b)| b).sum();
        assert_eq!(total, s.register_bits(&g));
        assert!(!breakdown.is_empty());
    }
}
